"""Behavioral (high-level) macro models for fault propagation.

The methodology's sensitisation/propagation step runs the *circuit-edge*
test (the missing-code test over the whole ADC) with high-level models of
every macro, injecting the macro-level fault signature obtained from
circuit-level fault simulation into the one affected instance.  These are
those high-level models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from .decoder import boundary_decode, boundary_decode_many
from .ladder import N_TAPS, VREF_HIGH, VREF_LOW, nominal_tap_voltages


@dataclass(frozen=True)
class ComparatorBehavior:
    """Behavioral comparator: decision = (vin + offset > vref), with
    optional stuck and 'mixed' (erratic band) behaviours.

    Attributes:
        offset: input-referred offset in volts.
        stuck: None for normal operation, else the forced output.
        mixed_band: half-width of an erratic decision band around the
            threshold: inside it the decision is wrong (models the
            paper's 'Mixed' voltage signature).
        clock_degraded: marks a comparator whose local clocking is
            degraded (the paper's 'Clock value' signature) — DC decisions
            stay correct, only high-frequency behaviour suffers, so the
            missing-code test does not see it.
    """

    offset: float = 0.0
    stuck: Optional[bool] = None
    mixed_band: float = 0.0
    clock_degraded: bool = False

    def decide(self, vin: float, vref: float,
               at_speed: bool = False) -> bool:
        """One clocked comparison.

        Args:
            at_speed: the conversion runs at the maximum clock rate with
                no settling margin.  A comparator with degraded local
                clocking (the 'clock value' signature) still decides
                correctly at relaxed speed but fails at speed — its
                reduced clock swing no longer completes the sampling /
                offset-reduction phases in time.
        """
        if self.stuck is not None:
            return self.stuck
        if at_speed and self.clock_degraded:
            return False  # cannot acquire the new sample: stays reset
        decision = (vin + self.offset) > vref
        if self.mixed_band > 0.0 and \
                abs(vin + self.offset - vref) < self.mixed_band:
            return not decision
        return decision


@dataclass(frozen=True)
class LadderBehavior:
    """Behavioral reference ladder: a vector of tap voltages.

    Fault injection happens by handing a modified tap vector (from the
    circuit-level faulty ladder solution).
    """

    taps: np.ndarray = field(
        default_factory=lambda: nominal_tap_voltages(N_TAPS))

    def reference(self, k: int) -> float:
        """Reference voltage of comparator *k* (1-based, tap k)."""
        if not 1 <= k <= len(self.taps) - 1:
            raise ValueError(f"comparator index {k} out of range")
        return float(self.taps[k])


@dataclass(frozen=True)
class DecoderBehavior:
    """Behavioral thermometer decoder with optional stuck output bits."""

    n_bits: int = 8
    stuck_bits: dict = field(default_factory=dict)  # bit index -> value

    def decode(self, levels: Sequence[bool]) -> int:
        code = boundary_decode(levels, self.n_bits)
        for bit, value in self.stuck_bits.items():
            if value:
                code |= (1 << bit)
            else:
                code &= ~(1 << bit)
        return code

    def decode_many(self, levels: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decode` over ``(n_samples, n_comparators)``
        level rows."""
        codes = boundary_decode_many(levels, self.n_bits)
        for bit, value in self.stuck_bits.items():
            if value:
                codes = codes | (1 << bit)
            else:
                codes = codes & ~(1 << bit)
        return codes


@dataclass(frozen=True)
class ClockBehavior:
    """Behavioral clock generator: which phases actually function.

    A dead phase breaks every comparator the same way: a dead sampling
    or latch clock freezes decisions; a degraded (but toggling) clock
    only harms dynamic performance.
    """

    phi1_ok: bool = True
    phi2_ok: bool = True
    phi3_ok: bool = True
    degraded: bool = False

    @property
    def functional(self) -> bool:
        return self.phi1_ok and self.phi2_ok and self.phi3_ok
