"""Within-die device mismatch (Pelgrom model).

The corner model in :mod:`repro.adc.process` captures die-to-die spread;
this module adds *within-die* random mismatch: each transistor's
threshold deviates with a sigma of ``A_VT / sqrt(W * L)`` (Pelgrom's
law).  Mismatch is what gives the fault-free comparator a random offset,
which sets how much of the paper's "Offset (> 8 mV)" signature space is
already occupied by healthy devices — the parametric escape mechanism
noted in the paper's introduction (Sachdev: "some of the parametric
faults escaped detection").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from ..circuit.transient import transient
from .comparator import (CLOCK_PERIOD, build_testbench,
                         regeneration_windows)
from .process import Process, typical

#: Pelgrom threshold-mismatch coefficient for a 1-um-class process
#: (V * m); ~10 mV sigma for a 1 um^2 device
A_VT = 10e-9


def apply_mismatch(circuit: Circuit, rng: np.random.Generator,
                   a_vt: float = A_VT) -> List[float]:
    """Perturb every MOSFET's threshold with Pelgrom-law mismatch.

    Mutates *circuit* in place (apply to a copy).

    Returns:
        The threshold shifts applied, in element order.
    """
    shifts: List[float] = []
    for el in circuit.elements:
        if not isinstance(el, Mosfet):
            continue
        sigma = a_vt / math.sqrt(el.w * el.l)
        shift = float(rng.normal(0.0, sigma))
        el.params = el.params.scaled(vto_shift=shift)
        shifts.append(shift)
    return shifts


def comparator_offset(process: Optional[Process] = None,
                      rng: Optional[np.random.Generator] = None,
                      a_vt: float = A_VT, resolution: float = 1e-3,
                      span: float = 32e-3) -> float:
    """Input-referred offset of one mismatched comparator instance.

    Bisects the trip point with clocked transients.

    Args:
        resolution: bisection stops at this input granularity.
        span: search half-range; offsets beyond it are clamped.
    """
    p = process or typical()
    rng = rng or np.random.default_rng(0)
    tb = build_testbench(process=p, vin=2.5, vref=2.5)
    apply_mismatch(tb.circuit, rng, a_vt)

    def decides_high(dv: float) -> bool:
        circuit = tb.circuit.copy()
        circuit.element("VIN").value = 2.5 + dv
        tr = transient(circuit, tstop=CLOCK_PERIOD, dt=1e-9,
                       fine_windows=regeneration_windows(CLOCK_PERIOD, 1))
        return tr.at_time("ffout", 0.97 * CLOCK_PERIOD) > p.vdd / 2.0

    lo, hi = -span, span
    if decides_high(lo):
        return -span  # trips below the search range
    if not decides_high(hi):
        return span
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if decides_high(mid):
            hi = mid
        else:
            lo = mid
    # trip point at +x means the device needs +x input: offset = -x
    return -0.5 * (lo + hi)


def offset_distribution(n_samples: int = 20,
                        process: Optional[Process] = None,
                        a_vt: float = A_VT, seed: int = 0,
                        resolution: float = 2e-3,
                        rng: Optional[np.random.Generator] = None
                        ) -> np.ndarray:
    """Monte Carlo comparator offset distribution (volts).

    Each sample is one mismatched instance, bisected to *resolution*.
    *seed* is ignored when an explicit *rng* is given.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = rng if rng is not None else np.random.default_rng(seed)
    return np.array([comparator_offset(process, rng, a_vt,
                                       resolution=resolution)
                     for _ in range(n_samples)])
