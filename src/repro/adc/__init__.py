"""The case-study circuit: an 8-bit CMOS full-flash video ADC.

Five macro types, as in the paper: 256 comparators (with flipflops), a
dual-ladder resistor string, a bias generator, a clock generator, and a
digital thermometer decoder.  Each macro has a transistor/gate-level
netlist, a synthesised layout, and a behavioral model for propagation.
"""

from .behavioral import (ClockBehavior, ComparatorBehavior,
                         DecoderBehavior, LadderBehavior)
from .biasgen import (bias_voltages, biasgen_layout, biasgen_testbench,
                      build_biasgen)
from .clockgen import (build_clockgen, clock_levels, clockgen_layout,
                       clockgen_testbench, iddq)
from .comparator import (CLOCK_PERIOD, ComparatorTestbench,
                         build_comparator, build_testbench,
                         comparator_clocks, comparator_layout,
                         phase_measure_times, regeneration_windows)
from .decoder import (build_decoder, decode_outputs, decode_thermometer,
                      thermometer_vector)
from .flash import FlashADC, nominal_adc
from .mismatch import (A_VT, apply_mismatch, comparator_offset,
                       offset_distribution)
from .ladder import (N_BITS, N_TAPS, VREF_HIGH, VREF_LOW, build_ladder,
                     build_ladder_slice, ladder_slice_layout,
                     ladder_testbench, nominal_tap_voltages,
                     reference_current, tap_voltages)
from .process import (Process, corner, good_space_corners,
                      reduced_corners, typical)

__all__ = [
    "ClockBehavior", "ComparatorBehavior", "DecoderBehavior",
    "LadderBehavior", "bias_voltages", "biasgen_layout",
    "biasgen_testbench", "build_biasgen", "build_clockgen",
    "clock_levels", "clockgen_layout", "clockgen_testbench", "iddq",
    "CLOCK_PERIOD", "ComparatorTestbench", "build_comparator",
    "build_testbench", "comparator_clocks", "comparator_layout",
    "phase_measure_times", "regeneration_windows", "build_decoder",
    "decode_outputs", "decode_thermometer", "thermometer_vector",
    "FlashADC", "nominal_adc", "N_BITS", "N_TAPS", "VREF_HIGH",
    "VREF_LOW", "build_ladder", "build_ladder_slice",
    "ladder_slice_layout", "ladder_testbench", "nominal_tap_voltages",
    "reference_current", "tap_voltages", "Process", "corner",
    "good_space_corners", "reduced_corners", "typical", "A_VT",
    "apply_mismatch", "comparator_offset", "offset_distribution",
]
