"""Thermometer-to-binary decoder macro (digital).

The 256 comparator outputs form a thermometer code; a ones-boundary
detector produces a 1-hot vector and an OR plane encodes it to 8 binary
bits.  The gate-level netlist feeds the digital fault machinery (stuck-at
for logic detection, bridging for IDDQ); the behavioral decoder is what
the missing-code test loop uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..digital.netlist import LogicNetlist

N_BITS_DEFAULT = 8


def build_decoder(n_bits: int = N_BITS_DEFAULT) -> LogicNetlist:
    """Gate-level thermometer -> binary decoder.

    Inputs ``t1 .. t<2^n - 1>`` (t_k = 1 iff code >= k); outputs
    ``b0 .. b<n-1>``.
    """
    n_taps = 2 ** n_bits
    net = LogicNetlist(f"decoder{n_bits}")
    for k in range(1, n_taps):
        net.add_input(f"t{k}")

    # 1-hot row detectors: h_k = t_k AND NOT t_{k+1}; h_0 = NOT t_1
    net.add_gate("inv_t1", "INV", ["t1"], "nt1")
    hot: List[str] = ["nt1"]
    for k in range(1, n_taps):
        if k < n_taps - 1:
            net.add_gate(f"inv{k + 1}", "INV", [f"t{k + 1}"],
                         f"nt{k + 1}")
            net.add_gate(f"hot{k}", "AND2", [f"t{k}", f"nt{k + 1}"],
                         f"h{k}")
            hot.append(f"h{k}")
        else:
            hot.append(f"t{k}")  # top row: hot iff t_max set

    # OR planes: bit j = OR of hot rows whose index has bit j set
    for j in range(n_bits):
        rows = [hot[k] for k in range(n_taps) if (k >> j) & 1]
        out = _or_tree(net, rows, f"b{j}")
        net.add_output(out)
    return net


def _or_tree(net: LogicNetlist, inputs: Sequence[str],
             out_name: str) -> str:
    """Balanced OR2 tree reducing *inputs* into net *out_name*."""
    if not inputs:
        raise ValueError("OR tree needs at least one input")
    level = list(inputs)
    stage = 0
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            if len(level) == 2:
                out = out_name
            else:
                out = f"{out_name}_s{stage}_{i // 2}"
            net.add_gate(f"or_{out}", "OR2", [level[i], level[i + 1]],
                         out)
            next_level.append(out)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    if level[0] != out_name:
        net.add_gate(f"buf_{out_name}", "BUF", [level[0]], out_name)
        return out_name
    return level[0]


def thermometer_vector(code: int, n_bits: int = N_BITS_DEFAULT
                       ) -> Dict[str, bool]:
    """Input vector for a given output code (0 .. 2^n - 1)."""
    n_taps = 2 ** n_bits
    if not 0 <= code < n_taps:
        raise ValueError(f"code {code} out of range")
    return {f"t{k}": k <= code for k in range(1, n_taps)}


def decode_outputs(outputs: Dict[str, bool],
                   n_bits: int = N_BITS_DEFAULT) -> int:
    """Binary value from a decoder output dict."""
    return sum((1 << j) for j in range(n_bits) if outputs[f"b{j}"])


def decode_thermometer(levels: Sequence[bool]) -> int:
    """Ones-count decode (bubble-tolerant averaging behaviour).

    A utility for characterisation; the ADC's decoder macro behaves like
    :func:`boundary_decode`, the exact behavioral twin of the gate-level
    OR plane.
    """
    return sum(1 for level in levels if level)


def boundary_decode(levels: Sequence[bool],
                    n_bits: int = N_BITS_DEFAULT) -> int:
    """Exact behavioral twin of :func:`build_decoder`'s OR plane.

    *levels* are the comparator outputs t1..t<2^n - 1> (any extra
    entries, e.g. an overrange comparator, are ignored).  Every 1->0
    boundary row is hot and the OR plane merges their indices — which is
    precisely why a bubble (stuck comparator) produces *missing codes*
    at the circuit edge rather than being averaged away.
    """
    n_rows = 2 ** n_bits - 1
    t = [bool(v) for v in levels[:n_rows]]
    if len(t) < n_rows:
        raise ValueError(f"need at least {n_rows} comparator levels")
    code = 0
    for k in range(1, n_rows):
        if t[k - 1] and not t[k]:
            code |= k
    if t[n_rows - 1]:
        code |= n_rows
    return code


def boundary_decode_many(levels: np.ndarray,
                         n_bits: int = N_BITS_DEFAULT) -> np.ndarray:
    """Vectorised :func:`boundary_decode` over a batch of level rows.

    *levels* is an ``(n_samples, n_comparators)`` boolean array; returns
    the ``(n_samples,)`` integer codes, identical to running
    :func:`boundary_decode` row by row.
    """
    n_rows = 2 ** n_bits - 1
    t = np.asarray(levels, dtype=bool)
    if t.ndim != 2 or t.shape[1] < n_rows:
        raise ValueError(f"need at least {n_rows} comparator levels")
    t = t[:, :n_rows]
    # hot row k (1 <= k < n_rows) fires on the 1->0 boundary t[k-1]&~t[k]
    hot = t[:, :-1] & ~t[:, 1:]
    rows = np.arange(1, n_rows, dtype=np.int64)
    codes = np.bitwise_or.reduce(np.where(hot, rows, 0), axis=1)
    return codes | np.where(t[:, -1], np.int64(n_rows), np.int64(0))
