"""Full-chip flash-ADC netlist: comparator bank + ladder + decoder.

The macro methodology simulates each cell against Thevenin models of
its neighbours; this module builds the *actual* chip — every comparator
instance, the full dual ladder and a transistor-level CMOS decoder —
stitched flat through :mod:`repro.circuit.hierarchy`.  No behavioral
substitution: the thermometer outputs really drive the gate transistors
and the reference inputs really hang off the ladder taps.

The resulting MNA system (about 7500 unknowns at 8 bits) is far past
the dense solver's comfort zone; it exists to exercise (and benchmark)
the sparse linear backend, and to sanity-check the macro decomposition
against one monolithic transient.

``n_bits`` scales the whole chip (comparator count, ladder taps,
decoder width), which gives the benchmark a crossover-size dense arm
without paying for a dense 8-bit factorisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..circuit.dc import ConvergenceError
from ..circuit.batch import transient_batch
from ..circuit.elements import Resistor, VoltageSource
from ..circuit.hierarchy import Subcircuit, instantiate
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from ..circuit.transient import TransientResult
from ..digital.netlist import LogicNetlist
from .comparator import (BIAS_DRIVER_R, CLOCK_DRIVER_R, CLOCK_PERIOD,
                         PORTS as COMPARATOR_PORTS, VBN1_NOMINAL,
                         VBN2_NOMINAL, add_comparator_devices,
                         comparator_clocks, regeneration_windows)
from .decoder import boundary_decode, build_decoder
from .ladder import (SEGMENTS_PER_COARSE, VREF_HIGH, VREF_LOW,
                     build_ladder)
from .process import Process, typical

#: decoder gate sizing (minimum-ish logic devices)
_GATE_WP = 4e-6
_GATE_WN = 2e-6
_GATE_L = 1e-6


def comparator_subcircuit(process: Optional[Process] = None,
                          dft: bool = False) -> Subcircuit:
    """The comparator macro as a reusable hierarchy template.

    ``vbn2`` is dropped from the electrical ports: it traverses the
    cell as a layout track (which is why it matters for defect
    statistics) but no fault-free device connects to it.
    """
    template = Circuit("comparator_dft" if dft else "comparator")
    add_comparator_devices(template, process, dft=dft)
    ports = [p for p in COMPARATOR_PORTS if p != "vbn2"]
    return Subcircuit(name=template.title, ports=ports,
                      circuit=template)


class _GateBuilder:
    """Expands a :class:`LogicNetlist` into CMOS transistors.

    Each gate type maps to its static CMOS realisation (INV 2T, AND2 =
    NAND2+INV, OR2 = NOR2+INV, BUF = 2 INV); series stacks get a
    private internal node per gate instance.
    """

    def __init__(self, circuit: Circuit, process: Process,
                 prefix: str = "dec.") -> None:
        self.circuit = circuit
        self.process = process
        self.prefix = prefix

    def _pmos(self, name: str, d: str, g: str, s: str) -> None:
        self.circuit.add(Mosfet(self.prefix + name, d, g, s, "vdd",
                                self.process.pmos, w=_GATE_WP,
                                l=_GATE_L, polarity="p"))

    def _nmos(self, name: str, d: str, g: str, s: str) -> None:
        self.circuit.add(Mosfet(self.prefix + name, d, g, s, "gnd",
                                self.process.nmos, w=_GATE_WN,
                                l=_GATE_L, polarity="n"))

    def inv(self, name: str, a: str, y: str) -> None:
        self._pmos(f"{name}.P", y, a, "vdd")
        self._nmos(f"{name}.N", y, a, "gnd")

    def nand2(self, name: str, a: str, b: str, y: str) -> None:
        mid = self.prefix + f"{name}.m"
        self._pmos(f"{name}.PA", y, a, "vdd")
        self._pmos(f"{name}.PB", y, b, "vdd")
        self._nmos(f"{name}.NA", y, a, mid)
        self._nmos(f"{name}.NB", mid, b, "gnd")

    def nor2(self, name: str, a: str, b: str, y: str) -> None:
        mid = self.prefix + f"{name}.m"
        self._pmos(f"{name}.PA", mid, a, "vdd")
        self._pmos(f"{name}.PB", y, b, mid)
        self._nmos(f"{name}.NA", y, a, "gnd")
        self._nmos(f"{name}.NB", y, b, "gnd")

    def add_gate(self, name: str, gtype: str, inputs, output) -> None:
        if gtype == "INV":
            self.inv(name, inputs[0], output)
        elif gtype == "BUF":
            mid = self.prefix + f"{name}.b"
            self.inv(f"{name}.i0", inputs[0], mid)
            self.inv(f"{name}.i1", mid, output)
        elif gtype == "AND2":
            mid = self.prefix + f"{name}.y"
            self.nand2(f"{name}.nd", inputs[0], inputs[1], mid)
            self.inv(f"{name}.iv", mid, output)
        elif gtype == "OR2":
            mid = self.prefix + f"{name}.y"
            self.nor2(f"{name}.nr", inputs[0], inputs[1], mid)
            self.inv(f"{name}.iv", mid, output)
        else:
            raise ValueError(
                f"no CMOS mapping for decoder gate type {gtype!r}")


def add_decoder_devices(circuit: Circuit, netlist: LogicNetlist,
                        process: Process, node_map) -> None:
    """Expand a gate-level decoder into CMOS devices on *circuit*.

    ``node_map(net)`` translates logic-net names to circuit nodes
    (thermometer inputs onto comparator outputs, internals onto a
    ``dec.`` namespace).
    """
    builder = _GateBuilder(circuit, process)
    for gate_name in netlist.levelize():
        gate = netlist.gates[gate_name]
        builder.add_gate(gate_name, gate.gtype.name,
                         [node_map(n) for n in gate.inputs],
                         node_map(gate.output))


@dataclass(frozen=True)
class FullChip:
    """The stitched chip plus the handles measurements need.

    Attributes:
        circuit: the flat netlist.
        n_bits: ADC resolution this instance was built at.
        n_taps: comparator / ladder-tap count (``2**n_bits``).
        comparator_outputs: thermometer nodes ``ffout1..ffout<n>``.
        decoder_outputs: binary output nodes (empty when the decoder
            was left off).
        supply_source: VDD source name (IVdd measurements).
        reference_sources: the ladder terminal sources.
    """

    circuit: Circuit
    n_bits: int
    n_taps: int
    comparator_outputs: Tuple[str, ...]
    decoder_outputs: Tuple[str, ...]
    supply_source: str = "VDD"
    reference_sources: Tuple[str, str] = ("VREFP", "VREFN")


def build_fullchip(process: Optional[Process] = None, n_bits: int = 8,
                   vin: float = 2.5, period: float = CLOCK_PERIOD,
                   dft: bool = False,
                   with_decoder: bool = True) -> FullChip:
    """Build the full flash converter at a given resolution.

    ``2**n_bits`` comparator instances sample one shared input against
    the dual ladder's taps (the top instance is the overrange
    comparator); their flipflop outputs feed the CMOS decoder's
    thermometer inputs.  Clock and bias distribution keep the macro
    testbenches' Thevenin driver models, now shared by the whole bank.

    ``n_bits`` must keep the ladder's coarse pitch
    (:data:`~repro.adc.ladder.SEGMENTS_PER_COARSE`) an exact divisor,
    i.e. ``n_bits >= 4``.
    """
    p = process or typical()
    n_taps = 2 ** n_bits
    if n_taps % SEGMENTS_PER_COARSE != 0:
        raise ValueError("n_bits too small for the dual-ladder pitch")
    chip = Circuit(f"fullchip{n_bits}")

    # reference ladder with its terminal sources (ladder_testbench's
    # naming, so reference-current measurements carry over)
    for element in build_ladder(p, n_taps).elements:
        chip.add(element)
    chip.add(VoltageSource("VREFP", f"tap{n_taps}_t", "gnd", VREF_HIGH))
    chip.add(Resistor("RTP", f"tap{n_taps}_t", f"tap{n_taps}", 1.0))
    chip.add(VoltageSource("VREFN", "tap0_t", "gnd", VREF_LOW))
    chip.add(Resistor("RTN", "tap0_t", "tap0", 1.0))

    # shared supplies, input and distribution lines
    chip.add(VoltageSource("VDD", "vdd", "gnd", p.vdd))
    chip.add(VoltageSource("VIN", "vin", "gnd", vin))
    phi1, phi2, phi3 = comparator_clocks(period, p.vdd)
    for name, wave in (("phi1", phi1), ("phi2", phi2), ("phi3", phi3)):
        chip.add(VoltageSource(f"V{name.upper()}", f"{name}_src", "gnd",
                               wave))
        chip.add(Resistor(f"R{name.upper()}", f"{name}_src", name,
                          CLOCK_DRIVER_R))
    scale = p.vdd / 5.0
    chip.add(VoltageSource("VBN1S", "vbn1_src", "gnd",
                           VBN1_NOMINAL * scale))
    chip.add(Resistor("RBN1", "vbn1_src", "vbn1", BIAS_DRIVER_R))
    chip.add(VoltageSource("VBN2S", "vbn2_src", "gnd",
                           VBN2_NOMINAL * scale))
    chip.add(Resistor("RBN2", "vbn2_src", "vbn2", BIAS_DRIVER_R))

    # the comparator bank: instance k compares vin against tap k
    template = comparator_subcircuit(p, dft=dft)
    outputs = []
    for k in range(1, n_taps + 1):
        instantiate(chip, template, f"X{k}",
                    ["vin", f"tap{k}", "phi1", "phi2", "phi3",
                     "vbn1", "vdd", "gnd", f"ffout{k}"])
        outputs.append(f"ffout{k}")

    decoder_outputs: Tuple[str, ...] = ()
    if with_decoder:
        logic = build_decoder(n_bits)

        def node_map(net: str) -> str:
            if net.startswith("t") and net[1:].isdigit():
                return f"ffout{int(net[1:])}"
            if net.startswith("b") and net[1:].isdigit():
                return net
            return f"dec.{net}"

        add_decoder_devices(chip, logic, p, node_map)
        decoder_outputs = tuple(logic.primary_outputs)

    return FullChip(circuit=chip, n_bits=n_bits, n_taps=n_taps,
                    comparator_outputs=tuple(outputs),
                    decoder_outputs=decoder_outputs)


def fullchip_transient(chip: FullChip, tstop: float, dt: float = 1e-9,
                       cycles_fine: int = 0, solver: str = "sparse",
                       startup: bool = True) -> TransientResult:
    """One transient of the whole chip through the batched kernel.

    ``solver`` picks the linear backend; ``sparse`` is the only
    tractable choice at 8 bits (the dense system is a ~600 MB matrix
    with an O(n^3) factorisation per Newton iterate) but the dense
    backends remain available for crossover-size validation.

    ``startup`` (the default) marches from an all-zero state — the
    supplies snap on at t=0 and the chip powers up over the march.
    The alternative, a t=0 operating point, is ill-posed for this
    circuit: every comparator latch is bistable at DC and the decoder
    gates sit on metastable mid-rails, so the Newton continuation
    ladder burns thousands of iterations resolving voltages the first
    clock edge immediately overwrites.  Start-up is both the physical
    power-on story and the well-conditioned one (the timestep's
    companion conductances anchor every Newton solve).

    Raises:
        ConvergenceError: if the chip transient fails to converge.
    """
    windows = (regeneration_windows(CLOCK_PERIOD, cycles_fine)
               if cycles_fine > 0 else None)
    x0s = None
    if startup:
        x0s = np.zeros((1, chip.circuit.compile().size))
    out = transient_batch([chip.circuit], tstop=tstop, dt=dt,
                          x0s=x0s, fine_windows=windows,
                          solver=solver)[0]
    if isinstance(out, ConvergenceError):
        raise out
    return out


def decode_at(chip: FullChip, result: TransientResult,
              time: float) -> int:
    """Read the converter's output code from the thermometer nodes.

    Uses the behavioral boundary decode (the exact twin of the gate
    netlist) over the comparator outputs sampled at *time* — a check
    that is meaningful even when the chip was built without the CMOS
    decoder plane.
    """
    vdd = 5.0
    levels = [result.at_time(node, time) > vdd / 2.0
              for node in chip.comparator_outputs]
    return boundary_decode(levels, chip.n_bits)
