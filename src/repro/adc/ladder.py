"""Dual-ladder resistor string: the ADC's 256 reference voltages.

The case-study ADC generates its references with a dual ladder (paper
[11]): a low-resistance **coarse** ladder carries the bulk of the
reference current and pins every 16th node, and a **fine** ladder hanging
between those pins interpolates the remaining taps.  The redundancy
matters for fault behaviour — an open in a fine segment only disturbs one
16-tap span, while shorts anywhere change the ladder current, which is
why the paper found 99.8 % of ladder faults current-detectable.

For defect simulation the macro is one 16-segment slice (fine segments +
its coarse segment); the full 8-bit ladder is 16 such slices and its
defect exposure scales with area, exactly the paper's macro approach.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuit.elements import Resistor, VoltageSource
from ..circuit.netlist import Circuit
from ..circuit.dc import operating_point
from ..layout.synth import SynthOptions, synthesize
from .process import Process, typical

#: ADC resolution
N_BITS = 8
N_TAPS = 2 ** N_BITS          # 256 comparator references (tap1..tap256)
SEGMENTS_PER_COARSE = 16

#: unit resistances (ohms, nominal)
R_FINE = 20.0
R_COARSE = 4.0

#: reference terminal voltages
VREF_LOW = 1.5
VREF_HIGH = 3.5


def build_ladder(process: Optional[Process] = None,
                 n_taps: int = N_TAPS) -> Circuit:
    """Full dual-ladder netlist.

    Nodes: ``tap0`` (= vrefn terminal) .. ``tap<n>`` (= vrefp terminal);
    coarse pins at every :data:`SEGMENTS_PER_COARSE`-th tap.
    """
    p = process or typical()
    if n_taps % SEGMENTS_PER_COARSE != 0:
        raise ValueError("n_taps must be a multiple of the coarse pitch")
    c = Circuit("ladder")
    r_fine = R_FINE * p.r_scale
    r_coarse = R_COARSE * p.r_scale
    for k in range(n_taps):
        c.add(Resistor(f"RF{k}", f"tap{k}", f"tap{k + 1}", r_fine))
    for k in range(0, n_taps, SEGMENTS_PER_COARSE):
        c.add(Resistor(f"RC{k}", f"tap{k}",
                       f"tap{k + SEGMENTS_PER_COARSE}", r_coarse))
    return c


def build_ladder_slice(process: Optional[Process] = None) -> Circuit:
    """One coarse span of the dual ladder (the defect-sim macro cell)."""
    p = process or typical()
    c = Circuit("ladder_slice")
    r_fine = R_FINE * p.r_scale
    r_coarse = R_COARSE * p.r_scale
    n = SEGMENTS_PER_COARSE
    for k in range(n):
        c.add(Resistor(f"RF{k}", f"tap{k}", f"tap{k + 1}", r_fine))
    c.add(Resistor("RC0", "tap0", f"tap{n}", r_coarse))
    return c


def ladder_slice_layout(process: Optional[Process] = None):
    """Synthesised layout of the ladder slice macro.

    The supply rails traverse the slice as full-width tracks (the supply
    grid crosses the whole die), which matters greatly for the fault
    statistics: most ladder-area shorts bridge a tap to a rail, pulling
    a large current through the low-impedance ladder — the mechanism
    behind the paper's 99.8 % current detectability for this macro.
    """
    circuit = build_ladder_slice(process)
    ports = [f"tap{k}" for k in range(SEGMENTS_PER_COARSE + 1)]
    # the rails interleave with the reference distribution tracks —
    # shielding the references is standard practice and means a spot
    # defect on the global tracks almost always bridges to a rail
    return synthesize(circuit, SynthOptions(
        global_nets=["gnd", "tap0", "vdd", f"tap{SEGMENTS_PER_COARSE}"],
        ports=ports))


def ladder_testbench(process: Optional[Process] = None,
                     n_taps: int = N_TAPS) -> Circuit:
    """Full ladder with reference sources attached.

    The sources are named ``VREFP``/``VREFN`` so the reference-terminal
    current (an Iinput measurement in the paper) is their branch current.
    """
    c = build_ladder(process, n_taps)
    c.add(VoltageSource("VREFP", f"tap{n_taps}_t", "gnd", VREF_HIGH))
    c.add(Resistor("RTP", f"tap{n_taps}_t", f"tap{n_taps}", 1.0))
    c.add(VoltageSource("VREFN", "tap0_t", "gnd", VREF_LOW))
    c.add(Resistor("RTN", "tap0_t", "tap0", 1.0))
    return c


def tap_voltages(circuit: Circuit, n_taps: int = N_TAPS) -> np.ndarray:
    """Solve the ladder and return tap voltages (index 0..n_taps)."""
    op = operating_point(circuit)
    return np.array([op.voltage(f"tap{k}") for k in range(n_taps + 1)])


def reference_current(circuit: Circuit) -> float:
    """Current drawn from the VREFP terminal (positive = sourcing)."""
    op = operating_point(circuit)
    return -op.current("VREFP")


def nominal_tap_voltages(n_taps: int = N_TAPS) -> np.ndarray:
    """Ideal (behavioral) tap voltages, linear between the references."""
    return np.linspace(VREF_LOW, VREF_HIGH, n_taps + 1)
