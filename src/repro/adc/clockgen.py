"""Clock generator macro: three-phase clock buffers.

A digital macro: each phase's pre-driver signal goes through a two-stage
CMOS buffer whose final stage drives the long clock distribution line
(modelled as a lumped capacitance) across the comparator array.

Its key test property, central to the paper: as a static CMOS block its
**quiescent supply current (IDDQ) is essentially zero**, so any fault
that loads a clock line resistively — including faults physically inside
the *comparator* cells that short a clock line — shows up as elevated
IDDQ of this macro.  The paper found 10-11 % of all faults detectable
*only* this way.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuit.elements import Capacitor, Resistor, VoltageSource
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from ..circuit.transient import TransientResult, supply_current, transient
from ..layout.synth import SynthOptions, synthesize
from .comparator import CLOCK_PERIOD, comparator_clocks, \
    phase_measure_times
from .process import Process, typical

PHASES = ("phi1", "phi2", "phi3")
PORTS = ("vddd", "gnd") + PHASES + tuple(f"{p}_in" for p in PHASES)
GLOBAL_NETS = ("gnd", "phi1", "phi2", "phi3", "vddd")

#: lumped capacitance of one clock distribution line across 256
#: comparators (gate loads plus wire)
CLOCK_LINE_CAP = 2e-12


def add_clockgen_devices(circuit: Circuit, process: Optional[Process]
                         = None, prefix: str = "") -> None:
    """Two-stage buffer per phase: <phase>_in -> <phase>."""
    p = process or typical()

    def node(name: str) -> str:
        return "gnd" if name == "gnd" else prefix + name

    for phase in PHASES:
        mid = f"{phase}_b"
        circuit.add(Mosfet(prefix + f"MP_{phase}_1", node(mid),
                           node(f"{phase}_in"), node("vddd"),
                           node("vddd"), p.pmos, w=12e-6, l=1e-6,
                           polarity="p"))
        circuit.add(Mosfet(prefix + f"MN_{phase}_1", node(mid),
                           node(f"{phase}_in"), "gnd", "gnd", p.nmos,
                           w=6e-6, l=1e-6))
        circuit.add(Mosfet(prefix + f"MP_{phase}_2", node(phase),
                           node(mid), node("vddd"), node("vddd"), p.pmos,
                           w=48e-6, l=1e-6, polarity="p"))
        circuit.add(Mosfet(prefix + f"MN_{phase}_2", node(phase),
                           node(mid), "gnd", "gnd", p.nmos, w=24e-6,
                           l=1e-6))
        circuit.add(Capacitor(prefix + f"CL_{phase}", node(phase), "gnd",
                              CLOCK_LINE_CAP))


def build_clockgen(process: Optional[Process] = None) -> Circuit:
    """Bare clock generator netlist."""
    c = Circuit("clockgen")
    add_clockgen_devices(c, process)
    return c


def clockgen_layout():
    """Synthesised layout of the clock generator macro."""
    return synthesize(build_clockgen(), SynthOptions(
        global_nets=list(GLOBAL_NETS), ports=list(PORTS)))


def clockgen_testbench(process: Optional[Process] = None,
                       period: float = CLOCK_PERIOD) -> Circuit:
    """Clock generator driven by ideal pre-driver phases.

    The digital supply source is named ``VDDD``: IDDQ is its quiescent
    branch current (inverted buffers: the *inputs* are the complements of
    the wanted phases, so the pre-drivers below invert).
    """
    p = process or typical()
    c = build_clockgen(p)
    c.add(VoltageSource("VDDD", "vddd", "gnd", p.vdd))
    phases = comparator_clocks(period, p.vdd)
    for phase, wave in zip(PHASES, phases):
        # two inversions in the buffer: feed the true phase
        c.add(VoltageSource(f"V{phase.upper()}IN", f"{phase}_in", "gnd",
                            wave))
    return c


def iddq(result: TransientResult, times: Optional[List[float]] = None,
         period: float = CLOCK_PERIOD, cycle: int = 0) -> float:
    """Worst-case quiescent VDDD current over the measurement instants."""
    times = times or phase_measure_times(period, cycle)
    current = supply_current(result, "VDDD")
    samples = [abs(current[int(np.argmin(np.abs(result.times - t)))])
               for t in times]
    return max(samples)


def clock_levels(result: TransientResult, period: float = CLOCK_PERIOD,
                 cycle: int = 0) -> dict:
    """High level of each phase in its own active window (for detecting
    degraded clock amplitudes — the paper's 'clock value' signatures)."""
    centres = {"phi1": 0.17, "phi2": 0.50, "phi3": 0.88}
    return {phase: result.at_time(phase, (cycle + frac) * period)
            for phase, frac in centres.items()}
