"""CMOS process definition and environmental corners.

A generic 1-um-class CMOS process (mid-1990s era, 5 V supply) stands in
for the Philips process the paper used.  The corner model drives the
*good signature space*: the fault-free circuit response varies with
process (threshold / transconductance spread), supply voltage and
temperature, and a fault is only detected when it pushes a measurement
outside this whole space (the paper's 3-sigma criterion).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Tuple

from ..circuit.mosfet import MosParams

VDD_NOMINAL = 5.0
VDD_TOLERANCE = 0.10  # +/- 10 % supply spread
TEMP_NOMINAL = 27.0
TEMP_RANGE = (-20.0, 85.0)

NMOS_TYPICAL = MosParams(kp=60e-6, vto=0.70, lam=0.05, gamma=0.45,
                         phi=0.60, cox=1.7e-3, cov=3.0e-10)
PMOS_TYPICAL = MosParams(kp=25e-6, vto=-0.80, lam=0.06, gamma=0.55,
                         phi=0.60, cox=1.7e-3, cov=3.0e-10)

#: process spread: +/- 3-sigma threshold shift and kp spread
VTO_SPREAD = 0.10      # volts
KP_SPREAD = 0.15       # relative
#: sheet-resistance spread of the poly ladder resistors (+/- 3-sigma);
#: wide, well-controlled ladder structures track much better than
#: minimum-width poly
RSHEET_SPREAD = 0.08


@dataclass(frozen=True)
class Process:
    """One instance of the process + environment.

    Attributes:
        nmos, pmos: device parameters at this corner.
        vdd: supply voltage.
        temperature: junction temperature (deg C).
        r_scale: resistor value scale (sheet-resistance corner).
        name: corner label.
    """

    nmos: MosParams = NMOS_TYPICAL
    pmos: MosParams = PMOS_TYPICAL
    vdd: float = VDD_NOMINAL
    temperature: float = TEMP_NOMINAL
    r_scale: float = 1.0
    name: str = "typical"

    def with_temperature(self, temp: float) -> "Process":
        """Apply first-order temperature dependence.

        Mobility falls as (T/T0)^-1.5; thresholds drop ~2 mV/K.
        """
        t0 = TEMP_NOMINAL + 273.15
        t = temp + 273.15
        kp_scale = (t / t0) ** -1.5
        dvt = -2e-3 * (temp - self.temperature)
        return replace(
            self,
            nmos=self.nmos.scaled(kp_scale=kp_scale, vto_shift=dvt),
            pmos=self.pmos.scaled(kp_scale=kp_scale, vto_shift=-dvt),
            temperature=temp,
            name=f"{self.name}@{temp:g}C")


def typical() -> Process:
    """The nominal process at nominal conditions."""
    return Process()


def corner(process_sigma: float, vdd: float, temperature: float,
           name: str = "") -> Process:
    """Build a corner: *process_sigma* in [-1, 1] scales the +/-3-sigma
    process spread (-1 = slow, +1 = fast)."""
    s = process_sigma
    nmos = NMOS_TYPICAL.scaled(kp_scale=1.0 + s * KP_SPREAD,
                               vto_shift=-s * VTO_SPREAD)
    pmos = PMOS_TYPICAL.scaled(kp_scale=1.0 + s * KP_SPREAD,
                               vto_shift=s * VTO_SPREAD)
    base = Process(nmos=nmos, pmos=pmos, vdd=vdd,
                   r_scale=1.0 - s * RSHEET_SPREAD,
                   name=name or f"s{s:+.1f}_v{vdd:.2f}")
    return base.with_temperature(temperature)


def good_space_corners() -> List[Process]:
    """Corner set over which the good signature space is compiled.

    The full factorial of {slow, typical, fast} process x {low, nominal,
    high} supply x {cold, nominal, hot} temperature, matching the paper's
    "process, supply voltage and temperature" environmental conditions.
    """
    result = []
    for s, v, t in itertools.product(
            (-1.0, 0.0, 1.0),
            (VDD_NOMINAL * (1 - VDD_TOLERANCE), VDD_NOMINAL,
             VDD_NOMINAL * (1 + VDD_TOLERANCE)),
            (TEMP_RANGE[0], TEMP_NOMINAL, TEMP_RANGE[1])):
        result.append(corner(s, v, t))
    return result


#: named corner sets selectable from the command line
CORNER_SETS = ("reduced", "full", "typical")


def corner_set(name: str) -> List[Process]:
    """Named corner set for CLI selection.

    ``reduced`` is the cheap 5-corner set, ``full`` the 27-corner
    process x supply x temperature factorial, ``typical`` the nominal
    point alone (fast smoke runs).
    """
    if name == "reduced":
        return reduced_corners()
    if name == "full":
        return good_space_corners()
    if name == "typical":
        return [typical()]
    raise ValueError(f"unknown corner set {name!r}; "
                     f"expected one of {CORNER_SETS}")


def reduced_corners() -> List[Process]:
    """Cheap 5-corner set (typ + 4 extremes) for fast analyses."""
    lo_v = VDD_NOMINAL * (1 - VDD_TOLERANCE)
    hi_v = VDD_NOMINAL * (1 + VDD_TOLERANCE)
    return [
        typical(),
        corner(-1.0, lo_v, TEMP_RANGE[1], name="slow_lowv_hot"),
        corner(-1.0, hi_v, TEMP_RANGE[0], name="slow_highv_cold"),
        corner(+1.0, lo_v, TEMP_RANGE[1], name="fast_lowv_hot"),
        corner(+1.0, hi_v, TEMP_RANGE[0], name="fast_highv_cold"),
    ]
