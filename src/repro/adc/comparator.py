"""The comparator macro: 3-phase balanced comparator + dynamic flipflop.

This is the paper's highlighted macro cell.  Structure (section 3.2):

* a fully balanced comparator comparing the sampled input against the
  reference in three clock phases — **sampling** (phi1: input and
  reference sampled onto capacitors, outputs equalised), **amplification**
  (phi2: class-A differential pair with diode loads develops the
  decision) and **latching** (phi3: cross-coupled pair regenerates it to
  a large signal);
* a flipflop loading the comparator, which transfers the amplified
  decision to a logic level.  Its quiescent current is zero in the
  amplification and latching phases but, through a deliberate leakage
  path enabled during sampling, strongly transistor-parameter-dependent
  in the sampling phase — the exact property the paper's first DfT
  measure removes (``dft=True`` builds the redesigned flipflop).

The cell is traversed by the clock distribution lines (phi1..phi3) and
two bias lines (vbn1, vbn2) that carry only marginally different
voltages; both facts dominate the defect statistics, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.elements import Capacitor, Resistor, VoltageSource
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from ..circuit.waveforms import Pulse
from ..layout.synth import SynthOptions, synthesize
from .process import Process, typical

#: comparator clock period (video-rate ADC: ~20 MHz three-phase cycle)
CLOCK_PERIOD = 150e-9
#: clock edge time used in testbenches
CLOCK_EDGE = 2e-9
#: phi3 (latch) rises this long after phi2 (amplify) falls; during the
#: gap the isolated latch nodes hold the developed differential
LATCH_DELAY = 2e-9
#: duration of the fine-timestep regeneration window after phi3 rises
REGEN_WINDOW = 8e-9
#: timestep inside the regeneration window; must satisfy
#: dt < C/gm of the latch so backward Euler amplifies (not suppresses)
#: the regenerative mode
REGEN_DT = 25e-12


def comparator_clocks(period: float = CLOCK_PERIOD, vdd: float = 5.0,
                      edge: float = CLOCK_EDGE,
                      latch_delay: float = LATCH_DELAY):
    """The comparator's three clock phases.

    phi1 (sample) and phi2 (amplify) are non-overlapping thirds of the
    period; phi3 (latch) rises *latch_delay* after phi2 falls and stays
    high to the end of the period.

    Returns:
        Tuple ``(phi1, phi2, phi3)`` of waveforms.
    """
    third = period / 3.0
    width = third - 2.0 * edge
    if width <= 0 or latch_delay >= width:
        raise ValueError("period too short for the edges/delay")
    phi1 = Pulse(0.0, vdd, 0.0, edge, edge, width, period)
    phi2 = Pulse(0.0, vdd, third, edge, edge, width, period)
    phi3 = Pulse(0.0, vdd, 2.0 * third + latch_delay, edge, edge,
                 third - latch_delay - 2.0 * edge, period)
    return phi1, phi2, phi3


def regeneration_windows(period: float = CLOCK_PERIOD, cycles: int = 1,
                         latch_delay: float = LATCH_DELAY):
    """Fine-timestep windows covering each cycle's latch regeneration.

    Hand these to :func:`repro.circuit.transient` — without them the
    implicit integrator freezes the latch at its metastable point for
    near-LSB inputs (see ``fine_windows`` in the transient docs).
    """
    windows = []
    for k in range(cycles):
        t0 = k * period + 2.0 * period / 3.0 + latch_delay
        windows.append((t0 - 0.5e-9, t0 + REGEN_WINDOW, REGEN_DT))
    return windows

#: macro ports (circuit-edge view)
PORTS = ("in", "vref", "phi1", "phi2", "phi3", "vbn1", "vbn2", "vdd",
         "gnd", "ffout")

#: nets that physically traverse the comparator cell (global tracks);
#: their order is the layout track order — the second DfT measure
#: re-orders them so the marginally-different vbn1/vbn2 are separated.
GLOBAL_NETS_STD = ("gnd", "vbn1", "vbn2", "phi1", "phi2", "phi3", "vdd")
GLOBAL_NETS_DFT = ("gnd", "vbn1", "phi1", "phi2", "vbn2", "phi3", "vdd")

#: nominal bias-line voltages (vbn2 is a second mirror branch carrying a
#: marginally different voltage, routed through the cell)
VBN1_NOMINAL = 1.20
VBN2_NOMINAL = 1.23

#: Thevenin impedances of the surrounding macros' drivers
BIAS_DRIVER_R = 3e3     # diode-connected mirror node, ~1/gm
CLOCK_DRIVER_R = 300.0  # clock generator output buffer
VREF_DRIVER_R = 200.0   # reference ladder tap impedance


def add_comparator_devices(circuit: Circuit, process: Optional[Process]
                           = None, prefix: str = "",
                           dft: bool = False) -> None:
    """Add the comparator + flipflop devices to *circuit*.

    Node names are the macro-local names (optionally prefixed), so the
    same builder serves the standalone testbench, the layout synthesiser
    and embedded multi-instance netlists.
    """
    p = process or typical()
    n, pm = p.nmos, p.pmos

    def node(name: str) -> str:
        if name in ("gnd",):
            return "gnd"
        return prefix + name

    def nmos(name, d, g, s, w, l):
        circuit.add(Mosfet(prefix + name, node(d), node(g), node(s),
                           "gnd", n, w=w, l=l, polarity="n"))

    def pmos(name, d, g, s, w, l):
        circuit.add(Mosfet(prefix + name, node(d), node(g), node(s),
                           node("vdd"), pm, w=w, l=l, polarity="p"))

    # input sampling network
    nmos("MS1", "cin_p", "phi1", "in", w=4e-6, l=1e-6)
    nmos("MS2", "cin_n", "phi1", "vref", w=4e-6, l=1e-6)
    circuit.add(Capacitor(prefix + "C1", node("cin_p"), "gnd", 100e-15))
    circuit.add(Capacitor(prefix + "C2", node("cin_n"), "gnd", 100e-15))

    # class-A differential pair with diode loads; the tail path is
    # enabled during sampling and amplification (phi1 | phi2) and floats
    # during latching so the cross-coupled pair can regenerate to full
    # swing without fighting the pair
    nmos("M1", "outn", "cin_p", "tail", w=20e-6, l=1.5e-6)
    nmos("M2", "outp", "cin_n", "tail", w=20e-6, l=1.5e-6)
    nmos("M5", "tail", "vbn1", "tailsw", w=10e-6, l=2e-6)
    nmos("M5A", "tailsw", "phi1", "gnd", w=6e-6, l=1e-6)
    nmos("M5B", "tailsw", "phi2", "gnd", w=6e-6, l=1e-6)
    pmos("M3", "outn", "outn", "vdd", w=2e-6, l=4e-6)
    pmos("M4", "outp", "outp", "vdd", w=2e-6, l=4e-6)

    # sampling-phase output equaliser
    nmos("M9", "outp", "phi1", "outn", w=2e-6, l=1e-6)
    circuit.add(Capacitor(prefix + "C3", node("outp"), "gnd", 30e-15))
    circuit.add(Capacitor(prefix + "C4", node("outn"), "gnd", 30e-15))

    # regenerative latch on its own nodes (lp, ln): tracks the amplifier
    # outputs through phi2 pass devices, regenerates when phi3 rises
    # (overlapping the end of phi2), and holds rail-to-rail statically
    # with zero quiescent current once regenerated.  Both latch tails are
    # clocked — the PMOS side through a locally inverted phi3 — so the
    # latch is completely passive while tracking (no contention, no
    # hysteresis).
    nmos("MI1", "lp", "phi2", "outp", w=3e-6, l=1e-6)
    nmos("MI2", "ln", "phi2", "outn", w=3e-6, l=1e-6)
    nmos("M6", "ln", "lp", "ltail", w=8e-6, l=1e-6)
    nmos("M7", "lp", "ln", "ltail", w=8e-6, l=1e-6)
    nmos("M8", "ltail", "phi3", "gnd", w=6e-6, l=1e-6)
    pmos("M10", "lp", "ln", "htail", w=6e-6, l=1e-6)
    pmos("M11", "ln", "lp", "htail", w=6e-6, l=1e-6)
    pmos("M13", "htail", "phi3b", "vdd", w=12e-6, l=1e-6)
    # local phi3 inverter for the PMOS tail
    pmos("MPB", "phi3b", "phi3", "vdd", w=4e-6, l=1e-6)
    nmos("MNB", "phi3b", "phi3", "gnd", w=2e-6, l=1e-6)
    circuit.add(Capacitor(prefix + "C5", node("lp"), "gnd", 10e-15))
    circuit.add(Capacitor(prefix + "C6", node("ln"), "gnd", 10e-15))

    # flipflop: phi3-clocked dynamic latch, two static inverters; the
    # dummy branch on ln balances the clock kickback of MF1 (without it
    # the comparator has a systematic ~10 mV offset)
    nmos("MF1", "ffin", "phi3", "lp", w=3e-6, l=1e-6)
    circuit.add(Capacitor(prefix + "CFF", node("ffin"), "gnd", 15e-15))
    nmos("MF1D", "ffind", "phi3", "ln", w=3e-6, l=1e-6)
    circuit.add(Capacitor(prefix + "CFFD", node("ffind"), "gnd", 15e-15))
    # dummy first inverter so ffind's capacitive load matches ffin's —
    # otherwise charge sharing at the phi3 edge unbalances the latch
    pmos("MFP1D", "ffmidd", "ffind", "vdd", w=6e-6, l=1e-6)
    nmos("MFN1D", "ffmidd", "ffind", "gnd", w=3e-6, l=1e-6)
    pmos("MFP1", "ffmid", "ffin", "vdd", w=6e-6, l=1e-6)
    nmos("MFN1", "ffmid", "ffin", "gnd", w=3e-6, l=1e-6)
    pmos("MFP2", "ffout", "ffmid", "vdd", w=6e-6, l=1e-6)
    nmos("MFN2", "ffout", "ffmid", "gnd", w=3e-6, l=1e-6)

    if not dft:
        # flipflop leakage path, active during sampling: its current
        # depends quadratically on (vbn1 - vth) and therefore spreads
        # hugely over process corners.  The DfT redesign removes it.
        # sized so the 256 flipflops give the chip-level sampling-phase
        # supply current a process spread of ~15 mA, as the paper reports
        nmos("MEN", "vdd", "phi1", "nleak", w=10e-6, l=1e-6)
        nmos("MLK", "nleak", "vbn1", "gnd", w=5e-6, l=1e-6)


def build_comparator(process: Optional[Process] = None,
                     dft: bool = False) -> Circuit:
    """Bare comparator macro netlist (devices only, macro-local nodes)."""
    circuit = Circuit("comparator_dft" if dft else "comparator")
    add_comparator_devices(circuit, process, dft=dft)
    return circuit


def comparator_layout(dft: bool = False):
    """Synthesised layout of the comparator macro.

    The DfT variant re-orders the global tracks (bias-line exchange).
    """
    order = GLOBAL_NETS_DFT if dft else GLOBAL_NETS_STD
    return synthesize(build_comparator(dft=dft), SynthOptions(
        global_nets=list(order), ports=list(PORTS)))


@dataclass(frozen=True)
class ComparatorTestbench:
    """A comparator instance wired to stimulus and driver models.

    Attributes:
        circuit: the complete netlist.
        supply_source: name of the VDD source (IVdd measurements).
        clock_sources: driver source per clock line (IDDQ measurements).
        input_sources: sources standing for circuit input terminals
            (Iinput measurements).
    """

    circuit: Circuit
    supply_source: str
    clock_sources: Tuple[str, ...]
    input_sources: Tuple[str, ...]


def build_testbench(process: Optional[Process] = None, vin: float = 2.6,
                    vref: float = 2.5, dft: bool = False,
                    period: float = CLOCK_PERIOD) -> ComparatorTestbench:
    """Comparator macro in its measurement harness.

    The surrounding macros appear as Thevenin drivers: the clock
    generator's buffers (low impedance), the bias generator's mirror
    nodes (kilo-ohm impedance, marginally different voltages) and the
    reference ladder tap.  All per the methodology: faults inside the
    comparator that touch these distribution lines load *those* macros,
    which is how IDDQ-of-the-clock-generator detection arises.
    """
    p = process or typical()
    c = Circuit("comparator_tb")
    vdd = p.vdd

    c.add(VoltageSource("VDD", "vdd", "gnd", vdd))
    c.add(VoltageSource("VIN", "in", "gnd", vin))
    c.add(VoltageSource("VREFS", "vref_src", "gnd", vref))
    c.add(Resistor("RREF", "vref_src", "vref", VREF_DRIVER_R))

    phi1, phi2, phi3 = comparator_clocks(period, vdd, edge=CLOCK_EDGE)
    clock_sources = []
    for name, wave in (("phi1", phi1), ("phi2", phi2), ("phi3", phi3)):
        c.add(VoltageSource(f"V{name.upper()}", f"{name}_src", "gnd",
                            wave))
        c.add(Resistor(f"R{name.upper()}", f"{name}_src", name,
                       CLOCK_DRIVER_R))
        clock_sources.append(f"V{name.upper()}")

    scale = vdd / 5.0  # bias lines track the supply to first order
    c.add(VoltageSource("VBN1S", "vbn1_src", "gnd", VBN1_NOMINAL * scale))
    c.add(Resistor("RBN1", "vbn1_src", "vbn1", BIAS_DRIVER_R))
    c.add(VoltageSource("VBN2S", "vbn2_src", "gnd", VBN2_NOMINAL * scale))
    c.add(Resistor("RBN2", "vbn2_src", "vbn2", BIAS_DRIVER_R))

    add_comparator_devices(c, p, dft=dft)
    return ComparatorTestbench(
        circuit=c,
        supply_source="VDD",
        clock_sources=tuple(clock_sources),
        input_sources=("VIN", "VREFS", "VBN1S", "VBN2S"))


#: quiescent measurement instants within a period (fraction of T):
#: late in sampling, late in amplification, late in latching
PHASE_MEASURE_FRACTIONS = (0.30, 0.63, 0.97)


def phase_measure_times(period: float = CLOCK_PERIOD,
                        cycle: int = 1) -> List[float]:
    """Measurement instants in the given clock cycle (0-based)."""
    return [(cycle + f) * period for f in PHASE_MEASURE_FRACTIONS]
