"""Bias generator macro: class-A bias voltages for the comparator bank.

Two resistor-defined diode branches generate ``vbn1`` and ``vbn2`` — two
bias lines that carry only *marginally different* voltages and are routed
side by side through the comparator array in the standard layout.  This
is deliberately the paper's hard case: a short between them barely moves
either voltage, so it escapes both voltage and current tests.  The DfT
layout variant separates the two lines (paper: "exchange some bias
lines, thereby separating two lines with similar signals").
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..circuit.elements import Capacitor, Resistor, VoltageSource
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from ..circuit.dc import operating_point
from ..layout.synth import SynthOptions, synthesize
from .process import Process, typical

#: branch resistors: slightly different on purpose (two mirror branches
#: serving different comparator banks)
R_BRANCH1 = 77e3
R_BRANCH2 = 70e3

PORTS = ("vdd", "gnd", "vbn1", "vbn2")
GLOBAL_NETS_STD = ("gnd", "vbn1", "vbn2", "vdd")
GLOBAL_NETS_DFT = ("vbn1", "gnd", "vdd", "vbn2")


def add_biasgen_devices(circuit: Circuit, process: Optional[Process]
                        = None, prefix: str = "") -> None:
    """Add the bias generator's devices (two diode branches)."""
    p = process or typical()

    def node(name: str) -> str:
        return "gnd" if name == "gnd" else prefix + name

    circuit.add(Resistor(prefix + "RB1", node("vdd"), node("vbn1"),
                         R_BRANCH1 * p.r_scale))
    circuit.add(Mosfet(prefix + "MD1", node("vbn1"), node("vbn1"), "gnd",
                       "gnd", p.nmos, w=8e-6, l=1e-6))
    circuit.add(Resistor(prefix + "RB2", node("vdd"), node("vbn2"),
                         R_BRANCH2 * p.r_scale))
    circuit.add(Mosfet(prefix + "MD2", node("vbn2"), node("vbn2"), "gnd",
                       "gnd", p.nmos, w=8e-6, l=1e-6))
    # decoupling capacitors on the bias lines
    circuit.add(Capacitor(prefix + "CB1", node("vbn1"), "gnd", 1e-12))
    circuit.add(Capacitor(prefix + "CB2", node("vbn2"), "gnd", 1e-12))


def build_biasgen(process: Optional[Process] = None) -> Circuit:
    """Bare bias generator netlist."""
    c = Circuit("biasgen")
    add_biasgen_devices(c, process)
    return c


def biasgen_layout(dft: bool = False):
    """Synthesised layout; DfT variant separates the twin bias lines."""
    order = GLOBAL_NETS_DFT if dft else GLOBAL_NETS_STD
    return synthesize(build_biasgen(), SynthOptions(
        global_nets=list(order), ports=list(PORTS)))


def biasgen_testbench(process: Optional[Process] = None) -> Circuit:
    """Bias generator with its supply attached."""
    p = process or typical()
    c = build_biasgen(p)
    c.add(VoltageSource("VDD", "vdd", "gnd", p.vdd))
    return c


def bias_voltages(process: Optional[Process] = None
                  ) -> Tuple[float, float]:
    """Solve the generator and return (vbn1, vbn2)."""
    op = operating_point(biasgen_testbench(process))
    return op.voltage("vbn1"), op.voltage("vbn2")
