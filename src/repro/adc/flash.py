"""Behavioral 8-bit full-flash ADC (macro-structured assembly).

256 reference taps, 256 clocked comparators, a thermometer decoder — the
structure of paper Fig. 2.  The model is deliberately macro-shaped so a
fault signature extracted for one macro instance can be injected into
exactly that instance, which is what the sensitisation/propagation step
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from .behavioral import (ClockBehavior, ComparatorBehavior,
                         DecoderBehavior, LadderBehavior)
from .ladder import N_BITS, N_TAPS, VREF_HIGH, VREF_LOW


@dataclass(frozen=True)
class FlashADC:
    """Behavioral flash ADC.

    Attributes:
        ladder: reference ladder model.
        comparators: per-instance comparator models (index 0 serves
            tap 1 ... index 255 serves tap 256); by default all nominal.
        decoder: thermometer decoder model.
        clocks: clock generator model.
    """

    ladder: LadderBehavior = field(default_factory=LadderBehavior)
    comparators: tuple = tuple()
    decoder: DecoderBehavior = field(default_factory=DecoderBehavior)
    clocks: ClockBehavior = field(default_factory=ClockBehavior)
    n_bits: int = N_BITS

    def __post_init__(self) -> None:
        if not self.comparators:
            object.__setattr__(
                self, "comparators",
                tuple(ComparatorBehavior() for _ in range(2 ** self.n_bits)))
        if len(self.comparators) != 2 ** self.n_bits:
            raise ValueError("need one comparator per tap")

    # -- fault injection -----------------------------------------------------

    def with_comparator(self, index: int,
                        behavior: ComparatorBehavior) -> "FlashADC":
        """Copy of the ADC with comparator *index* (0-based) replaced."""
        if not 0 <= index < len(self.comparators):
            raise ValueError(f"comparator index {index} out of range")
        comps = list(self.comparators)
        comps[index] = behavior
        return replace(self, comparators=tuple(comps))

    def with_ladder(self, ladder: LadderBehavior) -> "FlashADC":
        return replace(self, ladder=ladder)

    def with_decoder(self, decoder: DecoderBehavior) -> "FlashADC":
        return replace(self, decoder=decoder)

    def with_clocks(self, clocks: ClockBehavior) -> "FlashADC":
        return replace(self, clocks=clocks)

    # -- conversion -----------------------------------------------------------

    def convert(self, vin: float, at_speed: bool = False) -> int:
        """One full conversion of a sampled input voltage.

        Args:
            at_speed: run at maximum clock rate (no settling margin) —
                exposes dynamically degraded comparators and clock
                amplitudes (the 'clock value' fault population).
        """
        if not self.clocks.functional:
            # a dead clock phase freezes the whole comparator bank: every
            # flipflop keeps (or collapses to) a fixed state -> constant
            # output code
            return 0
        if at_speed and self.clocks.degraded:
            return 0  # degraded global clock amplitude fails at speed
        levels = [comp.decide(vin, self.ladder.reference(k + 1),
                              at_speed=at_speed)
                  for k, comp in enumerate(self.comparators)]
        return self.decoder.decode(levels)

    def convert_many(self, vins: Sequence[float],
                     at_speed: bool = False) -> np.ndarray:
        """Convert a sample sequence.

        Vectorised over the whole bank: one comparison matrix instead of
        ``n_samples * 256`` scalar :meth:`ComparatorBehavior.decide`
        calls.  Decision arithmetic mirrors the scalar path exactly
        (same operand order), so the codes are bit-identical to calling
        :meth:`convert` per sample.
        """
        vins = np.asarray(vins, dtype=float)
        n_samples = vins.shape[0]
        if not self.clocks.functional or (at_speed
                                          and self.clocks.degraded):
            return np.zeros(n_samples, dtype=int)
        comps = self.comparators
        offsets = np.array([c.offset for c in comps])
        vrefs = np.array([self.ladder.reference(k + 1)
                          for k in range(len(comps))])
        mixed = np.array([c.mixed_band for c in comps])
        shifted = vins[:, None] + offsets
        levels = shifted > vrefs
        flip = (mixed > 0.0) & (np.abs(shifted - vrefs) < mixed)
        levels ^= flip
        if at_speed:
            degraded = np.array([c.clock_degraded for c in comps])
            levels &= ~degraded
        stuck = np.array([c.stuck is not None for c in comps])
        if stuck.any():
            forced = np.array([bool(c.stuck) for c in comps])
            levels = np.where(stuck, forced, levels)
        return self.decoder.decode_many(levels).astype(int)

    # -- characterisation -------------------------------------------------------

    def full_scale(self) -> tuple:
        """(low, high) analog input range."""
        return (float(self.ladder.taps[0]), float(self.ladder.taps[-1]))

    def transfer_codes(self, n_points: int = 2048) -> np.ndarray:
        """Static transfer function over a fine input ramp."""
        lo, hi = self.full_scale()
        span = hi - lo
        vins = np.linspace(lo - 0.02 * span, hi + 0.02 * span, n_points)
        return self.convert_many(vins)


def nominal_adc() -> FlashADC:
    """Fault-free behavioral ADC at nominal conditions."""
    return FlashADC()
