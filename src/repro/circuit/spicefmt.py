"""SPICE-format netlist reader/writer.

Supports the subset of Berkeley-SPICE syntax this library generates and
consumes: R / C / V / I / E (VCVS) / G (VCCS) / D / M cards, ``.model``
cards for level-1 MOSFETs and diodes, PULSE / SIN / PWL / DC source
specifications, engineering suffixes (``2.2u``, ``10k``, ``1MEG``),
comment lines (``*``) and ``+`` continuations.

This makes the simulator interoperable: macros can be exported for
cross-checking in ngspice, and externally authored netlists can be fed
into the defect-oriented flow.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .elements import (Capacitor, CurrentSource, Diode, Resistor, VCCS,
                       VCVS, VoltageSource)
from .mosfet import Mosfet, MosParams
from .netlist import Circuit, CircuitError
from .waveforms import DC, PWL, Pulse, Sin

_SUFFIXES = [
    ("meg", 1e6), ("mil", 25.4e-6),
    ("t", 1e12), ("g", 1e9), ("k", 1e3), ("m", 1e-3), ("u", 1e-6),
    ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
]


class SpiceFormatError(Exception):
    """Raised for unparseable netlist text."""


def parse_value(token: str) -> float:
    """Parse a SPICE number with an optional engineering suffix."""
    token = token.strip().lower()
    match = re.match(r"^([+-]?[0-9]*\.?[0-9]+(?:e[+-]?[0-9]+)?)"
                     r"([a-z]*)$", token)
    if not match:
        raise SpiceFormatError(f"bad numeric value {token!r}")
    value = float(match.group(1))
    suffix = match.group(2)
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            return value * scale
    return value


def format_value(value: float) -> str:
    """Format a float compactly with an engineering suffix."""
    for name, scale in (("g", 1e9), ("meg", 1e6), ("k", 1e3)):
        if abs(value) >= scale:
            return _strip(f"{value / scale:.6g}") + name
    if value == 0.0 or abs(value) >= 1.0:
        return _strip(f"{value:.6g}")
    for name, scale in (("m", 1e-3), ("u", 1e-6), ("n", 1e-9),
                        ("p", 1e-12), ("f", 1e-15)):
        if abs(value) >= scale:
            return _strip(f"{value / scale:.6g}") + name
    return _strip(f"{value:.6g}")


def _strip(text: str) -> str:
    return text


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _source_spec(value) -> str:
    if isinstance(value, Pulse):
        return (f"PULSE({format_value(value.low)} "
                f"{format_value(value.high)} {format_value(value.delay)}"
                f" {format_value(value.rise)} {format_value(value.fall)}"
                f" {format_value(value.width)} "
                f"{format_value(value.period)})")
    if isinstance(value, Sin):
        return (f"SIN({format_value(value.offset)} "
                f"{format_value(value.amplitude)} "
                f"{format_value(value.freq)} "
                f"{format_value(value.delay)})")
    if isinstance(value, PWL):
        points = " ".join(f"{format_value(t)} {format_value(v)}"
                          for t, v in zip(value.times, value.values))
        return f"PWL({points})"
    if isinstance(value, DC):
        return format_value(value.value)
    if callable(getattr(value, "at", None)):
        raise SpiceFormatError(
            f"cannot serialise waveform {type(value).__name__}")
    return format_value(float(value))


def _card_name(prefix: str, name: str) -> str:
    """SPICE card name: prefix the type letter unless already present."""
    if name[:1].upper() == prefix:
        return name
    return prefix + name


def write_netlist(circuit: Circuit) -> str:
    """Serialise a circuit to SPICE text.

    Element names that already start with their SPICE type letter are
    kept verbatim (so write/parse round trips preserve them); others get
    the letter prefixed.
    """
    lines: List[str] = [f"* {circuit.title or 'repro netlist'}"]
    models: Dict[Tuple, str] = {}

    def model_name(params: MosParams, polarity: str) -> str:
        key = (polarity, params)
        if key not in models:
            models[key] = f"{'n' if polarity == 'n' else 'p'}mos" \
                          f"{len(models)}"
        return models[key]

    for el in circuit.elements:
        n = el.nodes
        if isinstance(el, Resistor):
            lines.append(f"{_card_name('R', el.name)} {n[0]} {n[1]} "
                         f"{format_value(el.resistance)}")
        elif isinstance(el, Capacitor):
            lines.append(f"{_card_name('C', el.name)} {n[0]} {n[1]} "
                         f"{format_value(el.capacitance)}")
        elif isinstance(el, VoltageSource):
            lines.append(f"{_card_name('V', el.name)} {n[0]} {n[1]} "
                         f"{_source_spec(el.value)}" +
                         (f" AC {format_value(el.ac)}" if el.ac else ""))
        elif isinstance(el, CurrentSource):
            lines.append(f"{_card_name('I', el.name)} {n[0]} {n[1]} "
                         f"{_source_spec(el.value)}")
        elif isinstance(el, VCVS):
            lines.append(f"{_card_name('E', el.name)} {n[0]} {n[1]} {n[2]} {n[3]} "
                         f"{format_value(el.gain)}")
        elif isinstance(el, VCCS):
            lines.append(f"{_card_name('G', el.name)} {n[0]} {n[1]} {n[2]} {n[3]} "
                         f"{format_value(el.gm)}")
        elif isinstance(el, Diode):
            lines.append(f"{_card_name('D', el.name)} {n[0]} {n[1]} DMOD")
        elif isinstance(el, Mosfet):
            name = model_name(el.params, el.polarity)
            lines.append(f"{_card_name('M', el.name)} {n[0]} {n[1]} {n[2]} {n[3]} "
                         f"{name} W={format_value(el.w)} "
                         f"L={format_value(el.l)}")
        else:
            raise SpiceFormatError(
                f"cannot serialise element {type(el).__name__}")

    for (polarity, params), name in models.items():
        kind = "NMOS" if polarity == "n" else "PMOS"
        lines.append(
            f".model {name} {kind} (LEVEL=1 "
            f"VTO={params.vto:g} KP={params.kp:g} "
            f"LAMBDA={params.lam:g} GAMMA={params.gamma:g} "
            f"PHI={params.phi:g} COX={params.cox:g} "
            f"CGSO={params.cov:g})")
    if any(isinstance(el, Diode) for el in circuit.elements):
        lines.append(".model DMOD D (IS=1e-14)")
    lines.append(".end")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def _join_continuations(text: str) -> List[str]:
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not lines:
                raise SpiceFormatError("continuation with no prior card")
            lines[-1] += " " + line.lstrip()[1:]
        else:
            lines.append(line.strip())
    return lines


_PAREN_FUNCS = ("pulse", "sin", "pwl")


def _tokenize_card(line: str) -> List[str]:
    """Split a card into tokens, keeping func(...) groups together."""
    line = re.sub(r"\(", " ( ", line)
    line = re.sub(r"\)", " ) ", line)
    raw = line.split()
    tokens: List[str] = []
    depth = 0
    for tok in raw:
        if tok == "(":
            depth += 1
            if tokens and tokens[-1].lower() in _PAREN_FUNCS or depth > 1:
                tokens[-1] += "("
            continue
        if tok == ")":
            depth -= 1
            if depth >= 0 and tokens and "(" in tokens[-1]:
                tokens[-1] += ")"
            continue
        if depth > 0 and tokens and "(" in tokens[-1] and \
                not tokens[-1].endswith(")"):
            tokens[-1] += " " + tok
        else:
            tokens.append(tok)
    return tokens


def _parse_source_value(tokens: List[str]):
    """Interpret the value part of a V/I card."""
    spec = " ".join(tokens)
    lower = spec.lower()
    if lower.startswith("dc"):
        spec = spec[2:].strip()
        lower = spec.lower()
    match = re.match(r"^(pulse|sin|pwl)\((.*)\)$", lower, re.S)
    if match:
        func = match.group(1)
        args = [parse_value(t) for t in match.group(2).split()]
        if func == "pulse":
            if len(args) != 7:
                raise SpiceFormatError("PULSE needs 7 arguments")
            low, high, delay, rise, fall, width, period = args
            return Pulse(low, high, delay, rise, fall, width, period)
        if func == "sin":
            if len(args) < 3:
                raise SpiceFormatError("SIN needs >= 3 arguments")
            delay = args[3] if len(args) > 3 else 0.0
            return Sin(args[0], args[1], args[2], delay)
        pairs = list(zip(args[0::2], args[1::2]))
        return PWL(pairs)
    return parse_value(spec)


def parse_netlist(text: str) -> Circuit:
    """Parse SPICE text into a flat :class:`Circuit`.

    The first line is treated as the title, per SPICE convention, unless
    it is itself a valid card; ``.end`` terminates the deck.
    ``.subckt`` / ``.ends`` definitions and ``X`` instantiation cards
    are supported and expanded (a subcircuit may instantiate
    subcircuits defined before it).
    """
    lines = _join_continuations(text)
    circuit = Circuit()
    models: Dict[str, Tuple[str, MosParams]] = {}
    cards: List[List[str]] = []
    subckt_blocks: List[Tuple[str, List[str], List[str]]] = []
    current_subckt: Optional[Tuple[str, List[str], List[str]]] = None

    for index, line in enumerate(lines):
        lower = line.lower()
        if lower.startswith(".ends"):
            if current_subckt is None:
                raise SpiceFormatError(".ends without .subckt")
            subckt_blocks.append(current_subckt)
            current_subckt = None
            continue
        if lower.startswith(".subckt"):
            if current_subckt is not None:
                raise SpiceFormatError("nested .subckt definitions")
            parts = line.split()
            if len(parts) < 3:
                raise SpiceFormatError(f"bad .subckt card: {line!r}")
            current_subckt = (parts[1], parts[2:], [])
            continue
        if current_subckt is not None:
            current_subckt[2].append(line)
            continue
        if lower.startswith(".end"):
            break
        if lower.startswith(".model"):
            _parse_model(line, models)
            continue
        if lower.startswith("."):
            continue  # analysis cards are ignored
        tokens = _tokenize_card(line)
        if index == 0 and not _card_looks_valid(tokens):
            # SPICE convention: the first line is the title
            circuit.title = line
            continue
        cards.append(tokens)
    if current_subckt is not None:
        raise SpiceFormatError(
            f".subckt {current_subckt[0]} is never closed")

    subcircuits = _build_subcircuits(subckt_blocks, models)
    for tokens in cards:
        _parse_card(circuit, tokens, models, subcircuits)
    return circuit


def _build_subcircuits(blocks, models) -> Dict[str, "object"]:
    """Parse .subckt bodies into Subcircuit templates, in order."""
    from .hierarchy import Subcircuit
    subcircuits: Dict[str, Subcircuit] = {}
    for name, ports, body_lines in blocks:
        template = Circuit(name)
        for line in body_lines:
            if line.lower().startswith(".model"):
                _parse_model(line, models)
                continue
            if line.lower().startswith("."):
                continue
            _parse_card(template, _tokenize_card(line), models,
                        subcircuits)
        subcircuits[name.lower()] = Subcircuit(
            name=name, ports=ports, circuit=template)
    return subcircuits


_MIN_TOKENS = {"R": 4, "C": 4, "V": 4, "I": 4, "E": 6, "G": 6, "D": 4,
               "M": 6, "X": 2}


def _card_looks_valid(tokens: List[str]) -> bool:
    """Structural check distinguishing a card from a title line."""
    if not tokens:
        return False
    kind = tokens[0][0].upper()
    if kind not in _MIN_TOKENS or len(tokens) < _MIN_TOKENS[kind]:
        return False
    if kind in ("R", "C"):
        try:
            parse_value(tokens[3])
        except SpiceFormatError:
            return False
    return True


def _parse_model(line: str, models: Dict) -> None:
    match = re.match(r"\.model\s+(\S+)\s+(\S+)\s*\((.*)\)\s*$", line,
                     re.I | re.S)
    if not match:
        raise SpiceFormatError(f"bad .model card: {line!r}")
    name, kind = match.group(1).lower(), match.group(2).upper()
    params = {}
    for part in re.findall(r"(\w+)\s*=\s*(\S+)", match.group(3)):
        params[part[0].lower()] = parse_value(part[1])
    if kind in ("NMOS", "PMOS"):
        mos = MosParams(kp=params.get("kp", 2e-5),
                        vto=params.get("vto",
                                       0.7 if kind == "NMOS" else -0.7),
                        lam=params.get("lambda", 0.0),
                        gamma=params.get("gamma", 0.0),
                        phi=params.get("phi", 0.6),
                        cox=params.get("cox", 1.7e-3),
                        cov=params.get("cgso", 0.0))
        models[name] = ("n" if kind == "NMOS" else "p", mos)
    elif kind == "D":
        models[name] = ("d", params.get("is", 1e-14))
    else:
        raise SpiceFormatError(f"unsupported model kind {kind!r}")


def _parse_card(circuit: Circuit, tokens: List[str], models: Dict,
                subcircuits: Optional[Dict] = None) -> None:
    kind = tokens[0][0].upper()
    name = tokens[0]
    if kind == "X":
        from .hierarchy import instantiate
        if len(tokens) < 2:
            raise SpiceFormatError(f"bad X card {tokens!r}")
        subname = tokens[-1].lower()
        if not subcircuits or subname not in subcircuits:
            raise SpiceFormatError(
                f"{name!r} references unknown subcircuit "
                f"{tokens[-1]!r}")
        instantiate(circuit, subcircuits[subname], name, tokens[1:-1])
        return
    if kind == "R":
        circuit.add(Resistor(name, tokens[1], tokens[2],
                             parse_value(tokens[3])))
    elif kind == "C":
        circuit.add(Capacitor(name, tokens[1], tokens[2],
                              parse_value(tokens[3])))
    elif kind in ("V", "I"):
        ac = 0.0
        value_tokens = tokens[3:]
        for k, tok in enumerate(value_tokens):
            if tok.lower() == "ac" and k + 1 < len(value_tokens):
                ac = parse_value(value_tokens[k + 1])
                value_tokens = value_tokens[:k]
                break
        value = _parse_source_value(value_tokens)
        cls = VoltageSource if kind == "V" else CurrentSource
        circuit.add(cls(name, tokens[1], tokens[2], value, ac=ac))
    elif kind == "E":
        circuit.add(VCVS(name, tokens[1], tokens[2], tokens[3],
                         tokens[4], parse_value(tokens[5])))
    elif kind == "G":
        circuit.add(VCCS(name, tokens[1], tokens[2], tokens[3],
                         tokens[4], parse_value(tokens[5])))
    elif kind == "D":
        model = models.get(tokens[3].lower())
        isat = model[1] if model and model[0] == "d" else 1e-14
        circuit.add(Diode(name, tokens[1], tokens[2], isat=isat))
    elif kind == "M":
        model = models.get(tokens[5].lower())
        if model is None or model[0] not in ("n", "p"):
            raise SpiceFormatError(
                f"MOSFET {name!r} references unknown model "
                f"{tokens[5]!r}")
        w = l = None
        for tok in tokens[6:]:
            key, _, val = tok.partition("=")
            if key.lower() == "w":
                w = parse_value(val)
            elif key.lower() == "l":
                l = parse_value(val)
        if w is None or l is None:
            raise SpiceFormatError(f"MOSFET {name!r} needs W= and L=")
        circuit.add(Mosfet(name, tokens[1], tokens[2], tokens[3],
                           tokens[4], model[1], w=w, l=l,
                           polarity=model[0]))
    else:
        raise SpiceFormatError(f"unsupported card {tokens[0]!r}")
