"""Source waveforms: clocks, triangles, piecewise-linear, sinusoids.

Waveform objects expose ``at(time) -> float`` and can be handed directly
to :class:`repro.circuit.elements.VoltageSource`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Sequence, Tuple


class DC:
    """Constant value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def at(self, time: float) -> float:
        return self.value


class Pulse:
    """Periodic pulse (SPICE PULSE): low -> high with linear edges.

    Args:
        low, high: levels.
        delay: time before the first rising edge.
        rise, fall: edge durations.
        width: time at *high* level.
        period: repetition period.
    """

    def __init__(self, low: float, high: float, delay: float, rise: float,
                 fall: float, width: float, period: float) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if rise < 0 or fall < 0 or width < 0:
            raise ValueError("rise/fall/width must be non-negative")
        if rise + width + fall > period:
            raise ValueError("rise + width + fall must fit in the period")
        self.low = float(low)
        self.high = float(high)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def at(self, time: float) -> float:
        t = time - self.delay
        if t < 0:
            return self.low
        t = math.fmod(t, self.period)
        if t < self.rise:
            if self.rise == 0:
                return self.high
            return self.low + (self.high - self.low) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.high
        t -= self.width
        if t < self.fall:
            if self.fall == 0:
                return self.low
            return self.high - (self.high - self.low) * t / self.fall
        return self.low


class Triangle:
    """Periodic symmetric triangle sweeping ``low -> high -> low``.

    Used for the missing-code test stimulus: a full-range triangular
    waveform guarantees every code bin is visited.
    """

    def __init__(self, low: float, high: float, period: float,
                 delay: float = 0.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.low = float(low)
        self.high = float(high)
        self.period = float(period)
        self.delay = float(delay)

    def at(self, time: float) -> float:
        t = math.fmod(max(time - self.delay, 0.0), self.period)
        half = 0.5 * self.period
        frac = t / half if t < half else (self.period - t) / half
        return self.low + (self.high - self.low) * frac


class PWL:
    """Piecewise-linear waveform from (time, value) breakpoints."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 1:
            raise ValueError("PWL needs at least one point")
        times = [p[0] for p in points]
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL breakpoints must be strictly increasing")
        self.times: List[float] = list(times)
        self.values: List[float] = [p[1] for p in points]

    def at(self, time: float) -> float:
        if time <= self.times[0]:
            return self.values[0]
        if time >= self.times[-1]:
            return self.values[-1]
        k = bisect_right(self.times, time)
        t0, t1 = self.times[k - 1], self.times[k]
        v0, v1 = self.values[k - 1], self.values[k]
        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)


class Sin:
    """Sinusoid ``offset + amplitude * sin(2*pi*freq*(t-delay))``."""

    def __init__(self, offset: float, amplitude: float, freq: float,
                 delay: float = 0.0) -> None:
        if freq <= 0:
            raise ValueError("frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.delay = float(delay)

    def at(self, time: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.freq * (time - self.delay))


def three_phase_clocks(period: float, vdd: float, edge: float = 1e-9,
                       gap: float = 0.0):
    """Non-overlapping three-phase clocks (sample, amplify, latch).

    Each phase occupies one third of the period; *gap* shaves extra
    non-overlap margin off each phase.

    Returns:
        Tuple ``(phi1, phi2, phi3)`` of :class:`Pulse` waveforms.
    """
    third = period / 3.0
    width = third - 2.0 * edge - gap
    if width <= 0:
        raise ValueError("period too short for the requested edges/gap")
    phi1 = Pulse(0.0, vdd, 0.0, edge, edge, width, period)
    phi2 = Pulse(0.0, vdd, third, edge, edge, width, period)
    phi3 = Pulse(0.0, vdd, 2.0 * third, edge, edge, width, period)
    return phi1, phi2, phi3
