"""Transient analysis (fixed-step backward Euler / trapezoidal).

The paper's fault simulations are clocked comparisons over a handful of
clock periods; a fixed-step implicit integrator with a Newton solve per
timepoint is robust against the stiff circuits fault injection creates
(sub-ohm shorts next to femtofarad capacitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .dc import ConvergenceError, operating_point, _newton
from .elements import Capacitor
from .mna import MNASystem, StampContext
from .netlist import Circuit


@dataclass
class TransientResult:
    """Sampled waveforms from a transient run.

    Attributes:
        times: array of timepoints (including t=0 from the initial OP).
        compiled: index map for interpreting the raw solution matrix.
        xs: solution matrix, shape (len(times), n_unknowns).
    """

    times: np.ndarray
    compiled: "object"
    xs: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of a node voltage."""
        idx = self.compiled.index_of(node)
        if idx < 0:
            return np.zeros(len(self.times))
        return self.xs[:, idx]

    def current(self, source_name: str) -> np.ndarray:
        """Waveform of a voltage-source branch current (+ -> through the
        source from + to -)."""
        return self.xs[:, self.compiled.branch_index[source_name]]

    def at_time(self, node: str, time: float) -> float:
        """Node voltage at the timepoint closest to *time*."""
        k = int(np.argmin(np.abs(self.times - time)))
        return float(self.voltage(node)[k])

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Boolean mask of timepoints in [t0, t1]."""
        return (self.times >= t0) & (self.times <= t1)


def supply_current(result, source_name: str):
    """Current *drawn from* a supply (positive when the supply sources).

    Works for both :class:`TransientResult` (returns an array) and
    :class:`repro.circuit.dc.DCResult` (returns a float).
    """
    i = result.current(source_name)
    return -i


def transient(circuit: Circuit, tstop: float, dt: float,
              method: str = "be", x0: Optional[np.ndarray] = None,
              record_every: int = 1,
              fine_windows: Optional[Sequence] = None,
              x0_guess: Optional[np.ndarray] = None,
              guide: Optional[tuple] = None,
              solver: str = "auto") -> TransientResult:
    """Run a transient analysis from a DC operating point at t=0.

    Args:
        circuit: netlist to simulate.
        tstop: end time.
        dt: fixed timestep.
        method: ``"be"`` (backward Euler, default) or ``"trap"``.
        x0: optional initial solution; if None an operating point at t=0
            is computed first.
        record_every: keep every k-th timepoint (memory control).
        fine_windows: optional list of ``(t0, t1, dt_fine)`` intervals in
            which the finer step is used.  Essential for regenerative
            latches: backward Euler with a step much larger than C/gm
            numerically *stabilises* the latch's unstable mode (the BE
            amplification 1/(1 - lambda*h) has magnitude < 1 for
            lambda*h > 2), which would freeze comparators at their
            metastable point.
        x0_guess: optional warm Newton guess for the t=0 operating
            point (e.g. the good-circuit solution of a faulty variant).
            The full gmin/source stepping ladder stays as fallback, so
            this only changes where the first plain Newton starts.
        guide: optional ``(times, xs)`` reference trajectory aligned to
            this circuit's unknown ordering and recorded on the same
            ``tstop/dt/fine_windows`` schedule at ``record_every=1``.
            Each timepoint's first Newton stage is seeded with the
            previous solution plus the guide's known step increment; the
            retry stage still restarts from the previous solution, so a
            lane that drifts off the guide converges exactly as before.
        solver: linear backend for the scalar system (see
            :func:`repro.circuit.backend.scalar_backend`); the t=0
            operating point uses the same backend.

    Raises:
        ConvergenceError: if a timepoint fails to converge even after
            local step halving.
    """
    if method not in ("be", "trap"):
        raise ValueError(f"unknown integration method {method!r}")
    if dt <= 0 or tstop <= 0:
        raise ValueError("dt and tstop must be positive")
    windows = sorted(fine_windows or [])
    for t0, t1, dtf in windows:
        if dtf <= 0 or t1 <= t0:
            raise ValueError(f"malformed fine window ({t0}, {t1}, {dtf})")

    compiled = circuit.compile()
    system = MNASystem(compiled, solver=solver)
    if x0 is None:
        op = operating_point(circuit, x0=x0_guess, time=0.0,
                             solver=solver)
        x = op.x
    else:
        x = np.asarray(x0, dtype=float).copy()
        if len(x) != compiled.size:
            raise ValueError("x0 has the wrong size for this circuit")
    if guide is not None:
        guide_times, guide_xs = guide
        if guide_xs.ndim != 2 or guide_xs.shape[1] != compiled.size:
            guide = None

    caps: List[Capacitor] = [el for el in circuit.elements
                             if isinstance(el, Capacitor)]
    cap_currents: Dict[str, float] = {c.name: 0.0 for c in caps}

    times = [0.0]
    xs = [x.copy()]
    t = 0.0
    step = 0
    while t < tstop - 1e-15:
        h = min(_step_at(t, dt, windows), tstop - t)
        x_seed = None
        if guide is not None and step + 1 < len(guide_times) \
                and guide_times[step] == t \
                and guide_times[step + 1] == t + h:
            # seed with the guide's increment over this very step; the
            # schedules are deterministic, so a mismatch simply means
            # the guide no longer applies (and the seed is skipped)
            x_seed = x + (guide_xs[step + 1] - guide_xs[step])
        x_next = _solve_timepoint(circuit, system, x, t, h, method,
                                  cap_currents, x_seed=x_seed)
        if x_next is None:
            # local step halving, two levels deep
            x_half = x
            sub_t = t
            converged = True
            for _ in range(2):
                x_try = _solve_timepoint(circuit, system, x_half, sub_t,
                                         h / 2.0, method, cap_currents)
                if x_try is None:
                    converged = False
                    break
                sub_t += h / 2.0
                x_half = x_try
            if not converged:
                raise ConvergenceError(
                    f"transient failed at t={t + h:.3e} for circuit "
                    f"{circuit.title!r}")
            x_next = x_half
        if method == "trap":
            ctx = StampContext(mode="tran", time=t + h, dt=h, x_prev=x,
                               method=method, cap_currents=cap_currents)
            new_currents = {}
            for c in caps:
                new_currents[c.name] = c.charge_current(system, x_next, x,
                                                        ctx)
            cap_currents.update(new_currents)
        t += h
        x = x_next
        step += 1
        if step % record_every == 0 or t >= tstop - 1e-15:
            times.append(t)
            xs.append(x.copy())

    return TransientResult(times=np.array(times), compiled=compiled,
                           xs=np.array(xs))


#: Newton retry ladder for one implicit timepoint, as ``(gmin,
#: max_iter, damping)`` stages.  The batched kernel
#: (:mod:`repro.circuit.batch`) re-runs stalled lanes through the same
#: ladder, so scalar and batched paths must share these values for the
#: bit-identical-fallback guarantee to hold.
TIMEPOINT_STAGES = ((1e-12, 80, 1.0), (1e-9, 120, 0.7))


def _step_at(t: float, dt: float, windows) -> float:
    """Timestep at time *t*: the finest window covering t, else *dt*.

    If t is just before a window start, the step is clipped so the next
    timepoint lands on the window boundary.
    """
    h = dt
    for t0, t1, dtf in windows:
        if t0 <= t < t1:
            h = min(h, dtf)
        elif t < t0:
            h = min(h, t0 - t)
            break
    return h


def _solve_timepoint(circuit, system, x_prev, t, h, method, cap_currents,
                     x_seed=None):
    """Newton solve for one implicit timepoint; None on failure.

    ``x_seed`` optionally replaces ``x_prev`` as the first stage's
    Newton start (warm-start guides); the retry stage always restarts
    from ``x_prev``.
    """
    ctx = StampContext(mode="tran", time=t + h, dt=h, x_prev=x_prev,
                       gmin=TIMEPOINT_STAGES[0][0], method=method,
                       cap_currents=cap_currents)
    x = _newton(circuit, system, ctx,
                x_prev if x_seed is None else x_seed,
                max_iter=TIMEPOINT_STAGES[0][1])
    if x is None:
        # retry with a stronger gmin, then without a warm start
        ctx.gmin = TIMEPOINT_STAGES[1][0]
        x = _newton(circuit, system, ctx, x_prev,
                    max_iter=TIMEPOINT_STAGES[1][1],
                    damping=TIMEPOINT_STAGES[1][2])
    return x
