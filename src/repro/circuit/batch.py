"""Batched MNA transient kernel.

Fault simulation runs the *same* circuit topology many times with
different source values and device parameters: above/below input probes,
reduced process corners, fault-model variants.  This module stacks B such
lanes into one ``(B, n, n)`` system and solves the whole stack with one
``numpy.linalg.solve`` call per Newton iteration (LAPACK runs the same
``dgesv`` per slice as the scalar path, so per-lane solutions are
bit-identical).

Assembly is a *compiled contribution program*: at batch setup the element
list is flattened — in element insertion order, contribution by
contribution — into index/value buffers covering every matrix and RHS
entry any element would stamp.  Each Newton iteration then

1. refreshes the dynamic segments with array math vectorised across
   *both* lanes and devices (all MOSFETs evaluate their square-law model
   in one ``(B, n_devices)`` call), and
2. scatters each lane's contribution list with one ``numpy.bincount``
   (which accumulates duplicate indices strictly in order).

Because the contribution order equals the scalar stamp order and
``bincount`` sums sequentially from +0.0, every matrix entry is the very
same floating-point sum the scalar assembly computes — batched results
are bit-identical, at a fraction of the per-element call overhead that a
naive "stamp each element with (B,) arrays" approach pays.

Per-lane convergence masking: lanes that converge are frozen, lanes that
fail a Newton stage retry through the scalar path's exact gmin/damping
ladder, and lanes that fail a timepoint retry it with two halved steps —
all without stalling the remaining lanes.  A lane that still fails is
reported as a :class:`~repro.circuit.dc.ConvergenceError`; callers
(see :func:`transient_lanes`) re-run such lanes through the scalar
:func:`~repro.circuit.transient.transient`, which guarantees the overall
results are bit-identical to an all-scalar run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import (SparsePattern, phase_timer, record_matrix,
                      resolve_solver)
from .dc import (ConvergenceError, DCResult, GMIN_LADDER, MAX_NEWTON_STEP,
                 NEWTON_VTOL, SOURCE_GMIN_LADDER, SOURCE_STEPS,
                 operating_point)
from .elements import (BatchUnsupported, Capacitor, CurrentSource, Diode,
                       Resistor, Switch, VCCS, VCVS, VoltageSource)
from .mna import StampContext
from .mosfet import Mosfet, _ids_arrays
from .netlist import Circuit
from .transient import TIMEPOINT_STAGES, TransientResult, _step_at

__all__ = ["BatchUnsupported", "BatchedMNASystem", "LaneResult",
           "SparseBatchedMNASystem", "clear_kernel_cache",
           "operating_point_lanes", "structure_signature",
           "transient_batch", "transient_lanes"]

#: what one lane of a batched run yields: waveforms, or the error that
#: lane would have raised
LaneResult = Union[TransientResult, ConvergenceError]


def structure_signature(circuit: Circuit) -> tuple:
    """Hashable topology fingerprint of a circuit.

    Two circuits with equal signatures compile to the same unknown
    ordering and stamp the same matrix slots, so they can share a batch
    (their element *values* may differ freely).
    """
    return tuple(
        (type(el).__name__, el.name, tuple(el.nodes), el.branches,
         getattr(el, "polarity", None))
        for el in circuit.elements)


def _masked(value, mask):
    """Align a scalar-or-(B,) stamp value with a lane mask."""
    if np.ndim(value) == 0:
        return value
    return value[mask]


class BatchedMNASystem:
    """Dense ``(B, n, n)`` MNA stack with masked stamping helpers.

    The helpers mirror :class:`~repro.circuit.mna.MNASystem` entry by
    entry; ``value`` may be a scalar (same for all lanes) or a ``(B,)``
    array, and ``mask`` restricts a stamp to a lane subset (the MOSFET
    source/drain swap groups).  The production assembly path is the
    compiled contribution program (:class:`_BatchProgram`); these helpers
    back the per-element ``stamp_batch`` reference path the tests check
    the program against.
    """

    #: which linear backend this system solves through
    kind = "dense"

    def __init__(self, compiled, nlanes: int) -> None:
        self.compiled = compiled
        self.n = compiled.size
        self.nlanes = nlanes
        self.G = np.zeros((nlanes, self.n, self.n))
        self.b = np.zeros((nlanes, self.n))
        self._eye: Optional[np.ndarray] = None
        record_matrix("dense-batched", self.n, self.n * self.n, nlanes)

    def solve_stack(self, program, active: np.ndarray):
        """Solve the active lanes; ``(X_new, ok)`` like ``_solve_stack``.

        ``program`` is unused on the dense path (assembly already wrote
        ``self.G``/``self.b``); the sparse system needs it for the
        pattern-order data.  The identity used to neutralise inactive
        lanes is cached — it is only materialised once some lane has
        converged or died, so a single-lane solve never allocates it.
        """
        if self._eye is None and not active.all():
            self._eye = np.eye(self.n)
        with phase_timer("solve"):
            return _solve_stack(self.G, self.b, active, self._eye)

    # -- index helpers -----------------------------------------------------

    def indices(self, nodes: Sequence[str]) -> List[int]:
        return [self.compiled.index_of(n) for n in nodes]

    def branch(self, element_name: str) -> int:
        return self.compiled.branch_index[element_name]

    def voltage(self, X: Optional[np.ndarray], i: int, j: int):
        """Per-lane voltage between matrix indices *i* and *j*."""
        if X is None or (i < 0 and j < 0):
            return np.zeros(self.nlanes)
        vi = X[:, i] if i >= 0 else 0.0
        vj = X[:, j] if j >= 0 else 0.0
        return vi - vj

    # -- stamping helpers ---------------------------------------------------

    def reset(self) -> None:
        self.G[:] = 0.0
        self.b[:] = 0.0

    def add_entry(self, row, col, value, mask=None) -> None:
        if row >= 0 and col >= 0:
            if mask is None:
                self.G[:, row, col] += value
            else:
                self.G[mask, row, col] += _masked(value, mask)

    def add_rhs(self, row, value, mask=None) -> None:
        if row >= 0:
            if mask is None:
                self.b[:, row] += value
            else:
                self.b[mask, row] += _masked(value, mask)

    def add_conductance(self, i, j, g, mask=None) -> None:
        if mask is None:
            if i >= 0:
                self.G[:, i, i] += g
            if j >= 0:
                self.G[:, j, j] += g
            if i >= 0 and j >= 0:
                self.G[:, i, j] -= g
                self.G[:, j, i] -= g
        else:
            gm = _masked(g, mask)
            if i >= 0:
                self.G[mask, i, i] += gm
            if j >= 0:
                self.G[mask, j, j] += gm
            if i >= 0 and j >= 0:
                self.G[mask, i, j] -= gm
                self.G[mask, j, i] -= gm

    def add_current(self, node, value, mask=None) -> None:
        if node >= 0:
            if mask is None:
                self.b[:, node] += value
            else:
                self.b[mask, node] += _masked(value, mask)

    def add_transconductance(self, p, n, cp, cn, g, mask=None) -> None:
        for row, sign_r in ((p, 1.0), (n, -1.0)):
            if row < 0:
                continue
            if cp >= 0:
                self.add_entry(row, cp, sign_r * g, mask=mask)
            if cn >= 0:
                contrib = sign_r * g
                if mask is None:
                    self.G[:, row, cn] -= contrib
                else:
                    self.G[mask, row, cn] -= _masked(contrib, mask)


class SparseBatchedMNASystem(BatchedMNASystem):
    """Sparse counterpart of :class:`BatchedMNASystem`.

    Holds no dense ``(B, n, n)`` stack — at full-chip size one lane's
    dense matrix alone is hundreds of megabytes.  The compiled program
    scatters each lane's contributions onto its fixed
    :class:`~repro.circuit.backend.SparsePattern` (stored on the
    program, since transient and DC programs of one batch have
    different patterns) and :meth:`solve_stack` factors each active
    lane with SuperLU, falling back to a dense per-lane solve exactly
    like ``_solve_stack`` when a factorisation is singular or
    ill-conditioned.

    The index helpers (``indices``/``branch``/``voltage``) are
    inherited; the dense stamping helpers are unreachable (nothing
    assembles a sparse system element by element).
    """

    kind = "sparse"

    def __init__(self, compiled, nlanes: int) -> None:
        self.compiled = compiled
        self.n = compiled.size
        self.nlanes = nlanes
        self.b = np.zeros((nlanes, self.n))
        self._eye = None

    def solve_stack(self, program, active: np.ndarray):
        pattern = program.pattern
        data = program.data
        X_new = np.zeros_like(self.b)
        ok = np.zeros(self.nlanes, dtype=bool)
        for k in np.flatnonzero(active):
            x, good = pattern.solve_lane(data[k], self.b[k])
            if not good:
                # per-lane dense fallback: same contract as
                # _solve_stack's LinAlgError retry loop
                try:
                    with phase_timer("solve"):
                        x = np.linalg.solve(pattern.densify(data[k]),
                                            self.b[k])
                except np.linalg.LinAlgError:
                    continue
                if not np.all(np.isfinite(x)):
                    continue
            X_new[k] = x
            ok[k] = True
        return X_new, ok


# -- reference slot assembly -------------------------------------------------


def _build_slots(circuits: Sequence[Circuit], system: BatchedMNASystem):
    """Precompute per-element index/parameter slots for a lane group.

    Raises :class:`BatchUnsupported` when any element position cannot
    be stamped batched (callers fall back to the scalar path).
    """
    per_lane = [list(c.elements) for c in circuits]
    slots = []
    for pos, el in enumerate(per_lane[0]):
        lanes = [elements[pos] for elements in per_lane]
        slots.append((el, el.batch_slot(system, lanes)))
    return slots


def _assemble(system: BatchedMNASystem, slots, X: np.ndarray,
              ctx: StampContext) -> None:
    """Reference assembly through the elements' ``stamp_batch`` methods.

    Semantically (and bitwise) equal to :meth:`_BatchProgram.assemble`;
    kept as the executable specification the tests diff the program
    against, element type by element type.
    """
    system.reset()
    for el, slot in slots:
        el.stamp_batch(system, X, ctx, slot)


# -- compiled contribution program -------------------------------------------


class _NodeGather:
    """Vectorised ``X[:, idx]`` lookup with ground indices reading 0.0."""

    def __init__(self, idx) -> None:
        self.idx = np.asarray(idx, dtype=np.intp)
        self.clipped = np.where(self.idx < 0, 0, self.idx)
        self.ground = self.idx < 0
        self.any_ground = bool(self.ground.any())

    def __call__(self, X: np.ndarray) -> np.ndarray:
        v = X[:, self.clipped]
        if self.any_ground:
            v = np.where(self.ground, 0.0, v)
        return v


def _cols(starts: np.ndarray, lo: int, hi: int):
    """Device-major buffer columns ``[start+lo, start+hi)`` per device.

    Returns a slice when the result is one contiguous run (the common
    case: elements of one type appear consecutively in the netlist),
    which makes the per-iteration buffer writes plain memcpys.
    """
    cols = (starts[:, None] + np.arange(lo, hi)[None, :]).ravel()
    if len(cols) and np.array_equal(cols,
                                    np.arange(cols[0], cols[0] + len(cols))):
        return slice(int(cols[0]), int(cols[0] + len(cols)))
    return cols


class _ProgramBuilder:
    """Accumulates the flat contribution list during program build.

    ``g``/``b`` contributions are appended strictly in scalar stamp
    order.  Ground-guarded entries either drop out entirely (static
    values) or redirect to a dump slot past the end of the matrix
    (dynamic segments must stay rectangular per device).
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.dump_g = n * n
        self.dump_b = n
        self.g_idx: List[int] = []
        self.g_val: List[object] = []  # float | (B,) array | None=dynamic
        self.b_idx: List[int] = []
        self.b_val: List[object] = []

    # matrix contributions

    def static_g(self, row: int, col: int, value) -> None:
        """Static index and value; dropped entirely on a ground index."""
        if row < 0 or col < 0:
            return
        self.g_idx.append(row * self.n + col)
        self.g_val.append(value)

    def fixed_g(self, row: int, col: int) -> int:
        """Static index, per-iteration value; ground redirects to dump."""
        pos = len(self.g_idx)
        if row >= 0 and col >= 0:
            self.g_idx.append(row * self.n + col)
        else:
            self.g_idx.append(self.dump_g)
        self.g_val.append(None)
        return pos

    def dyn_g(self, count: int) -> int:
        """Per-iteration index *and* value (MOSFET source/drain swap)."""
        start = len(self.g_idx)
        self.g_idx.extend([self.dump_g] * count)
        self.g_val.extend([None] * count)
        return start

    # RHS contributions

    def static_b(self, row: int, value) -> None:
        if row < 0:
            return
        self.b_idx.append(row)
        self.b_val.append(value)

    def fixed_b(self, row: int) -> int:
        pos = len(self.b_idx)
        self.b_idx.append(row if row >= 0 else self.dump_b)
        self.b_val.append(None)
        return pos

    def dyn_b(self, count: int) -> int:
        start = len(self.b_idx)
        self.b_idx.extend([self.dump_b] * count)
        self.b_val.extend([None] * count)
        return start


class _VoltageSourceGroup:
    """RHS values for all voltage sources; the ±1 pattern is static."""

    def __init__(self) -> None:
        self.evals = []
        self.b_starts: List[int] = []

    def add(self, slot, builder: _ProgramBuilder) -> None:
        p, n = slot["pn"]
        br = slot["br"]
        builder.static_g(p, br, 1.0)
        builder.static_g(n, br, -1.0)
        builder.static_g(br, p, 1.0)
        builder.static_g(br, n, -1.0)
        self.b_starts.append(builder.fixed_b(br))
        self.evals.append(slot["values"])

    def finalize(self, nlanes: int) -> None:
        starts = np.asarray(self.b_starts, dtype=np.intp)
        self.cols_b = _cols(starts, 0, 1)

    def refresh(self, prog, X, ctx) -> None:
        vals = np.stack([ev(ctx.time) for ev in self.evals], axis=1)
        prog.VB[:, self.cols_b] = vals * ctx.source_scale


class _CurrentSourceGroup:
    """RHS-only stamps ``(p, -i), (n, +i)`` for current sources."""

    def __init__(self) -> None:
        self.evals = []
        self.b_starts: List[int] = []

    def add(self, slot, builder: _ProgramBuilder) -> None:
        p, n = slot["pn"]
        self.b_starts.append(builder.fixed_b(p))
        builder.fixed_b(n)
        self.evals.append(slot["values"])

    def finalize(self, nlanes: int) -> None:
        starts = np.asarray(self.b_starts, dtype=np.intp)
        self.cols_b = _cols(starts, 0, 2)
        self._buf = np.empty((nlanes, len(self.evals), 2))

    def refresh(self, prog, X, ctx) -> None:
        vals = np.stack([ev(ctx.time) for ev in self.evals], axis=1)
        i = vals * ctx.source_scale
        V = self._buf
        V[..., 0] = -i
        V[..., 1] = i
        prog.VB[:, self.cols_b] = V.reshape(len(V), -1)


class _CapacitorGroup:
    """Companion-model values for all capacitors (transient only)."""

    def __init__(self) -> None:
        self.slots = []
        self.names: List[str] = []
        self.g_starts: List[int] = []
        self.b_starts: List[int] = []

    def add(self, el, slot, builder: _ProgramBuilder) -> None:
        i, j = slot["ij"]
        self.g_starts.append(builder.fixed_g(i, i))
        builder.fixed_g(j, j)
        builder.fixed_g(i, j)
        builder.fixed_g(j, i)
        self.b_starts.append(builder.fixed_b(i))
        builder.fixed_b(j)
        self.slots.append(slot)
        self.names.append(el.name)

    def finalize(self, nlanes: int) -> None:
        self.nlanes = nlanes
        self.c = np.stack([s["c"] for s in self.slots], axis=1)
        self.gi = _NodeGather([s["ij"][0] for s in self.slots])
        self.gj = _NodeGather([s["ij"][1] for s in self.slots])
        gs = np.asarray(self.g_starts, dtype=np.intp)
        bs = np.asarray(self.b_starts, dtype=np.intp)
        self.cols_g = _cols(gs, 0, 4)
        self.cols_b = _cols(bs, 0, 2)
        ndev = len(self.slots)
        self._vg = np.empty((nlanes, ndev, 4))
        self._vb = np.empty((nlanes, ndev, 2))

    def refresh(self, prog, X, ctx) -> None:
        geq = self.c / ctx.dt
        v_prev = self.gi(ctx.x_prev) - self.gj(ctx.x_prev)
        if ctx.method == "trap":
            geq = geq * 2.0
            rows = []
            for name in self.names:
                cur = ctx.cap_currents.get(name, 0.0)
                if not isinstance(cur, np.ndarray):
                    cur = np.full(self.nlanes, float(cur))
                rows.append(cur)
            i_prev = np.stack(rows, axis=1)
            ieq = geq * v_prev + i_prev
        else:
            ieq = geq * v_prev
        V = self._vg
        ngeq = -geq
        V[..., 0] = geq
        V[..., 1] = geq
        V[..., 2] = ngeq
        V[..., 3] = ngeq
        prog.VG[:, self.cols_g] = V.reshape(len(V), -1)
        Vb = self._vb
        Vb[..., 0] = ieq
        Vb[..., 1] = -ieq
        prog.VB[:, self.cols_b] = Vb.reshape(len(Vb), -1)


def _conductance_block(builder: _ProgramBuilder, i: int, j: int) -> int:
    """Reserve the four ``add_conductance(i, j, g)`` slots; returns start."""
    start = builder.fixed_g(i, i)
    builder.fixed_g(j, j)
    builder.fixed_g(i, j)
    builder.fixed_g(j, i)
    return start


class _SwitchGroup:
    """Per-lane logistic conductances (scalar ``math.exp`` for parity)."""

    def __init__(self) -> None:
        self.lanes = []
        self.ctrl: List[int] = []
        self.g_starts: List[int] = []

    def add(self, slot, builder: _ProgramBuilder) -> None:
        i, j, c = slot["idx"]
        self.g_starts.append(_conductance_block(builder, i, j))
        self.ctrl.append(c)
        self.lanes.append(slot["lanes"])

    def finalize(self, nlanes: int) -> None:
        self.nlanes = nlanes
        self.gc = _NodeGather(self.ctrl)
        gs = np.asarray(self.g_starts, dtype=np.intp)
        self.cols_g = _cols(gs, 0, 4)
        self._vg = np.empty((nlanes, len(self.lanes), 4))

    def refresh(self, prog, X, ctx) -> None:
        vc = self.gc(X)
        g = np.empty((self.nlanes, len(self.lanes)))
        for d, lanes in enumerate(self.lanes):
            for k, lane in enumerate(lanes):
                g[k, d] = lane.conductance(float(vc[k, d]))
        V = self._vg
        ng = -g
        V[..., 0] = g
        V[..., 1] = g
        V[..., 2] = ng
        V[..., 3] = ng
        prog.VG[:, self.cols_g] = V.reshape(len(V), -1)


class _DiodeGroup:
    """Per-lane exponential I/V (scalar ``math.exp`` for parity)."""

    def __init__(self) -> None:
        self.lanes = []
        self.g_starts: List[int] = []
        self.b_starts: List[int] = []
        self.anodes: List[int] = []
        self.cathodes: List[int] = []

    def add(self, slot, builder: _ProgramBuilder) -> None:
        a, c = slot["ac"]
        self.g_starts.append(_conductance_block(builder, a, c))
        self.b_starts.append(builder.fixed_b(a))
        builder.fixed_b(c)
        self.anodes.append(a)
        self.cathodes.append(c)
        self.lanes.append(slot["lanes"])

    def finalize(self, nlanes: int) -> None:
        self.nlanes = nlanes
        self.ga = _NodeGather(self.anodes)
        self.gc = _NodeGather(self.cathodes)
        gs = np.asarray(self.g_starts, dtype=np.intp)
        bs = np.asarray(self.b_starts, dtype=np.intp)
        self.cols_g = _cols(gs, 0, 4)
        self.cols_b = _cols(bs, 0, 2)
        ndev = len(self.lanes)
        self._vg = np.empty((nlanes, ndev, 4))
        self._vb = np.empty((nlanes, ndev, 2))

    def refresh(self, prog, X, ctx) -> None:
        vd = self.ga(X) - self.gc(X)
        ndev = len(self.lanes)
        i = np.empty((self.nlanes, ndev))
        g = np.empty((self.nlanes, ndev))
        for d, lanes in enumerate(self.lanes):
            for k, lane in enumerate(lanes):
                i[k, d], g[k, d] = lane._iv(float(vd[k, d]))
        ieq = i - g * vd
        V = self._vg
        ng = -g
        V[..., 0] = g
        V[..., 1] = g
        V[..., 2] = ng
        V[..., 3] = ng
        prog.VG[:, self.cols_g] = V.reshape(len(V), -1)
        Vb = self._vb
        Vb[..., 0] = -ieq
        Vb[..., 1] = ieq
        prog.VB[:, self.cols_b] = Vb.reshape(len(Vb), -1)


#: contribution slots per MOSFET whose matrix position depends on the
#: per-lane source/drain swap: gm (4), gds (4), gmb (4) — see
#: :meth:`Mosfet.stamp` for the scalar order they mirror
_MOS_DYN_G = 12


class _MosfetGroup:
    """All MOSFETs of a batch evaluated as one ``(B, D)`` array model."""

    def __init__(self, tran: bool) -> None:
        self.tran = tran
        self.slots = []
        self.g_starts: List[int] = []
        self.b_starts: List[int] = []

    def add(self, slot, builder: _ProgramBuilder) -> None:
        nd, ng, ns, nb = slot["idx"]
        self.g_starts.append(builder.dyn_g(_MOS_DYN_G))
        # gmin at drain and source: add_conductance(nd, -1, gmin) stamps
        # the diagonal only
        builder.fixed_g(nd, nd)
        builder.fixed_g(ns, ns)
        if self.tran:
            # gate caps: add_conductance(ng, ns, geq) then (ng, nd, geq)
            for other in (ns, nd):
                builder.fixed_g(ng, ng)
                builder.fixed_g(other, other)
                builder.fixed_g(ng, other)
                builder.fixed_g(other, ng)
        self.b_starts.append(builder.dyn_b(2))
        if self.tran:
            builder.fixed_b(ng)
            builder.fixed_b(ns)
            builder.fixed_b(ng)
            builder.fixed_b(nd)
        self.slots.append(slot)

    def finalize(self, nlanes: int) -> None:
        self.nlanes = nlanes
        slots = self.slots
        ndev = len(slots)
        stack = lambda key: np.stack([s[key] for s in slots], axis=1)
        self.beta = stack("beta")
        self.vto = stack("vto")
        self.lam = stack("lam")
        self.gamma = stack("gamma")
        self.phi = stack("phi")
        self.sqrt_phi = stack("sqrt_phi")
        self.cgs = stack("cgs")
        self.cgd = stack("cgd")
        self.sign = np.array([s["sign"] for s in slots])
        nd = [s["idx"][0] for s in slots]
        ng = [s["idx"][1] for s in slots]
        ns = [s["idx"][2] for s in slots]
        nb = [s["idx"][3] for s in slots]
        self.g_d = _NodeGather(nd)
        self.g_g = _NodeGather(ng)
        self.g_s = _NodeGather(ns)
        self.g_b = _NodeGather(nb)

        # Flat matrix indices of the swap-dependent contributions, for
        # the normal (d=drain) and swapped (d=source) orientations, in
        # the scalar stamp's exact order:
        #   add_transconductance(d, s, ng, s, gm)  -> (d,ng)(d,s)(s,ng)(s,s)
        #   add_conductance(d, s, gds)             -> (d,d)(s,s)(d,s)(s,d)
        #   add_transconductance(d, s, nb, s, gmb) -> (d,nb)(d,s)(s,nb)(s,s)
        def pairs(d, s, g, b):
            return [(d, g), (d, s), (s, g), (s, s),
                    (d, d), (s, s), (d, s), (s, d),
                    (d, b), (d, s), (s, b), (s, s)]

        self.FN = np.empty((ndev, _MOS_DYN_G), dtype=np.intp)
        self.FS = np.empty((ndev, _MOS_DYN_G), dtype=np.intp)
        self.FNb = np.empty((ndev, 2), dtype=np.intp)
        self.FSb = np.empty((ndev, 2), dtype=np.intp)
        #: pattern-position twins of FN/FS (sparse programs only)
        self.PN: Optional[np.ndarray] = None
        self.PS: Optional[np.ndarray] = None
        self._ndev = ndev
        self._pairs = pairs
        gs = np.asarray(self.g_starts, dtype=np.intp)
        bs = np.asarray(self.b_starts, dtype=np.intp)
        self.cols_dyn = _cols(gs, 0, _MOS_DYN_G)
        self.cols_gmin = _cols(gs, _MOS_DYN_G, _MOS_DYN_G + 2)
        if self.tran:
            self.cols_cap = _cols(gs, _MOS_DYN_G + 2, _MOS_DYN_G + 10)
            self.cols_capb = _cols(bs, 2, 6)
        self.cols_ieq = _cols(bs, 0, 2)
        self._vg = np.empty((nlanes, ndev, _MOS_DYN_G))
        self._vb = np.empty((nlanes, ndev, 2))
        if self.tran:
            self._vgc = np.empty((nlanes, ndev, 8))
            self._vbc = np.empty((nlanes, ndev, 4))

    def bind(self, n: int, dump_g: int, dump_b: int) -> None:
        """Resolve the flat normal/swapped index tables for matrix size."""
        def flat(row, col):
            return row * n + col if (row >= 0 and col >= 0) else dump_g

        for dev, slot in enumerate(self.slots):
            nd, ng, ns, nb = slot["idx"]
            self.FN[dev] = [flat(r, c) for r, c in
                            self._pairs(nd, ns, ng, nb)]
            self.FS[dev] = [flat(r, c) for r, c in
                            self._pairs(ns, nd, ng, nb)]
            self.FNb[dev] = [nd if nd >= 0 else dump_b,
                             ns if ns >= 0 else dump_b]
            self.FSb[dev] = [ns if ns >= 0 else dump_b,
                             nd if nd >= 0 else dump_b]

    def bind_pattern(self, pattern) -> None:
        """Precompute the pattern positions of both swap orientations.

        Lets :meth:`refresh` keep the program's position table current
        with the same ``np.where`` that rewrites the slot indices — no
        per-iterate ``searchsorted`` on the sparse path.
        """
        self.PN = pattern.positions(self.FN)
        self.PS = pattern.positions(self.FS)

    def refresh(self, prog, X, ctx) -> None:
        vd = self.g_d(X)
        vg = self.g_g(X)
        vs = self.g_s(X)
        vb = self.g_b(X)
        sign = self.sign
        swapped = sign * (vd - vs) < 0.0
        vdx = np.where(swapped, vs, vd)
        vsx = np.where(swapped, vd, vs)
        vgs = sign * (vg - vsx)
        vds = sign * (vdx - vsx)
        vbs = sign * (vb - vsx)
        i, gm, gds, gmb = _ids_arrays(self.beta, self.vto, self.lam,
                                      self.gamma, self.phi, self.sqrt_phi,
                                      vgs, vds, vbs)
        ieq = i - gm * vgs - gds * vds - gmb * vbs
        ieq_ext = sign * ieq

        V = self._vg
        ngm = -gm
        ngds = -gds
        ngmb = -gmb
        V[..., 0] = gm
        V[..., 1] = ngm
        V[..., 2] = ngm
        V[..., 3] = gm
        V[..., 4] = gds
        V[..., 5] = gds
        V[..., 6] = ngds
        V[..., 7] = ngds
        V[..., 8] = gmb
        V[..., 9] = ngmb
        V[..., 10] = ngmb
        V[..., 11] = gmb
        B = len(V)
        prog.VG[:, self.cols_dyn] = V.reshape(B, -1)
        choose = swapped[..., None]
        prog.IG[:, self.cols_dyn] = np.where(
            choose, self.FS, self.FN).reshape(B, -1)
        if prog.POS is not None:
            prog.POS[:, self.cols_dyn] = np.where(
                choose, self.PS, self.PN).reshape(B, -1)
        prog.VG[:, self.cols_gmin] = ctx.gmin

        Vb = self._vb
        Vb[..., 0] = -ieq_ext
        Vb[..., 1] = ieq_ext
        prog.VB[:, self.cols_ieq] = Vb.reshape(B, -1)
        prog.IB[:, self.cols_ieq] = np.where(
            swapped[..., None], self.FSb, self.FNb).reshape(B, -1)

        if self.tran:
            x_prev = ctx.x_prev
            vpg = self.g_g(x_prev)
            geq_gs = self.cgs / ctx.dt
            geq_gd = self.cgd / ctx.dt
            vp_gs = vpg - self.g_s(x_prev)
            vp_gd = vpg - self.g_d(x_prev)
            ieq_gs = geq_gs * vp_gs
            ieq_gd = geq_gd * vp_gd
            Vc = self._vgc
            ngs = -geq_gs
            ngd = -geq_gd
            Vc[..., 0] = geq_gs
            Vc[..., 1] = geq_gs
            Vc[..., 2] = ngs
            Vc[..., 3] = ngs
            Vc[..., 4] = geq_gd
            Vc[..., 5] = geq_gd
            Vc[..., 6] = ngd
            Vc[..., 7] = ngd
            prog.VG[:, self.cols_cap] = Vc.reshape(B, -1)
            Vbc = self._vbc
            Vbc[..., 0] = ieq_gs
            Vbc[..., 1] = -ieq_gs
            Vbc[..., 2] = ieq_gd
            Vbc[..., 3] = -ieq_gd
            prog.VB[:, self.cols_capb] = Vbc.reshape(B, -1)


class _BatchProgram:
    """Compiled contribution program for one lane group.

    Built once per batch (per analysis mode); :meth:`assemble` replaces
    the per-element stamping loop with a handful of vectorised group
    refreshes and one ordered ``bincount`` scatter per lane.
    """

    def __init__(self, circuits: Sequence[Circuit],
                 system: BatchedMNASystem, tran: bool) -> None:
        per_lane = [list(c.elements) for c in circuits]
        nlanes = len(circuits)
        n = system.n
        builder = _ProgramBuilder(n)
        groups: Dict[type, object] = {}
        self.slots = []

        def group(cls, factory):
            grp = groups.get(cls)
            if grp is None:
                grp = groups[cls] = factory()
            return grp

        for pos, el in enumerate(per_lane[0]):
            lanes = [elements[pos] for elements in per_lane]
            slot = el.batch_slot(system, lanes)
            self.slots.append((el, slot))
            t = type(el)
            if t is Resistor:
                i, j = slot["ij"]
                g = slot["g"]
                builder.static_g(i, i, g)
                builder.static_g(j, j, g)
                builder.static_g(i, j, -g)
                builder.static_g(j, i, -g)
            elif t is Capacitor:
                if tran:
                    group(Capacitor, _CapacitorGroup).add(el, slot, builder)
            elif t is VoltageSource:
                group(VoltageSource, _VoltageSourceGroup).add(slot, builder)
            elif t is CurrentSource:
                group(CurrentSource, _CurrentSourceGroup).add(slot, builder)
            elif t is VCCS:
                p, q, cp, cn = slot["idx"]
                g = slot["gm"]
                builder.static_g(p, cp, g)
                builder.static_g(p, cn, -g)
                builder.static_g(q, cp, -g)
                builder.static_g(q, cn, g)
            elif t is VCVS:
                p, q, cp, cn = slot["idx"]
                br = slot["br"]
                gain = slot["gain"]
                builder.static_g(p, br, 1.0)
                builder.static_g(q, br, -1.0)
                builder.static_g(br, p, 1.0)
                builder.static_g(br, q, -1.0)
                builder.static_g(br, cp, -gain)
                builder.static_g(br, cn, gain)
            elif t is Switch:
                group(Switch, _SwitchGroup).add(slot, builder)
            elif t is Diode:
                group(Diode, _DiodeGroup).add(slot, builder)
            elif t is Mosfet:
                group(Mosfet, lambda: _MosfetGroup(tran)).add(slot, builder)
            else:
                # exact-type dispatch: a subclass may override stamp(),
                # which the program cannot know about
                raise BatchUnsupported(t.__name__)

        self.nlanes = nlanes
        self.n = n
        self.NN = n * n
        self.groups = list(groups.values())
        for grp in self.groups:
            grp.finalize(nlanes)
            if isinstance(grp, _MosfetGroup):
                grp.bind(n, builder.dump_g, builder.dump_b)

        self.IG = np.empty((nlanes, len(builder.g_idx)), dtype=np.intp)
        self.IG[:] = np.asarray(builder.g_idx, dtype=np.intp)[None, :]
        self.VG = np.zeros((nlanes, len(builder.g_idx)))
        for col, value in enumerate(builder.g_val):
            if value is not None:
                self.VG[:, col] = value
        self.IB = np.empty((nlanes, len(builder.b_idx)), dtype=np.intp)
        self.IB[:] = np.asarray(builder.b_idx, dtype=np.intp)[None, :]
        self.VB = np.zeros((nlanes, len(builder.b_idx)))
        for col, value in enumerate(builder.b_val):
            if value is not None:
                self.VB[:, col] = value

        self.pattern: Optional[SparsePattern] = None
        self.data: Optional[np.ndarray] = None
        #: pattern positions of every IG slot, maintained incrementally
        #: by the MOSFET refresh (sparse programs only)
        self.POS: Optional[np.ndarray] = None
        if system.kind == "sparse":
            self._bind_sparse(builder)

    def _bind_sparse(self, builder: _ProgramBuilder) -> None:
        """Compute the fixed sparsity pattern of this program.

        The slot union is static: the builder's template covers every
        static and ground-redirected index, and each MOSFET's two
        swap orientations (``FN``/``FS``) are folded in up front, so
        the pattern — and the fill-reducing ordering derived from it —
        is computed exactly once per program and reused by every lane,
        Newton iteration and timepoint.
        """
        candidates = [np.asarray(builder.g_idx, dtype=np.intp)]
        for grp in self.groups:
            if isinstance(grp, _MosfetGroup):
                candidates.append(grp.FN.ravel())
                candidates.append(grp.FS.ravel())
        pattern = SparsePattern(self.n, np.concatenate(candidates)
                                if candidates else np.empty(0, np.intp),
                                builder.dump_g)
        # defensive: every slot the program can emit must hit the
        # pattern (or the dump sentinel), else scatter would silently
        # mis-bin contributions
        pos0 = pattern.positions(self.IG[0])
        if not np.array_equal(pattern.lookup[pos0], self.IG[0]):
            raise BatchUnsupported("sparse pattern missed program slots")
        self.pattern = pattern
        self.data = np.zeros((self.nlanes, pattern.nnz))
        self.POS = pattern.positions(self.IG)
        for grp in self.groups:
            if isinstance(grp, _MosfetGroup):
                grp.bind_pattern(pattern)
        record_matrix("sparse", self.n, pattern.nnz, self.nlanes)

    def assemble(self, system: BatchedMNASystem, X: np.ndarray,
                 ctx: StampContext) -> None:
        with phase_timer("assemble"):
            for grp in self.groups:
                grp.refresh(self, X, ctx)
            NN = self.NN
            n = self.n
            IG, VG, IB, VB = self.IG, self.VG, self.IB, self.VB
            b = system.b
            if system.kind == "sparse":
                pattern = self.pattern
                data = self.data
                # POS tracks IG incrementally (the MOSFET refresh is
                # the only writer of dynamic slots), so assembly needs
                # no per-iterate searchsorted
                pos = self.POS
                for k in range(self.nlanes):
                    # same ordered bincount accumulation as the dense
                    # path, scattered onto the pattern instead of the
                    # full matrix — shared-slot sums stay bit-identical
                    data[k] = pattern.scatter(pos[k], VG[k])
                    b[k] = np.bincount(IB[k], weights=VB[k],
                                       minlength=n + 1)[:n]
                return
            Gflat = system.G.reshape(self.nlanes, NN)
            for k in range(self.nlanes):
                # bincount accumulates duplicate indices sequentially
                # in list order, which is exactly the scalar stamping
                # order — every entry is the same floating-point sum
                # the scalar assembly produces
                Gflat[k] = np.bincount(IG[k], weights=VG[k],
                                       minlength=NN + 1)[:NN]
                b[k] = np.bincount(IB[k], weights=VB[k],
                                   minlength=n + 1)[:n]


# -- batched Newton ---------------------------------------------------------


def _solve_stack(G: np.ndarray, b: np.ndarray, active: np.ndarray,
                 eye: Optional[np.ndarray]):
    """Solve the active lanes of a stacked system.

    Inactive lanes are neutralised to the identity so a converged (or
    dead) lane's garbage iterate can never poison the batched
    factorisation.  If the batch solve still fails (one active lane
    exactly singular), each active lane is solved separately — the same
    LAPACK routine, so per-lane results are unchanged.  ``eye`` may be
    None only when every lane is active (nothing to neutralise).
    """
    for k in np.flatnonzero(~active):
        G[k] = eye
        b[k] = 0.0
    try:
        # the explicit RHS column keeps numpy's gufunc dispatch on the
        # (B, n, n) @ (B, n, 1) stacked form; nrhs=1 dgesv per slice is
        # the very computation the scalar path runs
        return np.linalg.solve(G, b[..., None])[..., 0], active.copy()
    except np.linalg.LinAlgError:
        X_new = np.zeros_like(b)
        ok = np.zeros(len(b), dtype=bool)
        for k in np.flatnonzero(active):
            try:
                X_new[k] = np.linalg.solve(G[k], b[k])
                ok[k] = True
            except np.linalg.LinAlgError:
                pass
        return X_new, ok


def _newton_batch(program: _BatchProgram, system: BatchedMNASystem,
                  ctx: StampContext, X0: np.ndarray, active0: np.ndarray,
                  max_iter: int, vtol: float = NEWTON_VTOL,
                  damping: float = 1.0):
    """Masked-lane Newton iteration, replicating ``dc._newton`` per lane.

    Returns ``(X, converged, failed)``; lanes outside ``active0`` are
    left untouched and belong to neither output mask.
    """
    X = X0.copy()
    active = active0.copy()
    converged = np.zeros(len(X), dtype=bool)
    for _ in range(max_iter):
        if not active.any():
            break
        program.assemble(system, X, ctx)
        X_new, ok = system.solve_stack(program, active)
        ok &= np.isfinite(X_new).all(axis=1)
        active &= ok  # lanes with a dead solve fail out immediately
        if not active.any():
            break
        with phase_timer("convergence_check"):
            delta = X_new - X
            biggest = np.max(np.abs(delta), axis=1)
            scale = np.full(len(X), damping)
            over = active & (biggest > MAX_NEWTON_STEP)
            scale[over] = np.minimum(scale[over],
                                     MAX_NEWTON_STEP / biggest[over])
            X[active] = X[active] + scale[active, None] * delta[active]
            done = active & (biggest * scale < vtol)
            converged |= done
            active &= ~done
    failed = active0 & ~converged
    return X, converged, failed


def _solve_timepoint_batch(program, system, X_prev, t, h, method,
                           cap_currents, want: np.ndarray,
                           X_seed: Optional[np.ndarray] = None):
    """Batched twin of ``transient._solve_timepoint``.

    ``X_seed`` optionally replaces ``X_prev`` as the first stage's
    Newton start (warm-start guides); the retry stage always restarts
    from ``X_prev``.  Returns ``(X_next, solved)``; unsolved lanes keep
    their previous iterate in ``X_next``.
    """
    gmin0, iters0, damp0 = TIMEPOINT_STAGES[0]
    ctx = StampContext(mode="tran", time=t + h, dt=h, x_prev=X_prev,
                       gmin=gmin0, method=method,
                       cap_currents=cap_currents)
    X1, conv1, fail1 = _newton_batch(program, system, ctx,
                                     X_prev if X_seed is None else X_seed,
                                     want, max_iter=iters0, damping=damp0)
    X_next = X_prev.copy()
    X_next[conv1] = X1[conv1]
    solved = conv1
    if fail1.any():
        gmin1, iters1, damp1 = TIMEPOINT_STAGES[1]
        ctx = StampContext(mode="tran", time=t + h, dt=h, x_prev=X_prev,
                           gmin=gmin1, method=method,
                           cap_currents=cap_currents)
        X2, conv2, _ = _newton_batch(program, system, ctx, X_prev, fail1,
                                     max_iter=iters1, damping=damp1)
        X_next[conv2] = X2[conv2]
        solved = solved | conv2
    return X_next, solved


# -- batched operating point -------------------------------------------------


def _operating_point_batch(program: _BatchProgram, system: BatchedMNASystem,
                           circuits: Sequence[Circuit], gmin: float = 1e-12,
                           time: float = 0.0, max_iter: int = 120,
                           X0: Optional[np.ndarray] = None):
    """Per-lane replication of ``dc.operating_point``'s continuation
    ladder: plain Newton, then gmin stepping, then source stepping with a
    relaxed gmin ladder at each step (keeping the *last* gmin that
    converges, as the scalar code does).

    ``X0`` optionally warm-starts the plain-Newton stage (mirroring the
    scalar ``operating_point(x0=...)``); the gmin and source ladders
    always restart cold from zeros, so a bad guess costs nothing but
    the first stage.

    Returns ``(X, errors)`` where ``errors[k]`` is the
    :class:`ConvergenceError` lane *k* would have raised, or None.
    """
    nlanes = len(circuits)
    nsize = system.n
    errors: List[Optional[ConvergenceError]] = [None] * nlanes
    X_out = np.zeros((nlanes, nsize))

    ctx = StampContext(mode="dc", time=time, gmin=gmin)
    X1, conv1, fail1 = _newton_batch(program, system, ctx,
                                     np.zeros((nlanes, nsize))
                                     if X0 is None
                                     else np.array(X0, dtype=float),
                                     np.ones(nlanes, dtype=bool),
                                     max_iter=max_iter)
    X_out[conv1] = X1[conv1]
    if not fail1.any():
        return X_out, errors

    # gmin stepping; a lane drops to source stepping at its first
    # failed rung, exactly like the scalar ladder's break (which also
    # starts from the caller's guess when one is given)
    Xc = np.zeros((nlanes, nsize)) if X0 is None \
        else np.array(X0, dtype=float)
    trying = fail1.copy()
    for g in GMIN_LADDER + (gmin,):
        if not trying.any():
            break
        ctx = StampContext(mode="dc", time=time, gmin=g)
        Xn, conv, _ = _newton_batch(program, system, ctx, Xc, trying,
                                    max_iter=max_iter)
        Xc[conv] = Xn[conv]
        trying &= conv
    X_out[trying] = Xc[trying]
    remaining = fail1 & ~trying
    if not remaining.any():
        return X_out, errors

    # source stepping
    Xc = np.zeros((nlanes, nsize))
    alive = remaining.copy()
    for scale in np.linspace(0.05, 1.0, SOURCE_STEPS):
        if not alive.any():
            break
        Xsol = np.zeros((nlanes, nsize))
        solved = np.zeros(nlanes, dtype=bool)
        for g in SOURCE_GMIN_LADDER + (gmin,):
            ctx = StampContext(mode="dc", time=time, gmin=g,
                               source_scale=float(scale))
            Xa, conv, _ = _newton_batch(program, system, ctx, Xc, alive,
                                        max_iter=max_iter, damping=0.7)
            Xsol[conv] = Xa[conv]
            solved |= conv
        dead = alive & ~solved
        for k in np.flatnonzero(dead):
            errors[k] = ConvergenceError(
                f"source stepping failed at scale={scale:.2f} "
                f"for circuit {circuits[k].title!r}")
        alive &= solved
        Xc[alive] = Xsol[alive]
    X_out[alive] = Xc[alive]
    return X_out, errors


def _batch_group(batch: bool, solver: str, nmembers: int) -> bool:
    """Shared group-size policy of the ``*_lanes`` entry points.

    ``dense`` forces the scalar path (the seed behavior, lane by
    lane); ``dense-batched`` (what ``auto`` resolves to) batches
    groups of two or more, as the kernel always has; ``sparse``
    batches every group *including singletons* — a single full-chip
    lane is exactly where the sparse backend pays.
    """
    if not batch:
        return False
    if solver == "dense":
        return False
    if solver == "sparse":
        return nmembers >= 1
    return nmembers > 1


def operating_point_lanes(circuits: Sequence[Circuit], gmin: float = 1e-12,
                          time: float = 0.0, max_iter: int = 120,
                          batch: bool = True,
                          x0_guesses: Optional[Sequence] = None,
                          solver: str = "auto"
                          ) -> List[Union[DCResult, ConvergenceError]]:
    """DC operating points for arbitrary lanes, batched where possible.

    The batched counterpart of calling
    :func:`~repro.circuit.dc.operating_point` per circuit (corner
    sweeps, DC macro engines).  Lanes are grouped by
    :func:`structure_signature`; groups of two or more solve through the
    batched Newton ladder, and any lane the kernel cannot finish is
    re-run scalar — results per lane are bit-identical to an all-scalar
    sweep.  Failed lanes yield the :class:`ConvergenceError` the scalar
    call raises instead of a :class:`~repro.circuit.dc.DCResult`.

    Args:
        x0_guesses: optional per-lane warm Newton guesses (None entries
            start cold); threaded to both the batched ladder and any
            scalar fallback so the two paths see the same inputs.
        solver: linear backend (see
            :data:`~repro.circuit.backend.SOLVERS`).  ``dense`` forces
            the scalar path, ``sparse`` batches every group including
            singletons; failed sparse lanes still retry scalar dense.
    """
    circuits = list(circuits)
    if x0_guesses is None:
        x0_guesses = [None] * len(circuits)
    resolved = resolve_solver(solver)
    kind = "sparse" if resolved == "sparse" else "dense"

    def scalar(k: int):
        try:
            return operating_point(circuits[k], x0=x0_guesses[k],
                                   gmin=gmin, time=time,
                                   max_iter=max_iter)
        except ConvergenceError as exc:
            return exc

    results: List[Optional[Union[DCResult, ConvergenceError]]] = \
        [None] * len(circuits)
    groups: Dict[tuple, List[int]] = {}
    for k, c in enumerate(circuits):
        groups.setdefault(structure_signature(c), []).append(k)

    for members in groups.values():
        lane_circuits = [circuits[k] for k in members]
        solved = False
        if _batch_group(batch, resolved, len(members)):
            try:
                compiled = lane_circuits[0].compile()
                system = _get_system(compiled, len(members), kind)
                program = _BatchProgram(lane_circuits, system, tran=False)
                X0 = _stack_guesses([x0_guesses[k] for k in members],
                                    compiled.size)
                with np.errstate(all="ignore"):
                    X, errors = _operating_point_batch(
                        program, system, lane_circuits, gmin=gmin,
                        time=time, max_iter=max_iter, X0=X0)
            except BatchUnsupported:
                pass
            else:
                solved = True
                for i, k in enumerate(members):
                    if errors[i] is None:
                        results[k] = DCResult(x=X[i], compiled=compiled)
                    else:
                        # scalar retry keeps the all-scalar contract
                        results[k] = scalar(k)
        if not solved:
            for k in members:
                results[k] = scalar(k)
    return results


def _stack_guesses(guesses: Sequence, nsize: int) -> Optional[np.ndarray]:
    """Per-lane optional guesses -> a ``(B, n)`` stack or None.

    Lanes without a guess (or with a stale, wrong-sized one) get a zero
    row — exactly the cold start they would use anyway.
    """
    if all(g is None for g in guesses):
        return None
    X0 = np.zeros((len(guesses), nsize))
    for k, g in enumerate(guesses):
        if g is not None and len(g) == nsize:
            X0[k] = g
    return X0


# -- system buffer cache ----------------------------------------------------

#: per-process reuse of the system buffers across calls — fault
#: campaigns solve thousands of same-shaped batches, and reallocating
#: the stack each time is measurable.  Cleared alongside the campaign
#: engine cache (see ``repro.campaign.tasks.clear_engine_cache``).
_SYSTEM_CACHE: Dict[Tuple[int, int, str], BatchedMNASystem] = {}
_SYSTEM_CACHE_MAX = 16


def _get_system(compiled, nlanes: int,
                kind: str = "dense") -> BatchedMNASystem:
    key = (compiled.size, nlanes, kind)
    system = _SYSTEM_CACHE.get(key)
    if system is None:
        cls = SparseBatchedMNASystem if kind == "sparse" \
            else BatchedMNASystem
        system = cls(compiled, nlanes)
        if len(_SYSTEM_CACHE) >= _SYSTEM_CACHE_MAX:
            _SYSTEM_CACHE.pop(next(iter(_SYSTEM_CACHE)))
        _SYSTEM_CACHE[key] = system
    else:
        system.compiled = compiled
    return system


def clear_kernel_cache() -> None:
    """Drop cached batch-system buffers (tests / memory pressure)."""
    _SYSTEM_CACHE.clear()


# -- batched transient -------------------------------------------------------


def transient_batch(circuits: Sequence[Circuit], tstop: float, dt: float,
                    method: str = "be",
                    x0s: Optional[np.ndarray] = None,
                    record_every: int = 1,
                    fine_windows: Optional[Sequence] = None,
                    op_x0: Optional[np.ndarray] = None,
                    guide: Optional[tuple] = None,
                    solver: str = "auto"
                    ) -> List[LaneResult]:
    """Run B structurally identical circuits through one lockstep
    transient.

    Mirrors :func:`~repro.circuit.transient.transient` exactly per lane:
    same initial operating-point ladder, same step schedule, same
    per-timepoint Newton ladder, same two-level step halving.  Lanes
    that exhaust the ladder get a :class:`ConvergenceError` entry (and
    the surviving lanes keep marching).

    Args:
        op_x0: optional ``(B, n)`` warm guess for the t=0 operating
            point's plain-Newton stage (continuation ladders keep their
            cold fallbacks).
        guide: optional ``(times, G)`` warm-start guide where ``G`` is
            a ``(B, len(times), n)`` reference trajectory recorded on
            the same step schedule; each timepoint's first Newton stage
            is seeded with the previous solution plus the per-lane
            guide increment (a zero guide row leaves a lane on the
            classic ``x_prev`` seed).
        solver: linear backend; ``sparse`` skips the dense stack
            entirely (full-chip netlists) with per-lane dense
            fallback on singular factorisations.

    Raises:
        ValueError: if the circuits' structures differ (they cannot
            share a batch).
        BatchUnsupported: if an element cannot stamp batched.
    """
    if method not in ("be", "trap"):
        raise ValueError(f"unknown integration method {method!r}")
    if dt <= 0 or tstop <= 0:
        raise ValueError("dt and tstop must be positive")
    windows = sorted(fine_windows or [])
    for t0, t1, dtf in windows:
        if dtf <= 0 or t1 <= t0:
            raise ValueError(f"malformed fine window ({t0}, {t1}, {dtf})")
    circuits = list(circuits)
    if not circuits:
        return []
    sig = structure_signature(circuits[0])
    for c in circuits[1:]:
        if structure_signature(c) != sig:
            raise ValueError("circuits differ structurally; "
                             "group lanes by structure_signature()")

    nlanes = len(circuits)
    compiled = circuits[0].compile()
    kind = "sparse" if resolve_solver(solver) == "sparse" else "dense"
    system = _get_system(compiled, nlanes, kind)
    program = _BatchProgram(circuits, system, tran=True)

    lane_error: List[Optional[ConvergenceError]] = [None] * nlanes
    if guide is not None:
        guide_times, guide_stack = guide
        if guide_stack.shape[0] != nlanes \
                or guide_stack.shape[2] != compiled.size:
            guide = None
    with np.errstate(all="ignore"):
        if x0s is None:
            program_dc = _BatchProgram(circuits, system, tran=False)
            X, op_errors = _operating_point_batch(program_dc, system,
                                                  circuits, X0=op_x0)
            lane_error = list(op_errors)
        else:
            X = np.array(x0s, dtype=float)
            if X.shape != (nlanes, compiled.size):
                raise ValueError("x0s has the wrong shape for this batch")
        alive = np.array([err is None for err in lane_error])

        caps = [(el, slot) for el, slot in program.slots
                if type(el) is Capacitor]
        cap_currents: Dict[str, np.ndarray] = {
            el.name: np.zeros(nlanes) for el, _ in caps}

        times = [0.0]
        stack = [X.copy()]
        t = 0.0
        step = 0
        while t < tstop - 1e-15 and alive.any():
            h = min(_step_at(t, dt, windows), tstop - t)
            X_seed = None
            if guide is not None and step + 1 < len(guide_times) \
                    and guide_times[step] == t \
                    and guide_times[step + 1] == t + h:
                X_seed = X + (guide_stack[:, step + 1]
                              - guide_stack[:, step])
            if X_seed is None:
                X_next, solved = _solve_timepoint_batch(
                    program, system, X, t, h, method, cap_currents,
                    alive)
            else:
                X_next, solved = _solve_timepoint_batch(
                    program, system, X, t, h, method, cap_currents,
                    alive, X_seed=X_seed)
            stuck = alive & ~solved
            if stuck.any():
                # local step halving, two levels deep, batched over the
                # stuck lanes only
                X_half = X.copy()
                sub_t = t
                ok = stuck.copy()
                for _ in range(2):
                    X_try, sub_solved = _solve_timepoint_batch(
                        program, system, X_half, sub_t, h / 2.0, method,
                        cap_currents, ok)
                    X_half[sub_solved] = X_try[sub_solved]
                    ok &= sub_solved
                    if not ok.any():
                        break
                    sub_t += h / 2.0
                X_next[ok] = X_half[ok]
                dead = stuck & ~ok
                for k in np.flatnonzero(dead):
                    lane_error[k] = ConvergenceError(
                        f"transient failed at t={t + h:.3e} for circuit "
                        f"{circuits[k].title!r}")
                alive &= ~dead
            if method == "trap":
                ctx = StampContext(mode="tran", time=t + h, dt=h,
                                   x_prev=X, method=method,
                                   cap_currents=cap_currents)
                new_currents = {
                    el.name: el.charge_current_batch(system, X_next, X,
                                                     ctx, slot)
                    for el, slot in caps}
                cap_currents.update(new_currents)
            t += h
            X = X_next
            step += 1
            if step % record_every == 0 or t >= tstop - 1e-15:
                times.append(t)
                stack.append(X.copy())

    times_arr = np.array(times)
    results: List[LaneResult] = []
    for k in range(nlanes):
        if lane_error[k] is not None:
            results.append(lane_error[k])
        else:
            results.append(TransientResult(
                times=times_arr, compiled=compiled,
                xs=np.array([frame[k] for frame in stack])))
    return results


def transient_lanes(circuits: Sequence[Circuit], tstop: float, dt: float,
                    method: str = "be", record_every: int = 1,
                    fine_windows: Optional[Sequence] = None,
                    batch: bool = True,
                    guides: Optional[Sequence] = None,
                    solver: str = "auto") -> List[LaneResult]:
    """Transients for arbitrary lanes, batched where structure allows.

    Lanes are grouped by :func:`structure_signature`; each group of two
    or more runs through :func:`transient_batch`, singletons (and any
    lane the kernel gives up on) run through the scalar
    :func:`~repro.circuit.transient.transient`.  The scalar fallback is
    unconditional on failure, so the output per lane is exactly what an
    all-scalar run would produce — a failed lane yields the
    :class:`ConvergenceError` the scalar path raises.

    Args:
        batch: when False, every lane runs scalar (debug / comparison
            knob).
        guides: optional per-lane ``(times, xs)`` warm-start guides
            (None entries run cold) already aligned to each lane's
            unknown ordering; ``xs[0]`` doubles as the t=0 operating
            point's warm guess.  Threaded identically to the batched
            kernel and the scalar fallback.
        solver: linear backend.  ``dense`` forces the scalar path,
            ``sparse`` batches every group including singletons;
            lanes the sparse kernel gives up on still retry through
            the scalar dense path.
    """
    from .transient import transient

    circuits = list(circuits)
    if guides is None:
        guides = [None] * len(circuits)
    resolved = resolve_solver(solver)

    def scalar(k: int) -> LaneResult:
        g = guides[k]
        try:
            return transient(circuits[k], tstop=tstop, dt=dt,
                             method=method, record_every=record_every,
                             fine_windows=fine_windows,
                             x0_guess=None if g is None else g[1][0],
                             guide=g)
        except ConvergenceError as exc:
            return exc

    results: List[Optional[LaneResult]] = [None] * len(circuits)
    groups: Dict[tuple, List[int]] = {}
    for k, c in enumerate(circuits):
        groups.setdefault(structure_signature(c), []).append(k)

    for members in groups.values():
        if _batch_group(batch, resolved, len(members)):
            try:
                op_x0, guide = _stack_guides(
                    [guides[k] for k in members],
                    circuits[members[0]].compile().size)
                outcomes = transient_batch(
                    [circuits[k] for k in members], tstop=tstop, dt=dt,
                    method=method, record_every=record_every,
                    fine_windows=fine_windows, op_x0=op_x0, guide=guide,
                    solver=resolved)
            except BatchUnsupported:
                outcomes = [None] * len(members)
            for k, outcome in zip(members, outcomes):
                if isinstance(outcome, TransientResult):
                    results[k] = outcome
                else:
                    # kernel could not finish this lane — scalar retry
                    # keeps the all-scalar contract (including which
                    # error, if any, the lane reports)
                    results[k] = scalar(k)
        else:
            for k in members:
                results[k] = scalar(k)
    return results


def _stack_guides(guides: Sequence, nsize: int):
    """Per-lane optional ``(times, xs)`` guides -> batched form.

    Returns ``(op_x0, guide)`` for :func:`transient_batch`.  Unguided
    lanes get zero guide rows (a zero increment seeds with the classic
    ``x_prev``) and a zero operating-point guess (the cold start).
    Guides whose time axes disagree with the first guided lane are
    dropped — schedules are deterministic, so this only filters stale
    baselines.
    """
    usable = [(k, g) for k, g in enumerate(guides)
              if g is not None and g[1].ndim == 2
              and g[1].shape[1] == nsize]
    if not usable:
        return None, None
    times = usable[0][1][0]
    usable = [(k, g) for k, g in usable
              if len(g[0]) == len(times) and np.array_equal(g[0], times)]
    if not usable:
        return None, None
    op_x0 = np.zeros((len(guides), nsize))
    G = np.zeros((len(guides), len(times), nsize))
    for k, (times_k, xs) in usable:
        op_x0[k] = xs[0]
        G[k] = xs
    return op_x0, (times, G)
