"""Pluggable linear-solve backends for the MNA kernels.

The solver layer behind every Newton iteration — scalar
(:class:`~repro.circuit.mna.MNASystem`) and batched
(:mod:`repro.circuit.batch`) — is factored behind a small
``LinearBackend`` protocol with three implementations:

``dense``
    The original behavior: one ``numpy.linalg.solve`` per system.
    Bit-identical to the seed kernel by construction.

``dense-batched``
    The existing ``(B, n, n)`` stacked LAPACK solve with per-lane
    fallback.  Also bit-identical; it is what ``auto`` resolves to.

``sparse``
    CSR/CSC assembly driven by the compiled contribution program:
    the stamp-order COO triplets collapse onto a **fixed sparsity
    pattern** computed once per structure signature
    (:class:`SparsePattern`), a reverse-Cuthill-McKee ordering is
    computed once and reused across all lanes, Newton iterations and
    timepoints, and each iterate only refreshes the numeric values
    before a ``scipy.sparse.linalg.splu`` factorization with
    ``permc_spec="MMD_AT_PLUS_A"`` (minimum degree on ``A + A.T`` —
    the right heuristic for structurally-symmetric MNA matrices with
    global supply/clock hub nodes).  Singular or ill-conditioned lanes
    fall back to the dense path per lane, exactly like the batched
    kernel's ``_solve_stack``.

``scipy`` is optional: without it ``HAVE_SPARSE`` is ``False`` and
``resolve_solver`` degrades ``sparse`` requests to the pure-numpy
``dense-batched`` path, so every entry point keeps working.

The module also hosts the per-phase timing counters (``assemble`` /
``factor`` / ``solve`` / ``convergence_check``) that the campaign
event bus surfaces through ``--metrics-out`` and the bench JSONs, plus
the matrix-shape record (backend, n, nnz, B) the benchmarks embed so
the perf trajectory distinguishes macro-scale from full-chip runs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

try:  # optional sparse stack; every dense path is pure numpy
    from scipy.sparse import csc_matrix, csr_matrix
    from scipy.sparse.csgraph import reverse_cuthill_mckee
    from scipy.sparse.linalg import splu

    HAVE_SPARSE = True
except Exception:  # pragma: no cover - exercised only without scipy
    HAVE_SPARSE = False

__all__ = [
    "HAVE_SPARSE",
    "SOLVERS",
    "resolve_solver",
    "LinearBackend",
    "DenseBackend",
    "ScalarSparseBackend",
    "scalar_backend",
    "SparsePattern",
    "record_phase",
    "phase_timer",
    "snapshot_timings",
    "reset_timings",
    "record_matrix",
    "snapshot_matrix",
    "reset_matrix",
]

#: the valid values of every ``solver`` knob in the system
SOLVERS = ("auto", "dense", "dense-batched", "sparse")


def resolve_solver(solver: str) -> str:
    """Validate a solver knob and resolve it to an available backend.

    ``auto`` resolves to ``dense-batched`` (the bit-identical default);
    ``sparse`` degrades to ``dense-batched`` when scipy is absent so a
    pure-numpy install keeps working end to end.
    """
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVERS}")
    if solver == "auto":
        return "dense-batched"
    if solver == "sparse" and not HAVE_SPARSE:
        return "dense-batched"
    return solver


# ---------------------------------------------------------------------------
# per-phase timing counters (campaign observability)

#: accumulated seconds per solver phase in this process
_PHASE_TOTALS: Dict[str, float] = {}

#: shape of the largest system factored since the last reset
_MATRIX_INFO: Dict[str, object] = {}


def record_phase(phase: str, seconds: float) -> None:
    """Accumulate ``seconds`` under ``phase`` for this process."""
    _PHASE_TOTALS[phase] = _PHASE_TOTALS.get(phase, 0.0) + seconds


class phase_timer:
    """Context manager accumulating its elapsed time under a phase.

    >>> with phase_timer("assemble"):
    ...     program.assemble(system, X, ctx)
    """

    __slots__ = ("phase", "_t0")

    def __init__(self, phase: str):
        self.phase = phase

    def __enter__(self) -> "phase_timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        record_phase(self.phase, perf_counter() - self._t0)


def snapshot_timings() -> Dict[str, float]:
    """Current per-phase totals (seconds) for this process."""
    return dict(_PHASE_TOTALS)


def reset_timings() -> None:
    """Zero the per-phase totals (start of a campaign task)."""
    _PHASE_TOTALS.clear()


def record_matrix(backend: str, n: int, nnz: int, nlanes: int) -> None:
    """Remember the largest system solved since the last reset."""
    if int(n) >= int(_MATRIX_INFO.get("n", -1)):
        _MATRIX_INFO.update(backend=backend, n=int(n), nnz=int(nnz),
                            nlanes=int(nlanes))


def snapshot_matrix() -> Dict[str, object]:
    """Shape of the largest system factored since the last reset."""
    return dict(_MATRIX_INFO)


def reset_matrix() -> None:
    _MATRIX_INFO.clear()


# ---------------------------------------------------------------------------
# scalar backends (MNASystem.solve)


class LinearBackend:
    """Protocol for a scalar linear solve ``G x = b``.

    Implementations take an assembled dense ``G`` (the scalar stamping
    path always assembles dense; at ~20-transistor macro sizes that is
    the right call) and either solve it directly or convert to sparse
    first.  ``numpy.linalg.LinAlgError`` signals a singular system in
    every implementation, preserving the Newton continuation contract.
    """

    name = "abstract"

    def solve(self, G: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class DenseBackend(LinearBackend):
    """The original dense LAPACK solve — bit-identical to the seed."""

    name = "dense"

    def solve(self, G: np.ndarray, b: np.ndarray) -> np.ndarray:
        t0 = perf_counter()
        try:
            return np.linalg.solve(G, b)
        finally:
            record_phase("solve", perf_counter() - t0)


class ScalarSparseBackend(LinearBackend):
    """SuperLU solve of the scalar system (real or complex).

    Converts the assembled dense matrix to CSC per call — useful for
    API completeness (``dc``/``ac`` honour the knob) and for very
    large scalar systems; the batched program path is where the
    pattern/ordering reuse pays off.
    """

    name = "sparse"

    def solve(self, G: np.ndarray, b: np.ndarray) -> np.ndarray:
        if not HAVE_SPARSE:  # degrade: pure-numpy installs stay alive
            return DenseBackend().solve(G, b)
        t0 = perf_counter()
        try:
            lu = splu(csc_matrix(G), permc_spec="MMD_AT_PLUS_A")
        except RuntimeError as exc:  # SuperLU signals singularity here
            record_phase("factor", perf_counter() - t0)
            raise np.linalg.LinAlgError(str(exc)) from exc
        record_phase("factor", perf_counter() - t0)
        t0 = perf_counter()
        x = lu.solve(b)
        record_phase("solve", perf_counter() - t0)
        if not np.all(np.isfinite(x)):
            raise np.linalg.LinAlgError(
                "sparse solve produced non-finite solution")
        return x


_DENSE = DenseBackend()
_SPARSE_SCALAR = ScalarSparseBackend()


def scalar_backend(solver: str) -> LinearBackend:
    """Resolve a solver knob to the scalar backend instance."""
    return _SPARSE_SCALAR if resolve_solver(solver) == "sparse" \
        else _DENSE


# ---------------------------------------------------------------------------
# the batched sparse machinery


class SparsePattern:
    """Fixed sparsity pattern + reusable ordering of a compiled program.

    The compiled contribution program stamps every element into flat
    ``row * n + col`` slots whose **union is static**: resistive
    stamps never move, and a MOSFET's region swap only toggles each
    device between two precomputed slot sets (``FN``/``FS``), both of
    which are folded into the pattern up front.  That makes the
    sparsity pattern a pure function of the structure signature, so
    the expensive symbolic work — unique pattern, fill-reducing
    reverse-Cuthill-McKee ordering, permuted CSC structure — happens
    exactly once and every Newton iterate is a numeric-only refresh:
    program-maintained positions (``searchsorted`` runs at bind time
    only; the MOSFET refresh keeps the position table in step with
    the swap toggles), one weighted ``bincount`` per lane (sequential
    accumulation, same summation order as the dense kernel), then
    ``splu`` of a reused CSC template with
    ``permc_spec="MMD_AT_PLUS_A"`` (RCM pre-permutation plus minimum
    degree gives measurably less fill than either alone on circuits
    with global supply/clock hubs).

    The program's ground-guard slot ``dump_g`` (== ``n * n``) is kept
    as a trailing sentinel: contributions redirected there land in a
    scratch bin that is dropped, mirroring the dense kernel's dump
    column.
    """

    def __init__(self, n: int, candidates: np.ndarray, dump_g: int):
        self.n = int(n)
        flat = np.asarray(candidates, dtype=np.intp).ravel()
        pattern = np.unique(flat)
        pattern = pattern[(pattern >= 0) & (pattern < self.n * self.n)]
        self.pattern = pattern
        self.nnz = int(pattern.size)
        #: searchsorted table; the dump slot is a trailing sentinel
        self.lookup = np.append(pattern, np.intp(dump_g))
        rows = pattern // self.n
        cols = pattern % self.n
        self._rows = rows
        self._cols = cols
        if HAVE_SPARSE:
            ones = np.ones(self.nnz)
            graph = csr_matrix((ones, (rows, cols)),
                               shape=(self.n, self.n))
            # symmetrize: MNA matrices carry asymmetric source/VCVS
            # stamps, and RCM wants an undirected adjacency
            perm = np.asarray(
                reverse_cuthill_mckee(graph + graph.T,
                                      symmetric_mode=True),
                dtype=np.intp)
        else:  # pattern still usable for densify/fallback paths
            perm = np.arange(self.n, dtype=np.intp)
        self.perm = perm
        inv = np.empty(self.n, dtype=np.intp)
        inv[perm] = np.arange(self.n, dtype=np.intp)
        rowp = inv[rows]
        colp = inv[cols]
        #: gather order mapping pattern-order data to CSC-order data
        self.order = np.lexsort((rowp, colp))
        self.csc_indices = rowp[self.order].astype(np.int32)
        counts = np.bincount(colp, minlength=self.n)
        self.csc_indptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int32)
        #: reusable CSC template; ``factor`` refreshes its data in
        #: place (SuperLU copies the values into its own storage, so
        #: the previous factorization never aliases the template)
        self._csc = None

    def positions(self, IG: np.ndarray) -> np.ndarray:
        """Map program slot indices to pattern positions.

        Every slot the program can emit is in ``lookup`` by
        construction; the dump slot maps to position ``nnz`` (the
        scratch bin).
        """
        return np.searchsorted(self.lookup, IG)

    def scatter(self, pos: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Accumulate one lane's contributions onto the pattern.

        ``bincount`` sums duplicates sequentially in input order —
        the same summation order as the dense kernel's bincount onto
        ``G.flat`` — so shared-slot sums are bit-identical.
        """
        return np.bincount(pos, weights=values,
                           minlength=self.nnz + 1)[:self.nnz]

    def factor(self, data: np.ndarray):
        """Numeric ``splu`` factorization of pattern-order ``data``."""
        A = self._csc
        if A is None:
            A = self._csc = csc_matrix(
                (np.empty(self.nnz), self.csc_indices,
                 self.csc_indptr), shape=(self.n, self.n))
        np.take(data, self.order, out=A.data)
        return splu(A, permc_spec="MMD_AT_PLUS_A")

    def solve_lane(self, data: np.ndarray,
                   b: np.ndarray) -> Tuple[Optional[np.ndarray], bool]:
        """Solve one lane; ``(x, True)`` or ``(None, False)``.

        A ``False`` verdict (singular factorization or non-finite
        solution) tells the caller to fall back to the dense path for
        this lane, preserving the batched kernel's per-lane fallback
        contract.
        """
        t0 = perf_counter()
        try:
            lu = self.factor(data)
        except RuntimeError:  # SuperLU: singular/ill-conditioned
            record_phase("factor", perf_counter() - t0)
            return None, False
        record_phase("factor", perf_counter() - t0)
        t0 = perf_counter()
        xp = lu.solve(b[self.perm])
        record_phase("solve", perf_counter() - t0)
        if not np.all(np.isfinite(xp)):
            return None, False
        x = np.empty_like(b)
        x[self.perm] = xp
        return x, True

    def densify(self, data: np.ndarray) -> np.ndarray:
        """Expand pattern-order ``data`` to a dense ``(n, n)`` matrix
        (the per-lane fallback path)."""
        G = np.zeros((self.n, self.n), dtype=data.dtype)
        G[self._rows, self._cols] = data
        return G
