"""Hierarchical subcircuits.

The simulator core deliberately works on flat netlists (as SPICE does
after expansion); this module provides the expansion.  A
:class:`Subcircuit` is a reusable netlist template with declared ports;
:func:`instantiate` stamps a copy into a parent circuit, prefixing
element names and internal nodes with the instance name and splicing the
ports onto parent nodes.

The ADC macros use builder functions for historical flexibility; this
class-based layer formalises the same pattern for library users and
gives the SPICE reader/writer a ``.subckt`` / ``X`` card target.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .netlist import Circuit, CircuitError, canonical_node


@dataclass
class Subcircuit:
    """A reusable netlist template.

    Attributes:
        name: subcircuit (definition) name.
        ports: ordered port node names (as used inside the template).
        circuit: the template netlist; ports and ``gnd`` are the only
            nodes shared with the outside on instantiation.
    """

    name: str
    ports: Sequence[str]
    circuit: Circuit

    def __post_init__(self) -> None:
        self.ports = [canonical_node(p) for p in self.ports]
        if len(set(self.ports)) != len(self.ports):
            raise CircuitError(f"{self.name}: duplicate ports")
        nodes = set(self.circuit.nodes())
        missing = [p for p in self.ports
                   if p != "gnd" and p not in nodes]
        if missing:
            raise CircuitError(
                f"{self.name}: ports not present in template: "
                f"{missing}")

    def internal_nodes(self) -> List[str]:
        """Template nodes that are not ports (will be prefixed)."""
        return [n for n in self.circuit.nodes() if n not in self.ports]


def instantiate(parent: Circuit, subcircuit: Subcircuit,
                instance_name: str,
                connections: Sequence[str]) -> List[str]:
    """Stamp one instance of *subcircuit* into *parent*.

    Args:
        parent: circuit receiving the expanded elements.
        instance_name: prefix for element names and internal nodes
            (SPICE ``X`` card name).
        connections: parent node per subcircuit port, in port order.

    Returns:
        The names of the added elements.

    Raises:
        CircuitError: on arity mismatch or name collisions.
    """
    if len(connections) != len(subcircuit.ports):
        raise CircuitError(
            f"{instance_name}: {subcircuit.name} has "
            f"{len(subcircuit.ports)} ports, got {len(connections)}")
    node_map: Dict[str, str] = {
        port: canonical_node(outside)
        for port, outside in zip(subcircuit.ports, connections)}
    for internal in subcircuit.internal_nodes():
        node_map[internal] = f"{instance_name}.{internal}"

    added = []
    for element in subcircuit.circuit.elements:
        clone = copy.deepcopy(element)
        clone.name = f"{instance_name}.{element.name}"
        clone.nodes = [node_map.get(n, n) for n in clone.nodes]
        parent.add(clone)
        added.append(clone.name)
    return added


def flatten(title: str,
            instances: Sequence) -> Circuit:
    """Build a flat circuit from ``(subcircuit, name, connections)``
    triples."""
    parent = Circuit(title)
    for subcircuit, name, connections in instances:
        instantiate(parent, subcircuit, name, connections)
    return parent
