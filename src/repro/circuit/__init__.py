"""Analog circuit simulation substrate (SPICE-equivalent for this repo).

Public API:

* :class:`Circuit` - netlist container.
* Elements: :class:`Resistor`, :class:`Capacitor`, :class:`VoltageSource`,
  :class:`CurrentSource`, :class:`VCCS`, :class:`VCVS`, :class:`Switch`,
  :class:`Diode`, :class:`Mosfet` / :class:`MosParams`.
* Analyses: :func:`operating_point`, :func:`dc_sweep`, :func:`transient`,
  :func:`ac_analysis`.
* Batched kernel: :func:`transient_lanes`, :func:`transient_batch`,
  :func:`operating_point_lanes`, :func:`structure_signature` (see
  ``docs/ENGINE.md``).
* Waveforms: :class:`DC`, :class:`Pulse`, :class:`Triangle`, :class:`PWL`,
  :class:`Sin`, :func:`three_phase_clocks`.
"""

from .ac import ACResult, ac_analysis, bandwidth_3db, log_frequencies
from .batch import (BatchUnsupported, LaneResult, clear_kernel_cache,
                    operating_point_lanes, structure_signature,
                    transient_batch, transient_lanes)
from .dc import ConvergenceError, DCResult, dc_sweep, operating_point
from .elements import (Capacitor, CurrentSource, Diode, Element, Resistor,
                       Switch, VCCS, VCVS, VoltageSource)
from .mna import MNASystem, StampContext
from .hierarchy import Subcircuit, flatten, instantiate
from .measure import (crossing_times, duty_cycle, fall_time,
                      overshoot, period as measured_period, rise_time,
                      settling_time, slew_rate)
from .mosfet import Mosfet, MosParams
from .netlist import Circuit, CircuitError, CompiledCircuit, canonical_node
from .spicefmt import (SpiceFormatError, parse_netlist, parse_value,
                       write_netlist)
from .transient import TransientResult, supply_current, transient
from .waveforms import DC, PWL, Pulse, Sin, Triangle, three_phase_clocks

__all__ = [
    "ACResult", "ac_analysis", "bandwidth_3db", "log_frequencies",
    "BatchUnsupported", "LaneResult", "clear_kernel_cache",
    "operating_point_lanes", "structure_signature", "transient_batch",
    "transient_lanes",
    "ConvergenceError", "DCResult", "dc_sweep", "operating_point",
    "Capacitor", "CurrentSource", "Diode", "Element", "Resistor", "Switch",
    "VCCS", "VCVS", "VoltageSource", "MNASystem", "StampContext",
    "Mosfet", "MosParams", "Circuit", "CircuitError", "CompiledCircuit",
    "canonical_node", "TransientResult", "supply_current", "transient",
    "DC", "PWL", "Pulse", "Sin", "Triangle", "three_phase_clocks",
    "SpiceFormatError", "parse_netlist", "parse_value", "write_netlist",
    "crossing_times", "duty_cycle", "fall_time", "overshoot",
    "measured_period", "rise_time", "settling_time", "slew_rate",
    "Subcircuit", "flatten", "instantiate",
]
