"""Waveform measurement utilities.

Post-processing helpers over sampled waveforms (time and value arrays,
as produced by :class:`~repro.circuit.transient.TransientResult`):
threshold crossings, rise/fall times, overshoot, settling, period and
duty cycle, slew rate.  Used by the clock-generator analysis and the
characterisation examples; all functions interpolate linearly between
samples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class MeasurementError(Exception):
    """The requested feature does not exist in the waveform."""


def _as_arrays(times, values) -> Tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.ndim != 1:
        raise ValueError("times and values must be 1-D and equal length")
    if len(t) < 2:
        raise ValueError("need at least two samples")
    return t, v


def crossing_times(times, values, threshold: float,
                   direction: str = "both") -> List[float]:
    """Interpolated instants where the waveform crosses *threshold*.

    Args:
        direction: ``"rising"``, ``"falling"`` or ``"both"``.
    """
    if direction not in ("rising", "falling", "both"):
        raise ValueError(f"bad direction {direction!r}")
    t, v = _as_arrays(times, values)
    crossings: List[float] = []
    above = v >= threshold
    for k in range(1, len(v)):
        if above[k] == above[k - 1]:
            continue
        rising = above[k]
        if direction == "rising" and not rising:
            continue
        if direction == "falling" and rising:
            continue
        frac = (threshold - v[k - 1]) / (v[k] - v[k - 1])
        crossings.append(float(t[k - 1] + frac * (t[k] - t[k - 1])))
    return crossings


def _edge_time(times, values, lo_frac: float, hi_frac: float,
               rising: bool) -> float:
    t, v = _as_arrays(times, values)
    base, top = float(v.min()), float(v.max())
    if top <= base:
        raise MeasurementError("waveform has no swing")
    lo = base + lo_frac * (top - base)
    hi = base + hi_frac * (top - base)
    if rising:
        starts = crossing_times(t, v, lo, "rising")
        ends = crossing_times(t, v, hi, "rising")
    else:
        starts = crossing_times(t, v, hi, "falling")
        ends = crossing_times(t, v, lo, "falling")
    for s in starts:
        later = [e for e in ends if e > s]
        if later:
            return later[0] - s
    raise MeasurementError("no complete edge found")


def rise_time(times, values, lo_frac: float = 0.1,
              hi_frac: float = 0.9) -> float:
    """10-90 % (by default) rise time of the first complete edge."""
    return _edge_time(times, values, lo_frac, hi_frac, rising=True)


def fall_time(times, values, lo_frac: float = 0.1,
              hi_frac: float = 0.9) -> float:
    """90-10 % (by default) fall time of the first complete edge."""
    return _edge_time(times, values, lo_frac, hi_frac, rising=False)


def overshoot(times, values, final_value: Optional[float] = None
              ) -> float:
    """Peak overshoot as a fraction of the final value's swing.

    The final value defaults to the last sample; the baseline is the
    first sample.
    """
    t, v = _as_arrays(times, values)
    final = float(v[-1]) if final_value is None else final_value
    base = float(v[0])
    swing = final - base
    if abs(swing) < 1e-30:
        raise MeasurementError("no step to measure overshoot against")
    peak = float(v.max()) if swing > 0 else float(v.min())
    return max(0.0, (peak - final) / swing)


def settling_time(times, values, tolerance: float = 0.01,
                  final_value: Optional[float] = None) -> float:
    """Time after which the waveform stays within *tolerance* (fraction
    of the step) of the final value."""
    t, v = _as_arrays(times, values)
    final = float(v[-1]) if final_value is None else final_value
    swing = abs(final - float(v[0]))
    if swing < 1e-30:
        return 0.0
    band = tolerance * swing
    outside = np.nonzero(np.abs(v - final) > band)[0]
    if len(outside) == 0:
        return 0.0
    k = outside[-1]
    if k + 1 >= len(t):
        raise MeasurementError("waveform never settles")
    return float(t[k + 1] - t[0])


def period(times, values, threshold: Optional[float] = None) -> float:
    """Average period from rising threshold crossings."""
    t, v = _as_arrays(times, values)
    if threshold is None:
        threshold = 0.5 * (float(v.min()) + float(v.max()))
    rises = crossing_times(t, v, threshold, "rising")
    if len(rises) < 2:
        raise MeasurementError("fewer than two rising crossings")
    return float(np.mean(np.diff(rises)))


def duty_cycle(times, values, threshold: Optional[float] = None
               ) -> float:
    """High-time fraction over complete cycles."""
    t, v = _as_arrays(times, values)
    if threshold is None:
        threshold = 0.5 * (float(v.min()) + float(v.max()))
    rises = crossing_times(t, v, threshold, "rising")
    falls = crossing_times(t, v, threshold, "falling")
    if len(rises) < 2:
        raise MeasurementError("fewer than two rising crossings")
    total = rises[-1] - rises[0]
    high = 0.0
    for r in rises[:-1]:
        next_falls = [f for f in falls if f > r]
        if next_falls:
            high += min(next_falls[0], rises[-1]) - r
    return high / total


def slew_rate(times, values) -> float:
    """Maximum |dv/dt| of the waveform (V/s)."""
    t, v = _as_arrays(times, values)
    dt = np.diff(t)
    if np.any(dt <= 0):
        raise ValueError("times must be strictly increasing")
    return float(np.max(np.abs(np.diff(v) / dt)))
