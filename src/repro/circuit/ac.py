"""Small-signal AC analysis.

Linearises the circuit at its DC operating point and solves the complex
system ``(G + j*omega*C) x = b`` over a frequency list.  Used for the
fault signatures that only show up in the frequency domain (the paper's
"clock value" faults degrade high-frequency behaviour) and by the
specification-oriented baseline tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .dc import DCResult, operating_point
from .mna import MNASystem, StampContext
from .netlist import Circuit


@dataclass
class ACResult:
    """Complex node responses over frequency.

    Attributes:
        freqs: analysis frequencies in Hz.
        compiled: index map.
        xs: complex solution matrix, shape (len(freqs), n_unknowns).
    """

    freqs: np.ndarray
    compiled: "object"
    xs: np.ndarray

    def response(self, node: str) -> np.ndarray:
        """Complex voltage response of *node* across frequency."""
        idx = self.compiled.index_of(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.xs[:, idx]

    def magnitude_db(self, node: str) -> np.ndarray:
        """Response magnitude in dB (floored at -300 dB)."""
        mag = np.abs(self.response(node))
        return 20.0 * np.log10(np.maximum(mag, 1e-15))

    def phase_deg(self, node: str) -> np.ndarray:
        """Response phase in degrees."""
        return np.degrees(np.angle(self.response(node)))


def ac_analysis(circuit: Circuit, freqs: Sequence[float],
                op: Optional[DCResult] = None,
                solver: str = "auto") -> ACResult:
    """Run AC analysis at the given frequencies.

    Args:
        circuit: netlist; exactly the sources with a nonzero ``ac``
            magnitude drive the small-signal system.
        freqs: frequencies in Hz.
        op: optional pre-computed operating point.
        solver: linear backend; ``sparse`` solves the complex system
            through SuperLU (and the operating point through the
            sparse scalar backend).
    """
    if op is None:
        op = operating_point(circuit, solver=solver)
    compiled = op.compiled
    system = MNASystem(compiled, dtype=complex, solver=solver)
    ctx = StampContext(mode="ac")
    xs = np.zeros((len(freqs), compiled.size), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * math.pi * f
        system.assemble_ac(circuit, op.x, omega, ctx)
        xs[k] = system.solve()
    return ACResult(freqs=np.asarray(freqs, dtype=float),
                    compiled=compiled, xs=xs)


def log_frequencies(f_start: float, f_stop: float,
                    points_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced frequency grid (inclusive of endpoints)."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = math.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(f_start), math.log10(f_stop), n)


def bandwidth_3db(result: ACResult, node: str) -> float:
    """-3 dB bandwidth of a node response relative to its lowest
    analysed frequency; returns the last frequency if never reached."""
    mags = np.abs(result.response(node))
    if mags[0] <= 0:
        return float(result.freqs[0])
    target = mags[0] / math.sqrt(2.0)
    below = np.nonzero(mags < target)[0]
    if len(below) == 0:
        return float(result.freqs[-1])
    k = below[0]
    if k == 0:
        return float(result.freqs[0])
    # log-linear interpolation between the straddling points
    f0, f1 = result.freqs[k - 1], result.freqs[k]
    m0, m1 = mags[k - 1], mags[k]
    if m0 == m1:
        return float(f0)
    frac = (m0 - target) / (m0 - m1)
    return float(f0 * (f1 / f0) ** frac)
