"""Circuit netlist container and compilation.

A :class:`Circuit` is a flat bag of elements connected by named nodes.
Node names are plain strings; the ground node is ``"gnd"`` (the alias
``"0"`` is accepted and normalised).  Hierarchy is handled by builder
functions that add elements with a name prefix (see ``repro.adc``), so the
simulator core only ever sees flat netlists — the same view a SPICE engine
has after subcircuit expansion.

Compilation assigns matrix indices: one unknown per non-ground node plus
one branch-current unknown per element that requires it (voltage sources
and controlled voltage sources).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss!", "VSS!"})


def canonical_node(name: str) -> str:
    """Normalise a node name; all ground aliases map to ``"gnd"``."""
    if name in GROUND_NAMES:
        return "gnd"
    return name


class CircuitError(Exception):
    """Raised for malformed netlists (duplicate names, missing nodes...)."""


@dataclass
class CompiledCircuit:
    """Index assignment produced by :meth:`Circuit.compile`.

    Attributes:
        node_index: node name -> row index (ground is absent, index -1).
        branch_index: element name -> branch-current row index.
        size: total number of unknowns.
    """

    node_index: Dict[str, int]
    branch_index: Dict[str, int]
    size: int

    def index_of(self, node: str) -> int:
        """Matrix index of *node*; ground returns -1."""
        node = canonical_node(node)
        if node == "gnd":
            return -1
        try:
            return self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}")


class Circuit:
    """A flat netlist of circuit elements.

    Elements are added with :meth:`add` and must have unique names.  The
    circuit can be deep-copied (``copy()``) so fault injection never
    mutates the golden netlist.
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._elements: Dict[str, "object"] = {}

    # -- construction ----------------------------------------------------

    def add(self, element) -> "object":
        """Add *element* to the circuit and return it.

        Raises:
            CircuitError: if an element with the same name already exists.
        """
        if element.name in self._elements:
            raise CircuitError(f"duplicate element name {element.name!r}")
        element.nodes = [canonical_node(n) for n in element.nodes]
        self._elements[element.name] = element
        return element

    def remove(self, name: str) -> None:
        """Remove the element called *name*.

        Raises:
            CircuitError: if no such element exists.
        """
        if name not in self._elements:
            raise CircuitError(f"no element named {name!r}")
        del self._elements[name]

    def copy(self) -> "Circuit":
        """Return an independent deep copy of the circuit."""
        return copy.deepcopy(self)

    # -- access ----------------------------------------------------------

    @property
    def elements(self) -> List:
        """Elements in insertion order."""
        return list(self._elements.values())

    def element(self, name: str):
        """Look up an element by name.

        Raises:
            CircuitError: if no such element exists.
        """
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(f"no element named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def nodes(self) -> List[str]:
        """All non-ground node names, sorted for determinism."""
        seen = set()
        for el in self._elements.values():
            for n in el.nodes:
                if n != "gnd":
                    seen.add(n)
        return sorted(seen)

    def elements_on_node(self, node: str) -> List:
        """Elements with at least one terminal on *node*."""
        node = canonical_node(node)
        return [el for el in self._elements.values() if node in el.nodes]

    # -- topology edits (used by fault injection) ------------------------

    def rename_terminal(self, element_name: str, terminal: int,
                        new_node: str) -> None:
        """Reconnect one terminal of an element to *new_node*.

        Used by open-fault injection to split a node: a subset of the
        elements formerly on the node is moved to a fresh node name.
        """
        el = self.element(element_name)
        if not 0 <= terminal < len(el.nodes):
            raise CircuitError(
                f"element {element_name!r} has no terminal {terminal}")
        el.nodes[terminal] = canonical_node(new_node)

    # -- compilation -----------------------------------------------------

    def compile(self) -> CompiledCircuit:
        """Assign matrix indices to nodes and branch currents."""
        node_index: Dict[str, int] = {}
        for name in self.nodes():
            node_index[name] = len(node_index)
        branch_index: Dict[str, int] = {}
        next_index = len(node_index)
        for el in self._elements.values():
            for _ in range(getattr(el, "branches", 0)):
                branch_index[el.name] = next_index
                next_index += 1
        return CompiledCircuit(node_index=node_index,
                               branch_index=branch_index, size=next_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Circuit({self.title!r}, {len(self._elements)} elements, "
                f"{len(self.nodes())} nodes)")
