"""Level-1 (Shichman-Hodges) MOSFET model with body effect.

This is the classic SPICE level-1 model: square-law saturation, triode
region, channel-length modulation (lambda) and body effect (gamma).  It is
entirely adequate for the paper's purpose — determining whether a spot
defect's circuit-level fault model perturbs DC levels, clocked transient
decisions or quiescent currents of ~20-transistor analog macros.

The device is symmetric: when the applied ``vds`` is negative the source
and drain are swapped internally, so pass transistors conduct both ways.

Constant gate capacitances (Cgs, Cgd from Cox plus overlap) are stamped in
transient analysis so dynamic nodes (sampling caps, latch nodes) have
realistic memory without the complexity of Meyer capacitances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from .elements import BatchUnsupported, Element


@dataclass(frozen=True)
class MosParams:
    """Electrical parameters for one device polarity.

    Attributes:
        kp: transconductance parameter KP = u0*Cox (A/V^2).
        vto: zero-bias threshold voltage (positive for NMOS, negative
            for PMOS, as in SPICE).
        lam: channel-length modulation (1/V).
        gamma: body-effect coefficient (sqrt(V)).
        phi: surface potential (V).
        cox: gate-oxide capacitance per area (F/m^2).
        cov: gate overlap capacitance per width (F/m).
    """

    kp: float
    vto: float
    lam: float
    gamma: float
    phi: float
    cox: float
    cov: float

    def scaled(self, kp_scale: float = 1.0, vto_shift: float = 0.0
               ) -> "MosParams":
        """Return params for a process/temperature corner."""
        return replace(self, kp=self.kp * kp_scale, vto=self.vto + vto_shift)


class Mosfet(Element):
    """Four-terminal MOSFET: (drain, gate, source, bulk).

    Args:
        name: unique element name.
        d, g, s, b: node names.
        params: :class:`MosParams` for the device polarity.
        w, l: channel width and length in metres.
        polarity: ``"n"`` or ``"p"``.
    """

    def __init__(self, name: str, d: str, g: str, s: str, b: str,
                 params: MosParams, w: float, l: float,
                 polarity: str = "n") -> None:
        super().__init__(name, [d, g, s, b])
        if polarity not in ("n", "p"):
            raise ValueError(f"{name}: polarity must be 'n' or 'p'")
        if w <= 0 or l <= 0:
            raise ValueError(f"{name}: W and L must be positive")
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.polarity = polarity

    # -- device equations -------------------------------------------------

    @property
    def beta(self) -> float:
        """Gain factor KP * W / L."""
        return self.params.kp * self.w / self.l

    def threshold(self, vsb: float) -> float:
        """Threshold voltage including body effect (in device polarity)."""
        p = self.params
        vto = abs(p.vto)
        if p.gamma == 0.0:
            return vto
        arg = p.phi + max(vsb, 0.0)
        return vto + p.gamma * (math.sqrt(arg) - math.sqrt(p.phi))

    def ids(self, vgs: float, vds: float, vbs: float):
        """Drain current and partial derivatives.

        All voltages are in *device polarity* (already sign-flipped for
        PMOS and source/drain-swapped for vds < 0 by the caller).

        Returns:
            Tuple ``(ids, gm, gds, gmb)``.
        """
        p = self.params
        vsb = -vbs
        vth = self.threshold(vsb)
        vov = vgs - vth
        beta = self.beta
        # dVth/dVbs (negative of dVth/dVsb)
        if p.gamma > 0.0:
            arg = p.phi + max(vsb, 0.0)
            dvth_dvsb = 0.5 * p.gamma / math.sqrt(arg)
        else:
            dvth_dvsb = 0.0
        if vov <= 0.0:
            # Subthreshold leakage is modelled as a tiny conductance only,
            # which is sufficient because explicit "leaker" devices model
            # the flipflop leakage the paper discusses.
            return 0.0, 0.0, 0.0, 0.0
        clm = 1.0 + p.lam * vds
        if vds < vov:
            # triode
            i = beta * (vov - 0.5 * vds) * vds * clm
            gm = beta * vds * clm
            gds = beta * (vov - vds) * clm + beta * (
                vov - 0.5 * vds) * vds * p.lam
            gmb = gm * dvth_dvsb
        else:
            # saturation
            i = 0.5 * beta * vov * vov * clm
            gm = beta * vov * clm
            gds = 0.5 * beta * vov * vov * p.lam
            gmb = gm * dvth_dvsb
        return i, gm, gds, gmb

    def operating_point(self, vd: float, vg: float, vs: float, vb: float):
        """Drain current (external polarity) at given terminal voltages.

        Handles the PMOS sign flip and source/drain swap.

        Returns:
            Tuple ``(id_external, region)`` where region is one of
            ``"off"``, ``"triode"``, ``"sat"``.
        """
        i, _, _, _, swapped, sign = self._solve_terminal(vd, vg, vs, vb)
        vgs, vds, vbs = self._device_voltages(vd, vg, vs, vb, swapped, sign)
        vth = self.threshold(-vbs)
        if vgs - vth <= 0:
            region = "off"
        elif vds < vgs - vth:
            region = "triode"
        else:
            region = "sat"
        return i, region

    # -- internal helpers --------------------------------------------------

    def _device_voltages(self, vd, vg, vs, vb, swapped, sign):
        if swapped:
            vd, vs = vs, vd
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        vbs = sign * (vb - vs)
        return vgs, vds, vbs

    def _solve_terminal(self, vd, vg, vs, vb):
        """Evaluate the model, returning current into the external drain."""
        sign = 1.0 if self.polarity == "n" else -1.0
        swapped = sign * (vd - vs) < 0.0
        vgs, vds, vbs = self._device_voltages(vd, vg, vs, vb, swapped, sign)
        i, gm, gds, gmb = self.ids(vgs, vds, vbs)
        i_ext = sign * i
        if swapped:
            i_ext = -i_ext
        return i_ext, gm, gds, gmb, swapped, sign

    # -- MNA stamps ---------------------------------------------------------

    def stamp(self, system, x, ctx) -> None:
        nd, ng, ns, nb = system.indices(self.nodes)
        vd = system.voltage(x, nd, -1)
        vg = system.voltage(x, ng, -1)
        vs = system.voltage(x, ns, -1)
        vb = system.voltage(x, nb, -1)

        sign = 1.0 if self.polarity == "n" else -1.0
        swapped = sign * (vd - vs) < 0.0
        d_idx, s_idx = (ns, nd) if swapped else (nd, ns)
        vgs, vds, vbs = self._device_voltages(vd, vg, vs, vb, swapped, sign)
        i, gm, gds, gmb = self.ids(vgs, vds, vbs)

        # Companion model: I = i0 + gm*dvgs + gds*dvds + gmb*dvbs, all in
        # device polarity.  Because both the controlling voltages and the
        # current pick up the same sign flip for PMOS, the conductance
        # stamps are polarity-independent; only the equivalent current
        # source needs the sign.
        ieq = i - gm * vgs - gds * vds - gmb * vbs
        ieq_ext = sign * ieq

        system.add_transconductance(d_idx, s_idx, ng if not swapped else ng,
                                    s_idx, gm)
        system.add_conductance(d_idx, s_idx, gds)
        system.add_transconductance(d_idx, s_idx, nb, s_idx, gmb)
        system.add_current(d_idx, -ieq_ext)
        system.add_current(s_idx, ieq_ext)

        # Convergence aid: gmin from drain and source to ground.
        if ctx.gmin > 0.0:
            system.add_conductance(nd, -1, ctx.gmin)
            system.add_conductance(ns, -1, ctx.gmin)

        # Gate capacitances in transient.
        if ctx.mode == "tran" and ctx.dt is not None:
            self._stamp_gate_caps(system, ctx, nd, ng, ns)

    def _gate_caps(self):
        # Meyer-style saturation split: the channel charge belongs to the
        # source side; the drain sees only the overlap capacitance.  This
        # keeps switched-capacitor nodes from being swamped by phantom
        # drain kickback.
        p = self.params
        c_ch = p.cox * self.w * self.l
        c_ov = p.cov * self.w
        cgs = (2.0 / 3.0) * c_ch + c_ov
        cgd = c_ov
        return cgs, cgd

    def _stamp_gate_caps(self, system, ctx, nd, ng, ns) -> None:
        cgs, cgd = self._gate_caps()
        for (a, b, c) in ((ng, ns, cgs), (ng, nd, cgd)):
            geq = c / ctx.dt
            v_prev = system.voltage(ctx.x_prev, a, b)
            ieq = geq * v_prev
            system.add_conductance(a, b, geq)
            system.add_current(a, ieq)
            system.add_current(b, -ieq)

    def stamp_ac(self, system, x_op, ctx) -> None:
        nd, ng, ns, nb = system.indices(self.nodes)
        vd = system.voltage(x_op, nd, -1)
        vg = system.voltage(x_op, ng, -1)
        vs = system.voltage(x_op, ns, -1)
        vb = system.voltage(x_op, nb, -1)
        sign = 1.0 if self.polarity == "n" else -1.0
        swapped = sign * (vd - vs) < 0.0
        d_idx, s_idx = (ns, nd) if swapped else (nd, ns)
        vgs, vds, vbs = self._device_voltages(vd, vg, vs, vb, swapped, sign)
        _, gm, gds, gmb = self.ids(vgs, vds, vbs)
        system.add_transconductance(d_idx, s_idx, ng, s_idx, gm)
        system.add_conductance(d_idx, s_idx, gds)
        system.add_transconductance(d_idx, s_idx, nb, s_idx, gmb)
        cgs, cgd = self._gate_caps()
        system.add_susceptance(ng, ns, cgs)
        system.add_susceptance(ng, nd, cgd)

    # -- batched stamps -----------------------------------------------------

    def batch_slot(self, system, lanes) -> dict:
        if any(lane.polarity != self.polarity for lane in lanes):
            raise BatchUnsupported(f"{self.name}: mixed polarity lanes")
        caps = [lane._gate_caps() for lane in lanes]
        # Per-lane derived parameters are computed with the same scalar
        # Python arithmetic the scalar stamp uses (beta property,
        # math.sqrt(phi)), so the vectorised model evaluates every lane
        # bit-identically to Mosfet.ids.
        return {
            "idx": tuple(system.indices(self.nodes)),
            "sign": 1.0 if self.polarity == "n" else -1.0,
            "beta": np.array([lane.params.kp * lane.w / lane.l
                              for lane in lanes]),
            "vto": np.array([abs(lane.params.vto) for lane in lanes]),
            "lam": np.array([lane.params.lam for lane in lanes]),
            "gamma": np.array([lane.params.gamma for lane in lanes]),
            "phi": np.array([lane.params.phi for lane in lanes]),
            "sqrt_phi": np.array([math.sqrt(lane.params.phi)
                                  for lane in lanes]),
            "cgs": np.array([c[0] for c in caps]),
            "cgd": np.array([c[1] for c in caps]),
        }

    def stamp_batch(self, system, X, ctx, slot) -> None:
        nd, ng, ns, nb = slot["idx"]
        vd = system.voltage(X, nd, -1)
        vg = system.voltage(X, ng, -1)
        vs = system.voltage(X, ns, -1)
        vb = system.voltage(X, nb, -1)

        sign = slot["sign"]
        swapped = sign * (vd - vs) < 0.0
        vdx = np.where(swapped, vs, vd)
        vsx = np.where(swapped, vd, vs)
        vgs = sign * (vg - vsx)
        vds = sign * (vdx - vsx)
        vbs = sign * (vb - vsx)
        i, gm, gds, gmb = _ids_batch(slot, vgs, vds, vbs)
        ieq = i - gm * vgs - gds * vds - gmb * vbs
        ieq_ext = sign * ieq

        # The source/drain swap changes which matrix indices a lane
        # writes to, so lanes split into (at most) two masked groups.
        # Within each lane the add order is exactly the scalar stamp's.
        for flag, group in ((False, ~swapped), (True, swapped)):
            if not group.any():
                continue
            mask = None if group.all() else group
            d_idx, s_idx = (ns, nd) if flag else (nd, ns)
            system.add_transconductance(d_idx, s_idx, ng, s_idx, gm,
                                        mask=mask)
            system.add_conductance(d_idx, s_idx, gds, mask=mask)
            system.add_transconductance(d_idx, s_idx, nb, s_idx, gmb,
                                        mask=mask)
            system.add_current(d_idx, -ieq_ext, mask=mask)
            system.add_current(s_idx, ieq_ext, mask=mask)

        if ctx.gmin > 0.0:
            system.add_conductance(nd, -1, ctx.gmin)
            system.add_conductance(ns, -1, ctx.gmin)

        if ctx.mode == "tran" and ctx.dt is not None:
            for (a, b, c) in ((ng, ns, slot["cgs"]), (ng, nd, slot["cgd"])):
                geq = c / ctx.dt
                v_prev = system.voltage(ctx.x_prev, a, b)
                ieq_cap = geq * v_prev
                system.add_conductance(a, b, geq)
                system.add_current(a, ieq_cap)
                system.add_current(b, -ieq_cap)


def _ids_batch(slot, vgs, vds, vbs):
    """Vectorised :meth:`Mosfet.ids` over lanes (see :func:`_ids_arrays`)."""
    return _ids_arrays(slot["beta"], slot["vto"], slot["lam"],
                       slot["gamma"], slot["phi"], slot["sqrt_phi"],
                       vgs, vds, vbs)


def _ids_arrays(beta, vto, lam, gamma, phi, sqrt_phi, vgs, vds, vbs):
    """Vectorised :meth:`Mosfet.ids` over any broadcastable shape.

    The batched kernel calls this with ``(B, n_devices)`` arrays — all
    lanes of all MOSFETs in one evaluation.  Every expression mirrors
    the scalar model's operation order exactly (IEEE sqrt/mul/add are
    deterministic), so each lane's result is bit-identical to the scalar
    evaluation at the same voltages.
    """
    vsb = -vbs
    arg = phi + np.maximum(vsb, 0.0)
    sq = np.sqrt(arg)
    vth = vto + gamma * (sq - sqrt_phi)
    vov = vgs - vth
    dvth_dvsb = np.where(gamma > 0.0, 0.5 * gamma / sq, 0.0)
    clm = 1.0 + lam * vds
    triode = vds < vov
    i_tri = beta * (vov - 0.5 * vds) * vds * clm
    gm_tri = beta * vds * clm
    gds_tri = beta * (vov - vds) * clm + beta * (
        vov - 0.5 * vds) * vds * lam
    i_sat = 0.5 * beta * vov * vov * clm
    gm_sat = beta * vov * clm
    gds_sat = 0.5 * beta * vov * vov * lam
    i = np.where(triode, i_tri, i_sat)
    gm = np.where(triode, gm_tri, gm_sat)
    gds = np.where(triode, gds_tri, gds_sat)
    gmb = gm * dvth_dvsb
    off = vov <= 0.0
    return (np.where(off, 0.0, i), np.where(off, 0.0, gm),
            np.where(off, 0.0, gds), np.where(off, 0.0, gmb))
