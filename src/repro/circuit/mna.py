"""Modified nodal analysis system assembly.

:class:`MNASystem` is a dense real (or complex, for AC) linear system
``G x = b`` that elements stamp themselves into.  Index -1 denotes the
ground node and is silently dropped by all stamping helpers, which keeps
element code free of ground special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .backend import phase_timer, scalar_backend


class SingularSystemError(np.linalg.LinAlgError):
    """Singular MNA system, annotated with the suspect unknowns.

    Subclasses ``numpy.linalg.LinAlgError`` so every Newton
    continuation ladder that catches the bare LAPACK error (the scalar
    ``dc._newton``, the batched kernel's per-lane retry) keeps working
    unchanged — but a failure that escapes all the way into a campaign
    failure record now names the offending nodes/branches instead of
    just saying "Singular matrix".
    """


@dataclass
class StampContext:
    """Analysis state passed to every element stamp.

    Attributes:
        mode: ``"dc"``, ``"tran"`` or ``"ac"``.
        time: current simulation time (seconds).
        dt: timestep for transient companion models (None in DC).
        x_prev: previous accepted solution (transient) or zeros.
        gmin: convergence conductance applied at MOSFET terminals.
        source_scale: scale factor for independent sources (source
            stepping continuation).
        method: integration method, ``"be"`` or ``"trap"``.
        cap_currents: per-capacitor branch currents from the previous
            accepted timepoint (trapezoidal integration state).
    """

    mode: str = "dc"
    time: float = 0.0
    dt: Optional[float] = None
    x_prev: Optional[np.ndarray] = None
    gmin: float = 0.0
    source_scale: float = 1.0
    method: str = "be"
    cap_currents: Dict[str, float] = field(default_factory=dict)


class MNASystem:
    """Dense MNA matrix with stamping helpers.

    Built from a :class:`repro.circuit.netlist.CompiledCircuit`; reused
    across Newton iterations via :meth:`reset`.
    """

    def __init__(self, compiled, dtype=float,
                 solver: str = "auto") -> None:
        self.compiled = compiled
        self.n = compiled.size
        self.dtype = dtype
        self.G = np.zeros((self.n, self.n), dtype=dtype)
        self.b = np.zeros(self.n, dtype=dtype)
        if dtype is complex:
            self.C = np.zeros((self.n, self.n), dtype=float)
        else:
            self.C = None
        self.backend = scalar_backend(solver)

    # -- index helpers -----------------------------------------------------

    def indices(self, nodes: Sequence[str]) -> List[int]:
        """Matrix indices for a list of node names (-1 for ground)."""
        return [self.compiled.index_of(n) for n in nodes]

    def branch(self, element_name: str) -> int:
        """Branch-current row for a voltage-source-like element."""
        return self.compiled.branch_index[element_name]

    @staticmethod
    def voltage(x: Optional[np.ndarray], i: int, j: int) -> float:
        """Voltage between matrix indices *i* and *j* in solution *x*."""
        if x is None:
            return 0.0
        vi = 0.0 if i < 0 else x[i]
        vj = 0.0 if j < 0 else x[j]
        return vi - vj

    # -- stamping helpers ---------------------------------------------------

    def reset(self) -> None:
        """Zero the matrix and RHS for a new assembly pass."""
        self.G[:] = 0.0
        self.b[:] = 0.0
        if self.C is not None:
            self.C[:] = 0.0

    def add_entry(self, row: int, col: int, value: float) -> None:
        """Raw matrix entry (ignored if either index is ground)."""
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        """Raw RHS entry (ignored for ground)."""
        if row >= 0:
            self.b[row] += value

    def add_conductance(self, i: int, j: int, g: float) -> None:
        """Two-terminal conductance between indices *i* and *j*."""
        if i >= 0:
            self.G[i, i] += g
        if j >= 0:
            self.G[j, j] += g
        if i >= 0 and j >= 0:
            self.G[i, j] -= g
            self.G[j, i] -= g

    def add_susceptance(self, i: int, j: int, c: float) -> None:
        """Two-terminal capacitance into the AC C matrix."""
        if self.C is None:
            raise RuntimeError("susceptance stamps require a complex system")
        if i >= 0:
            self.C[i, i] += c
        if j >= 0:
            self.C[j, j] += c
        if i >= 0 and j >= 0:
            self.C[i, j] -= c
            self.C[j, i] -= c

    def add_current(self, node: int, value: float) -> None:
        """Equivalent current *into* the node (companion-model source)."""
        if node >= 0:
            self.b[node] += value

    def add_transconductance(self, p: int, n: int, cp: int, cn: int,
                             g: float) -> None:
        """Current ``g * v(cp, cn)`` flowing out of *p* into *n*."""
        for row, sign_r in ((p, 1.0), (n, -1.0)):
            if row < 0:
                continue
            if cp >= 0:
                self.G[row, cp] += sign_r * g
            if cn >= 0:
                self.G[row, cn] -= sign_r * g

    # -- assembly ------------------------------------------------------------

    def assemble(self, circuit, x: Optional[np.ndarray],
                 ctx: StampContext) -> None:
        """Stamp every element for the given iterate and context."""
        with phase_timer("assemble"):
            self.reset()
            for el in circuit.elements:
                el.stamp(self, x, ctx)

    def assemble_ac(self, circuit, x_op: np.ndarray, omega: float,
                    ctx: StampContext) -> None:
        """Stamp the small-signal system at angular frequency *omega*."""
        self.reset()
        for el in circuit.elements:
            el.stamp_ac(self, x_op, ctx)
        self.G += 1j * omega * self.C

    def solve(self) -> np.ndarray:
        """Solve ``G x = b`` through the configured backend.

        Raises :class:`SingularSystemError` (a
        ``numpy.linalg.LinAlgError``) on singular systems, annotated
        with the node/branch names whose matrix rows vanished.
        """
        try:
            return self.backend.solve(self.G, self.b)
        except np.linalg.LinAlgError as exc:
            raise SingularSystemError(
                self._describe_singular()) from exc

    def _describe_singular(self) -> str:
        """Human-readable diagnosis of a singular assembled matrix.

        Names the unknowns whose rows are (numerically) all zero —
        typically a floating node behind an open-circuit fault or a
        degenerate source loop — so campaign failure records point at
        circuit topology instead of at LAPACK.
        """
        names: Dict[int, str] = {
            idx: f"node {name!r}"
            for name, idx in self.compiled.node_index.items()}
        names.update(
            (idx, f"branch {name!r}")
            for name, idx in self.compiled.branch_index.items())
        msg = f"singular MNA system ({self.n} unknowns)"
        if not self.n:
            return msg
        row_peak = np.abs(self.G).max(axis=1)
        floor = float(row_peak.max()) * 1e-15
        suspects = [names.get(int(i), f"unknown {int(i)}")
                    for i in np.flatnonzero(row_peak <= floor)]
        if suspects:
            shown = ", ".join(suspects[:8])
            if len(suspects) > 8:
                shown += f", ... ({len(suspects)} total)"
            msg += f"; vanished rows: {shown}"
        return msg
