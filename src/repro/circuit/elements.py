"""Linear and source circuit elements with MNA stamps.

Every element implements :meth:`stamp`, which adds its linearised
companion model into the MNA system for the current Newton iterate, and
optionally :meth:`stamp_ac` for small-signal analysis.  The stamp context
(:class:`repro.circuit.mna.StampContext`) carries the analysis mode,
timestep and previous solution, so elements themselves stay stateless.

Sign convention for branch currents (voltage sources): the unknown is the
current flowing *from the positive terminal through the source to the
negative terminal*.  A supply that is sourcing current therefore reports a
negative branch current, exactly as SPICE does; use
:func:`repro.circuit.transient.supply_current` for the load current.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

ValueOrWaveform = Union[float, "object"]


class BatchUnsupported(Exception):
    """This element (or lane combination) cannot be stamped batched.

    The batched kernel treats it as a soft failure and falls back to
    the scalar per-lane path.
    """


def _value_at(value: ValueOrWaveform, time: float) -> float:
    """Evaluate a constant or a waveform object at *time*."""
    if hasattr(value, "at"):
        return value.at(time)
    if callable(value):
        return value(time)
    return float(value)


def _batch_values(lanes) -> Callable[[float], np.ndarray]:
    """Per-lane source evaluator for the batched kernel.

    Constant sources are folded into one array up front; waveform lanes
    are evaluated per call through the very same :func:`_value_at` the
    scalar stamp uses, keeping the values bit-identical.
    """
    if all(not hasattr(lane.value, "at") and not callable(lane.value)
           for lane in lanes):
        const = np.array([float(lane.value) for lane in lanes])
        return lambda time: const
    return lambda time: np.array([lane.value_at(time) for lane in lanes])


class Element:
    """Base class: a named element with an ordered node list."""

    branches = 0

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        self.name = name
        self.nodes = list(nodes)

    def stamp(self, system, x, ctx) -> None:
        raise NotImplementedError

    def stamp_ac(self, system, x_op, ctx) -> None:
        """Default small-signal stamp: nothing (open circuit)."""

    # -- batched stamping --------------------------------------------------
    #
    # The batched transient kernel (:mod:`repro.circuit.batch`) runs B
    # structurally identical circuits in lockstep.  ``batch_slot`` is
    # called once per element position with the B per-lane sibling
    # elements and precomputes index tuples and per-lane parameter
    # arrays; ``stamp_batch`` is then called every Newton iteration with
    # the batched system, the (B, n) iterate and that slot.  Each
    # ``stamp_batch`` MUST perform per lane exactly the floating-point
    # operations of ``stamp`` in the same order — that is what makes
    # batched results bit-identical to the scalar path.

    def batch_slot(self, system, lanes) -> dict:
        raise BatchUnsupported(type(self).__name__)

    def stamp_batch(self, system, X, ctx, slot) -> None:
        raise BatchUnsupported(type(self).__name__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


class Resistor(Element):
    """Linear resistor.

    Args:
        name: unique element name.
        a, b: terminal nodes.
        resistance: ohms; must be > 0.
    """

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        super().__init__(name, [a, b])
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive, "
                             f"got {resistance}")
        self.resistance = float(resistance)

    def stamp(self, system, x, ctx) -> None:
        i, j = system.indices(self.nodes)
        system.add_conductance(i, j, 1.0 / self.resistance)

    def stamp_ac(self, system, x_op, ctx) -> None:
        i, j = system.indices(self.nodes)
        system.add_conductance(i, j, 1.0 / self.resistance)

    def batch_slot(self, system, lanes) -> dict:
        i, j = system.indices(self.nodes)
        return {"ij": (i, j),
                "g": np.array([1.0 / lane.resistance for lane in lanes])}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        i, j = slot["ij"]
        system.add_conductance(i, j, slot["g"])


class Capacitor(Element):
    """Linear capacitor.

    In DC it is an open circuit; in transient it stamps a backward-Euler
    (or trapezoidal) companion model using the previous accepted solution.
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float) -> None:
        super().__init__(name, [a, b])
        if capacitance < 0:
            raise ValueError(f"{name}: capacitance must be >= 0")
        self.capacitance = float(capacitance)

    def stamp(self, system, x, ctx) -> None:
        if ctx.mode != "tran" or ctx.dt is None or self.capacitance == 0.0:
            return
        i, j = system.indices(self.nodes)
        geq = self.capacitance / ctx.dt
        v_prev = system.voltage(ctx.x_prev, i, j)
        if ctx.method == "trap":
            geq *= 2.0
            i_prev = ctx.cap_currents.get(self.name, 0.0)
            ieq = geq * v_prev + i_prev
        else:
            ieq = geq * v_prev
        system.add_conductance(i, j, geq)
        system.add_current(i, ieq)
        system.add_current(j, -ieq)

    def charge_current(self, system, x_new, x_prev, ctx) -> float:
        """Capacitor current at the newly accepted timepoint (for trap)."""
        i, j = system.indices(self.nodes)
        v_new = system.voltage(x_new, i, j)
        v_prev = system.voltage(x_prev, i, j)
        if ctx.method == "trap":
            i_prev = ctx.cap_currents.get(self.name, 0.0)
            return (2.0 * self.capacitance / ctx.dt) * (v_new - v_prev) - i_prev
        return self.capacitance * (v_new - v_prev) / ctx.dt

    def stamp_ac(self, system, x_op, ctx) -> None:
        i, j = system.indices(self.nodes)
        system.add_susceptance(i, j, self.capacitance)

    def batch_slot(self, system, lanes) -> dict:
        i, j = system.indices(self.nodes)
        return {"ij": (i, j),
                "c": np.array([lane.capacitance for lane in lanes])}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        c = slot["c"]
        if ctx.mode != "tran" or ctx.dt is None or not c.any():
            return
        # Lanes with zero capacitance add exact zeros, matching the
        # scalar path's skip bit for bit (0.0 + ±0.0 == 0.0).
        i, j = slot["ij"]
        geq = c / ctx.dt
        v_prev = system.voltage(ctx.x_prev, i, j)
        if ctx.method == "trap":
            geq = geq * 2.0
            i_prev = ctx.cap_currents.get(self.name, 0.0)
            ieq = geq * v_prev + i_prev
        else:
            ieq = geq * v_prev
        system.add_conductance(i, j, geq)
        system.add_current(i, ieq)
        system.add_current(j, -ieq)

    def charge_current_batch(self, system, X_new, X_prev, ctx, slot):
        """Per-lane capacitor currents at the accepted timepoint."""
        i, j = slot["ij"]
        v_new = system.voltage(X_new, i, j)
        v_prev = system.voltage(X_prev, i, j)
        c = slot["c"]
        if ctx.method == "trap":
            i_prev = ctx.cap_currents.get(self.name, 0.0)
            return (2.0 * c / ctx.dt) * (v_new - v_prev) - i_prev
        return c * (v_new - v_prev) / ctx.dt


class VoltageSource(Element):
    """Independent voltage source; value may be a constant or waveform.

    Adds one branch-current unknown.  ``ac`` sets the small-signal
    magnitude used by AC analysis (default 0).
    """

    branches = 1

    def __init__(self, name: str, pos: str, neg: str,
                 value: ValueOrWaveform, ac: float = 0.0) -> None:
        super().__init__(name, [pos, neg])
        self.value = value
        self.ac = float(ac)

    def value_at(self, time: float) -> float:
        return _value_at(self.value, time)

    def stamp(self, system, x, ctx) -> None:
        p, n = system.indices(self.nodes)
        br = system.branch(self.name)
        system.add_entry(p, br, 1.0)
        system.add_entry(n, br, -1.0)
        system.add_entry(br, p, 1.0)
        system.add_entry(br, n, -1.0)
        v = self.value_at(ctx.time) * ctx.source_scale
        system.add_rhs(br, v)

    def stamp_ac(self, system, x_op, ctx) -> None:
        p, n = system.indices(self.nodes)
        br = system.branch(self.name)
        system.add_entry(p, br, 1.0)
        system.add_entry(n, br, -1.0)
        system.add_entry(br, p, 1.0)
        system.add_entry(br, n, -1.0)
        system.add_rhs(br, self.ac)

    def batch_slot(self, system, lanes) -> dict:
        p, n = system.indices(self.nodes)
        return {"pn": (p, n), "br": system.branch(self.name),
                "values": _batch_values(lanes)}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        p, n = slot["pn"]
        br = slot["br"]
        system.add_entry(p, br, 1.0)
        system.add_entry(n, br, -1.0)
        system.add_entry(br, p, 1.0)
        system.add_entry(br, n, -1.0)
        system.add_rhs(br, slot["values"](ctx.time) * ctx.source_scale)


class CurrentSource(Element):
    """Independent current source flowing from *pos* to *neg* externally.

    Positive value pushes current into the *neg* node (i.e. conventional
    SPICE polarity: current flows from ``pos`` through the source to
    ``neg``).
    """

    def __init__(self, name: str, pos: str, neg: str,
                 value: ValueOrWaveform, ac: float = 0.0) -> None:
        super().__init__(name, [pos, neg])
        self.value = value
        self.ac = float(ac)

    def value_at(self, time: float) -> float:
        return _value_at(self.value, time)

    def stamp(self, system, x, ctx) -> None:
        p, n = system.indices(self.nodes)
        i = self.value_at(ctx.time) * ctx.source_scale
        system.add_current(p, -i)
        system.add_current(n, i)

    def stamp_ac(self, system, x_op, ctx) -> None:
        p, n = system.indices(self.nodes)
        system.add_rhs(p, -self.ac)
        system.add_rhs(n, self.ac)

    def batch_slot(self, system, lanes) -> dict:
        p, n = system.indices(self.nodes)
        return {"pn": (p, n), "values": _batch_values(lanes)}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        p, n = slot["pn"]
        i = slot["values"](ctx.time) * ctx.source_scale
        system.add_current(p, -i)
        system.add_current(n, i)


class VCCS(Element):
    """Voltage-controlled current source: ``i(out) = gm * v(cp, cn)``."""

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gm: float) -> None:
        super().__init__(name, [out_pos, out_neg, ctrl_pos, ctrl_neg])
        self.gm = float(gm)

    def stamp(self, system, x, ctx) -> None:
        p, n, cp, cn = system.indices(self.nodes)
        system.add_transconductance(p, n, cp, cn, self.gm)

    def stamp_ac(self, system, x_op, ctx) -> None:
        p, n, cp, cn = system.indices(self.nodes)
        system.add_transconductance(p, n, cp, cn, self.gm)

    def batch_slot(self, system, lanes) -> dict:
        return {"idx": tuple(system.indices(self.nodes)),
                "gm": np.array([lane.gm for lane in lanes])}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        p, n, cp, cn = slot["idx"]
        system.add_transconductance(p, n, cp, cn, slot["gm"])


class VCVS(Element):
    """Voltage-controlled voltage source: ``v(out) = gain * v(cp, cn)``."""

    branches = 1

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> None:
        super().__init__(name, [out_pos, out_neg, ctrl_pos, ctrl_neg])
        self.gain = float(gain)

    def stamp(self, system, x, ctx) -> None:
        p, n, cp, cn = system.indices(self.nodes)
        br = system.branch(self.name)
        system.add_entry(p, br, 1.0)
        system.add_entry(n, br, -1.0)
        system.add_entry(br, p, 1.0)
        system.add_entry(br, n, -1.0)
        system.add_entry(br, cp, -self.gain)
        system.add_entry(br, cn, self.gain)

    stamp_ac = stamp

    def batch_slot(self, system, lanes) -> dict:
        return {"idx": tuple(system.indices(self.nodes)),
                "br": system.branch(self.name),
                "gain": np.array([lane.gain for lane in lanes])}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        p, n, cp, cn = slot["idx"]
        br = slot["br"]
        gain = slot["gain"]
        system.add_entry(p, br, 1.0)
        system.add_entry(n, br, -1.0)
        system.add_entry(br, p, 1.0)
        system.add_entry(br, n, -1.0)
        system.add_entry(br, cp, -gain)
        system.add_entry(br, cn, gain)


class Switch(Element):
    """Voltage-controlled switch: ``ron`` when v(ctrl) > vt else ``roff``.

    A smooth (logistic) transition keeps the Newton iteration stable.
    """

    def __init__(self, name: str, a: str, b: str, ctrl: str,
                 vt: float = 2.5, ron: float = 100.0,
                 roff: float = 1e9, sharpness: float = 20.0) -> None:
        super().__init__(name, [a, b, ctrl])
        self.vt = float(vt)
        self.ron = float(ron)
        self.roff = float(roff)
        self.sharpness = float(sharpness)

    def conductance(self, v_ctrl: float) -> float:
        """Smoothly interpolated conductance for a control voltage."""
        import math
        arg = self.sharpness * (v_ctrl - self.vt)
        arg = max(-60.0, min(60.0, arg))
        frac = 1.0 / (1.0 + math.exp(-arg))
        g_on = 1.0 / self.ron
        g_off = 1.0 / self.roff
        return g_off + (g_on - g_off) * frac

    def stamp(self, system, x, ctx) -> None:
        i, j, c = system.indices(self.nodes)
        v_ctrl = system.voltage(x, c, -1)
        system.add_conductance(i, j, self.conductance(v_ctrl))

    def stamp_ac(self, system, x_op, ctx) -> None:
        i, j, c = system.indices(self.nodes)
        v_ctrl = system.voltage(x_op, c, -1)
        system.add_conductance(i, j, self.conductance(v_ctrl))

    def batch_slot(self, system, lanes) -> dict:
        return {"idx": tuple(system.indices(self.nodes)),
                "lanes": list(lanes)}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        # The logistic uses math.exp, whose libm result is not
        # guaranteed bit-identical to numpy's vectorised exp — so each
        # lane evaluates through its own scalar conductance().
        i, j, c = slot["idx"]
        v_ctrl = system.voltage(X, c, -1)
        g = np.array([lane.conductance(float(v_ctrl[k]))
                      for k, lane in enumerate(slot["lanes"])])
        system.add_conductance(i, j, g)


class Diode(Element):
    """Junction diode with exponential law and internal limiting.

    Used for junction-pinhole fault models and ESD-style clamps.
    """

    def __init__(self, name: str, anode: str, cathode: str,
                 isat: float = 1e-14, n: float = 1.0) -> None:
        super().__init__(name, [anode, cathode])
        self.isat = float(isat)
        self.n = float(n)
        self.vt = 0.02585

    def _iv(self, vd: float):
        import math
        nvt = self.n * self.vt
        vd_lim = min(vd, 0.9)
        e = math.exp(vd_lim / nvt)
        i = self.isat * (e - 1.0)
        g = self.isat * e / nvt
        if vd > vd_lim:
            i += g * (vd - vd_lim)
        return i, max(g, 1e-12)

    def stamp(self, system, x, ctx) -> None:
        a, c = system.indices(self.nodes)
        vd = system.voltage(x, a, c)
        i, g = self._iv(vd)
        ieq = i - g * vd
        system.add_conductance(a, c, g)
        system.add_current(a, -ieq)
        system.add_current(c, ieq)

    def stamp_ac(self, system, x_op, ctx) -> None:
        a, c = system.indices(self.nodes)
        vd = system.voltage(x_op, a, c)
        _, g = self._iv(vd)
        system.add_conductance(a, c, g)

    def batch_slot(self, system, lanes) -> dict:
        a, c = system.indices(self.nodes)
        return {"ac": (a, c), "lanes": list(lanes)}

    def stamp_batch(self, system, X, ctx, slot) -> None:
        # Exponential via each lane's scalar _iv (math.exp) for bit
        # parity with the scalar stamp; see Switch.stamp_batch.
        a, c = slot["ac"]
        vd = system.voltage(X, a, c)
        lanes = slot["lanes"]
        iv = [lane._iv(float(vd[k])) for k, lane in enumerate(lanes)]
        i = np.array([pair[0] for pair in iv])
        g = np.array([pair[1] for pair in iv])
        ieq = i - g * vd
        system.add_conductance(a, c, g)
        system.add_current(a, -ieq)
        system.add_current(c, ieq)
