"""DC operating-point and sweep analysis.

Newton-Raphson iteration with voltage-step damping, falling back to gmin
stepping and then source stepping when the plain iteration fails — the
standard SPICE continuation ladder, which matters here because fault
injection produces badly conditioned circuits (0.2-ohm shorts across
supplies, floating gates behind opens) that must still converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .mna import MNASystem, StampContext
from .netlist import Circuit, CompiledCircuit


class ConvergenceError(Exception):
    """Newton iteration failed to converge after all continuation steps."""


#: voltage-step limit of the damped Newton iteration (volts).  The
#: batched kernel (:mod:`repro.circuit.batch`) replicates the scalar
#: iteration lane by lane, so both must read the same constants.
MAX_NEWTON_STEP = 1.0
#: convergence tolerance on the damped voltage step (volts)
NEWTON_VTOL = 1e-6
#: gmin continuation ladder tried when plain Newton fails (the final
#: step is always the caller's target gmin).  Shared with the batched
#: kernel's :func:`~repro.circuit.batch.operating_point_lanes`.
GMIN_LADDER = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10)
#: number of source-stepping continuation points (0.05 .. 1.0)
SOURCE_STEPS = 20
#: relaxed gmin ladder tried at each source step (plus the target gmin)
SOURCE_GMIN_LADDER = (1e-4, 1e-8)


@dataclass
class DCResult:
    """Solved DC operating point.

    Attributes:
        x: raw solution vector.
        compiled: index map used to interpret *x*.
    """

    x: np.ndarray
    compiled: CompiledCircuit

    def voltage(self, node: str) -> float:
        """Node voltage (0.0 for ground)."""
        idx = self.compiled.index_of(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def current(self, source_name: str) -> float:
        """Branch current of a voltage source (positive -> flows from the
        + terminal through the source to the - terminal)."""
        return float(self.x[self.compiled.branch_index[source_name]])

    def voltages(self) -> Dict[str, float]:
        """All node voltages by name."""
        return {node: float(self.x[idx])
                for node, idx in self.compiled.node_index.items()}


def _newton(circuit: Circuit, system: MNASystem, ctx: StampContext,
            x0: np.ndarray, max_iter: int = 120, vtol: float = NEWTON_VTOL,
            damping: float = 1.0) -> Optional[np.ndarray]:
    """One Newton-Raphson run; returns the solution or None."""
    x = x0.copy()
    for _ in range(max_iter):
        system.assemble(circuit, x, ctx)
        try:
            x_new = system.solve()
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x_new)):
            return None
        delta = x_new - x
        # Voltage-step limiting keeps exponential/square-law devices from
        # overshooting into non-physical regions.
        max_step = MAX_NEWTON_STEP
        scale = damping
        biggest = np.max(np.abs(delta)) if delta.size else 0.0
        if biggest > max_step:
            scale = min(scale, max_step / biggest)
        x = x + scale * delta
        if biggest * scale < vtol:
            return x
    return None


def operating_point(circuit: Circuit, x0: Optional[np.ndarray] = None,
                    gmin: float = 1e-12, time: float = 0.0,
                    max_iter: int = 120,
                    solver: str = "auto") -> DCResult:
    """Solve the DC operating point of *circuit*.

    Tries plain Newton first, then gmin stepping, then source stepping.

    Args:
        circuit: the netlist to solve.
        x0: optional initial guess (e.g. the previous timepoint).
        gmin: final gmin value left in the circuit.
        time: time at which time-varying sources are evaluated.
        solver: linear backend for the scalar system (see
            :func:`repro.circuit.backend.scalar_backend`).

    Raises:
        ConvergenceError: when every strategy fails.
    """
    compiled = circuit.compile()
    system = MNASystem(compiled, solver=solver)
    if x0 is None or len(x0) != compiled.size:
        x0 = np.zeros(compiled.size)

    # 1. plain Newton
    ctx = StampContext(mode="dc", time=time, gmin=gmin)
    x = _newton(circuit, system, ctx, x0, max_iter=max_iter)
    if x is not None:
        return DCResult(x=x, compiled=compiled)

    # 2. gmin stepping
    x_cont = x0.copy()
    ok = True
    for g in GMIN_LADDER + (gmin,):
        ctx = StampContext(mode="dc", time=time, gmin=g)
        x_next = _newton(circuit, system, ctx, x_cont, max_iter=max_iter)
        if x_next is None:
            ok = False
            break
        x_cont = x_next
    if ok:
        return DCResult(x=x_cont, compiled=compiled)

    # 3. source stepping (with a relaxed gmin ladder at each step)
    x_cont = np.zeros(compiled.size)
    for scale in np.linspace(0.05, 1.0, SOURCE_STEPS):
        solved = None
        for g in SOURCE_GMIN_LADDER + (gmin,):
            ctx = StampContext(mode="dc", time=time, gmin=g,
                               source_scale=float(scale))
            attempt = _newton(circuit, system, ctx, x_cont,
                              max_iter=max_iter, damping=0.7)
            if attempt is not None:
                solved = attempt
        if solved is None:
            raise ConvergenceError(
                f"source stepping failed at scale={scale:.2f} "
                f"for circuit {circuit.title!r}")
        x_cont = solved
    return DCResult(x=x_cont, compiled=compiled)


def dc_sweep(circuit: Circuit, source_name: str, values,
             gmin: float = 1e-12, solver: str = "auto"):
    """Sweep the value of a voltage/current source and solve at each point.

    Returns:
        List of :class:`DCResult`, one per sweep value, each solved with
        the previous solution as the initial guess.
    """
    results = []
    source = circuit.element(source_name)
    original = source.value
    x_prev: Optional[np.ndarray] = None
    try:
        for v in values:
            source.value = float(v)
            res = operating_point(circuit, x0=x_prev, gmin=gmin,
                                  solver=solver)
            results.append(res)
            x_prev = res.x
    finally:
        source.value = original
    return results
