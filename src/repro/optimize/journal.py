"""Crash-safe generation journal in the results store.

A search run owns the ``optimize/<run_id>/`` namespace of the
content-addressed store (:meth:`ResultsStore.put_json` /
:meth:`ResultsStore.get_json`):

* ``meta`` — the run's identity (base config, search knobs, macros);
  a resume refuses to continue a run whose identity changed.
* ``eval-<genome key>`` — every scored candidate, written the moment
  scoring finishes.  A search killed mid-generation re-derives the
  same offspring (the per-generation RNG is a pure function of
  (seed, generation)) and adopts these instead of re-scoring.
* ``gen-NNNNN`` — one record per *completed* generation: surviving
  population keys, front keys, hypervolume, fresh-simulation count.

Everything is enumerable without loading payloads via
:meth:`ResultsStore.iter_keys` — how ``optimize report`` lists a
run's progress and how a resume finds the last completed generation.
A search without a cache dir journals nothing (pure in-memory run).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..campaign import ResultsStore
from .evaluate import CandidateEvaluation


class GenerationJournal:
    """One run's journal inside a results store (or a no-op without
    one)."""

    def __init__(self, store: Optional[ResultsStore],
                 run_id: str) -> None:
        self.store = store
        self.run_id = run_id
        self.prefix = f"optimize/{run_id}"

    # -- meta --------------------------------------------------------------

    def load_meta(self) -> Optional[Dict]:
        if self.store is None:
            return None
        return self.store.get_json(f"{self.prefix}/meta")

    def save_meta(self, meta: Dict) -> None:
        if self.store is not None:
            self.store.put_json(f"{self.prefix}/meta", meta)

    # -- candidate evaluations ---------------------------------------------

    def record_evaluation(self,
                          evaluation: CandidateEvaluation) -> None:
        if self.store is not None:
            self.store.put_json(
                f"{self.prefix}/eval-{evaluation.genome.key()}",
                evaluation.to_dict())

    def load_evaluation(self, genome_key: str
                        ) -> Optional[CandidateEvaluation]:
        if self.store is None:
            return None
        payload = self.store.get_json(
            f"{self.prefix}/eval-{genome_key}")
        if payload is None:
            return None
        try:
            return CandidateEvaluation.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None  # torn/stale blob: costs a re-score, never a crash

    def evaluation_keys(self) -> List[str]:
        """Genome keys of every journaled evaluation (payloads not
        loaded — :meth:`ResultsStore.iter_keys` enumeration)."""
        if self.store is None:
            return []
        prefix = f"{self.prefix}/eval-"
        return [key[len(prefix):]
                for key in self.store.iter_keys(prefix)]

    # -- completed generations ---------------------------------------------

    def record_generation(self, generation: int,
                          payload: Dict) -> None:
        if self.store is not None:
            self.store.put_json(
                f"{self.prefix}/gen-{generation:05d}", payload)

    def load_generation(self, generation: int) -> Optional[Dict]:
        if self.store is None:
            return None
        return self.store.get_json(
            f"{self.prefix}/gen-{generation:05d}")

    def completed_generations(self) -> List[int]:
        """Indices of journaled generations, ascending."""
        if self.store is None:
            return []
        prefix = f"{self.prefix}/gen-"
        out = []
        for key in self.store.iter_keys(prefix):
            try:
                out.append(int(key[len(prefix):]))
            except ValueError:
                continue
        return sorted(out)
