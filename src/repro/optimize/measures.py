"""The optimizer's measurement universe and cost/area models.

Re-exports the measurement vocabulary owned by
:mod:`repro.testgen.optimize` (the deprecation shim keeps the types
where legacy callers import them) and adds what the search needs on
top: the full candidate universe in a canonical order, and the DfT
area-overhead model.

Area model: the redesigned flipflop and the re-ordered bias lines are
*design* changes, and their silicon cost cannot be read off the macro
layouts — the leakage-free flipflop actually synthesises slightly
smaller here, and the bias re-order is area-neutral by construction.
What the paper's designers paid was redesign margin: wider guard
spacing for the separated bias tracks and a conservatively sized
leakage-free pull path, replicated per comparator.  The constants
below model that as a fraction of the affected cells' measured areas
(values in ``docs/OPTIMIZE.md``); they make DfT a real objective the
search must justify with coverage or resolution, instead of a free
gene.
"""

from __future__ import annotations

from typing import Tuple

from ..faultsim.signatures import (PHASES, POLARITIES,
                                   SIGNATURE_QUANTITIES)
from ..testgen.optimize import (MISSING_CODE, Measure, TestPlan,
                                full_plan_cost, measurement_cost)

#: comparator instances in the flash converter (2^8 levels)
N_COMPARATORS = 256

#: modelled DfT area overheads in um^2 (see docs/OPTIMIZE.md):
#: 4% redesign margin on every comparator cell for the leakage-free
#: flipflop, 2% of the comparator column plus the biasgen for the
#: extra track spacing of the re-ordered bias lines
FLIPFLOP_REDESIGN_AREA = 0.04 * 39851.0 * N_COMPARATORS
BIAS_REORDER_AREA = 0.02 * (39851.0 * N_COMPARATORS + 3856.0)


def dft_area_overhead(flipflop_redesign: bool,
                      bias_line_reorder: bool) -> float:
    """Modelled silicon cost (um^2) of the selected DfT measures."""
    area = 0.0
    if flipflop_redesign:
        area += FLIPFLOP_REDESIGN_AREA
    if bias_line_reorder:
        area += BIAS_REORDER_AREA
    return area


def all_measurements() -> Tuple[Measure, ...]:
    """Every candidate measurement, canonically ordered.

    The missing-code test first, then the 24 current measurements in
    (quantity, phase, polarity) declaration order — the order the
    signature vector uses, so genome serializations stay stable.
    """
    current = tuple((q, p, lvl) for q in SIGNATURE_QUANTITIES
                    for p in PHASES for lvl in POLARITIES)
    return (MISSING_CODE,) + current


__all__ = [
    "MISSING_CODE", "Measure", "TestPlan", "all_measurements",
    "dft_area_overhead", "full_plan_cost", "measurement_cost",
    "BIAS_REORDER_AREA", "FLIPFLOP_REDESIGN_AREA", "N_COMPARATORS",
]
