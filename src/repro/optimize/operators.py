"""Seeded variation operators over :class:`PlanGenome`.

Every stochastic routine takes an explicit
:class:`numpy.random.Generator` — the PR 4 RNG contract: no module
state, no global seeding, so two searches started from the same seed
draw the identical variate stream and produce byte-identical fronts.
:func:`generation_rng` derives each generation's generator from
``(seed, generation)`` via a :class:`numpy.random.SeedSequence`, which
is what lets a resumed run re-enter generation *g* with the exact
stream the interrupted run used.

Campaign genes (DfT bits, dynamic test, probes, corners) mutate an
order of magnitude less often than schedule genes: flipping one
re-simulates a whole campaign, while re-ordering the schedule is
scored from cached records for free.  The low churn is what makes
warm generations mostly cache hits — the property
``bench_optimize.py`` gates.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from .genome import (BIG_PROBE_PALETTE, CORNER_PALETTE, PlanGenome,
                     SMALL_PROBE_PALETTE)
from .measures import Measure, all_measurements


@dataclasses.dataclass(frozen=True)
class MutationRates:
    """Per-gene-group mutation probabilities.

    Attributes:
        campaign: probability that *one* campaign gene mutates (one
            draw decides, then one gene is picked — so a mutation
            changes at most one campaign gene and the candidate's
            campaign key moves to a single neighbour).
        schedule_toggle: probability of adding or removing one
            measurement.
        schedule_swap: probability of swapping two schedule positions.
    """

    campaign: float = 0.15
    schedule_toggle: float = 0.6
    schedule_swap: float = 0.6


def generation_rng(seed: int, generation: int) -> np.random.Generator:
    """The deterministic RNG of one (run seed, generation) pair."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(seed),
                               spawn_key=(int(generation),)))


def _choice(rng: np.random.Generator, items: Sequence) -> object:
    return items[int(rng.integers(len(items)))]


def _step_palette(rng: np.random.Generator, palette: Sequence[float],
                  current: float) -> float:
    """Move one step up or down a palette (clamped at the ends)."""
    values = list(palette)
    if current in values:
        idx = values.index(current)
    else:  # off-palette base value: jump to the nearest entry
        idx = int(np.argmin([abs(v - current) for v in values]))
    step = -1 if rng.random() < 0.5 else 1
    return values[max(0, min(len(values) - 1, idx + step))]


def _mutate_campaign(genome: PlanGenome,
                     rng: np.random.Generator) -> PlanGenome:
    gene = _choice(rng, ("flipflop_redesign", "bias_line_reorder",
                         "dynamic_test", "big_probe", "small_probe",
                         "corners"))
    if gene == "flipflop_redesign":
        return dataclasses.replace(
            genome, flipflop_redesign=not genome.flipflop_redesign)
    if gene == "bias_line_reorder":
        return dataclasses.replace(
            genome, bias_line_reorder=not genome.bias_line_reorder)
    if gene == "dynamic_test":
        return dataclasses.replace(
            genome, dynamic_test=not genome.dynamic_test)
    if gene == "big_probe":
        return dataclasses.replace(
            genome, big_probe=_step_palette(rng, BIG_PROBE_PALETTE,
                                            genome.big_probe))
    if gene == "small_probe":
        return dataclasses.replace(
            genome, small_probe=_step_palette(rng, SMALL_PROBE_PALETTE,
                                              genome.small_probe))
    others = [c for c in CORNER_PALETTE if c != genome.corners]
    return dataclasses.replace(genome,
                               corners=str(_choice(rng, others)))


def _mutate_schedule(schedule: Tuple[Measure, ...],
                     rng: np.random.Generator,
                     rates: MutationRates) -> Tuple[Measure, ...]:
    out: List[Measure] = list(schedule)
    if rng.random() < rates.schedule_toggle:
        missing = [m for m in all_measurements() if m not in out]
        drop = len(out) > 1 and (not missing or rng.random() < 0.5)
        if drop:
            out.pop(int(rng.integers(len(out))))
        elif missing:
            measure = _choice(rng, missing)
            out.insert(int(rng.integers(len(out) + 1)), measure)
    if len(out) > 1 and rng.random() < rates.schedule_swap:
        i = int(rng.integers(len(out)))
        j = int(rng.integers(len(out)))
        out[i], out[j] = out[j], out[i]
    return tuple(out)


def mutate(genome: PlanGenome, rng: np.random.Generator,
           rates: MutationRates = MutationRates()) -> PlanGenome:
    """One mutation step; always returns a valid genome."""
    if rng.random() < rates.campaign:
        genome = _mutate_campaign(genome, rng)
    return dataclasses.replace(
        genome, schedule=_mutate_schedule(genome.schedule, rng, rates))


def crossover(a: PlanGenome, b: PlanGenome,
              rng: np.random.Generator) -> PlanGenome:
    """Uniform crossover on campaign genes, order-preserving merge on
    schedules.

    The child's schedule walks parent A's schedule then parent B's:
    a measurement both parents run is kept, one that a single parent
    runs survives a coin flip — relative order within each parent is
    preserved, so good orderings are inherited, not shredded.
    """
    pick = lambda x, y: x if rng.random() < 0.5 else y  # noqa: E731
    child: List[Measure] = []
    in_a, in_b = set(a.schedule), set(b.schedule)
    for measure in tuple(a.schedule) + tuple(b.schedule):
        if measure in child:
            continue
        if measure in in_a and measure in in_b:
            child.append(measure)
        elif rng.random() < 0.5:
            child.append(measure)
    if not child:  # both coin flips emptied the union: keep A's lead
        child = [a.schedule[0]]
    return PlanGenome(
        flipflop_redesign=pick(a, b).flipflop_redesign,
        bias_line_reorder=pick(a, b).bias_line_reorder,
        dynamic_test=pick(a, b).dynamic_test,
        big_probe=pick(a, b).big_probe,
        small_probe=pick(a, b).small_probe,
        corners=pick(a, b).corners,
        schedule=tuple(child))


def tournament(rng: np.random.Generator, ranks: np.ndarray,
               crowding: np.ndarray) -> int:
    """Binary tournament by (rank, crowding, index)."""
    n = len(ranks)
    i = int(rng.integers(n))
    j = int(rng.integers(n))
    key = lambda k: (ranks[k], -crowding[k], k)  # noqa: E731
    return i if key(i) <= key(j) else j
