"""``python -m repro optimize`` — run, resume, report.

Subcommands:

* ``run`` — seeded NSGA-II search over test-programme genomes.
  Prints the final Pareto front (knee point marked) and per-generation
  progress; ``--out`` writes the canonical front JSON, ``--metrics-out``
  the per-generation hypervolume / cache accounting, ``--cache-dir``
  turns every evaluation into a crash-safe journal entry and every
  repeated campaign into store hits.  ``--workers N`` fans fresh
  campaigns out over the distributed fabric.
* ``resume`` — continue an interrupted run from its journal
  (requires the same config; a finished run replays to the identical
  front without simulating anything).
* ``report`` — a journaled run's history and last front straight from
  the store, no simulation.

See ``docs/OPTIMIZE.md`` for the genome encoding and objectives.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..campaign import (CampaignOptions, DEFAULT_CACHE_DIR, EventBus,
                        GenerationCompleted, ResultsStore)
from ..core.path import PathConfig
from .journal import GenerationJournal
from .metrics import OptimizeMetricsCollector
from .operators import MutationRates
from .report import render_front, render_history
from .search import EvolutionarySearch, SearchConfig


def _add_campaign_arguments(p) -> None:
    p.add_argument("--defects", type=int, default=4000,
                   help="defect budget per candidate campaign "
                        "(default: %(default)s)")
    p.add_argument("--classes", type=int, default=8,
                   help="fault-class cap per macro "
                        "(default: %(default)s)")
    p.add_argument("--seed", type=int, default=1995,
                   help="campaign Monte Carlo seed (the defect "
                        "population; independent of --search-seed)")
    p.add_argument("--macros", nargs="*", default=["comparator"],
                   help="macros the candidate campaigns simulate")
    p.add_argument("--jobs", type=int, default=None,
                   help="local worker processes per campaign "
                        "(default: all cores)")
    p.add_argument("--cache-dir", default=None,
                   help="results-store root: caches fault-class "
                        "records across candidates AND journals the "
                        "run for resume (default: none; resume "
                        f"defaults to {DEFAULT_CACHE_DIR})")
    p.add_argument("--workers", type=int, default=0,
                   help="fan fresh campaigns out over N distributed "
                        "workers instead of the local pool")
    p.add_argument("--worker-mode", default="process",
                   choices=("process", "thread"),
                   help="distributed worker flavour")


def _add_search_arguments(p) -> None:
    p.add_argument("--population", type=int, default=12,
                   help="NSGA-II population size "
                        "(default: %(default)s)")
    p.add_argument("--generations", type=int, default=4,
                   help="breeding generations after the seeded "
                        "generation 0 (default: %(default)s)")
    p.add_argument("--search-seed", type=int, default=7,
                   help="evolutionary-search RNG seed; same seed => "
                        "byte-identical front (default: %(default)s)")
    p.add_argument("--crossover-rate", type=float, default=0.9,
                   help="probability an offspring is bred from two "
                        "parents (default: %(default)s)")
    p.add_argument("--campaign-mutation", type=float, default=None,
                   help="per-offspring probability of mutating a "
                        "campaign gene (DfT/probe/corner; default: "
                        "MutationRates.campaign)")
    p.add_argument("--run-id", default=None,
                   help="journal namespace (default: derived from "
                        "the search identity digest)")


def _add_output_arguments(p) -> None:
    p.add_argument("--out", default=None,
                   help="write the canonical front JSON here")
    p.add_argument("--metrics-out", default=None,
                   help="write search metrics JSON here "
                        "(per-generation hypervolume, cache "
                        "accounting, warm-reuse speedup)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-generation progress lines")


def _add_run(sub, name: str, help_text: str) -> None:
    p = sub.add_parser(name, help=help_text)
    _add_campaign_arguments(p)
    _add_search_arguments(p)
    _add_output_arguments(p)


def _add_report(sub) -> None:
    p = sub.add_parser("report", help="journaled run history from "
                                      "the store (no simulation)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="results-store root holding the journal "
                        "(default: %(default)s)")
    p.add_argument("--run-id", default=None,
                   help="run to report (default: the only journaled "
                        "run; required when several exist)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")


def _search(args, bus: EventBus) -> EvolutionarySearch:
    config = PathConfig(n_defects=args.defects,
                        max_classes=args.classes, seed=args.seed)
    rates = MutationRates()
    if args.campaign_mutation is not None:
        rates = MutationRates(campaign=args.campaign_mutation)
    search = SearchConfig(population=args.population,
                          generations=args.generations,
                          seed=args.search_seed,
                          crossover_rate=args.crossover_rate,
                          rates=rates, run_id=args.run_id)
    options = CampaignOptions(jobs=args.jobs,
                              cache_dir=args.cache_dir)
    return EvolutionarySearch(config, search, options,
                              macros=tuple(args.macros), bus=bus,
                              workers=args.workers,
                              worker_mode=args.worker_mode)


def _progress(event) -> None:
    if isinstance(event, GenerationCompleted):
        print(f"  generation {event.generation}: "
              f"{event.evaluated} evaluated, "
              f"{event.fresh_simulations} fresh simulations, "
              f"{event.store_hits} store hits, "
              f"front {event.front_size}, "
              f"hypervolume {event.hypervolume:.6g} "
              f"({event.wall:.1f}s)", file=sys.stderr)


def _run(args, resume: bool) -> int:
    bus = EventBus()
    collector = OptimizeMetricsCollector()
    bus.subscribe(collector)
    if not args.quiet:
        bus.subscribe(_progress)
    if resume and args.cache_dir is None:
        args.cache_dir = DEFAULT_CACHE_DIR
    search = _search(args, bus)
    if not args.quiet:
        print(f"optimize run {search.run_id()}: population "
              f"{args.population}, generations {args.generations}, "
              f"search seed {args.search_seed}", file=sys.stderr)
    try:
        result = search.run(resume=resume)
    except ValueError as exc:
        print(f"optimize error: {exc}", file=sys.stderr)
        return 1
    print(f"run {result.run_id} — final Pareto front:")
    print(render_front(result.front))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.front_json())
        print(f"front JSON written to {args.out}")
    if args.metrics_out:
        metrics = collector.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(metrics.as_dict(), fh, indent=2, sort_keys=True)
        print(f"metrics written to {args.metrics_out}")
    return 0


def _journaled_runs(store: ResultsStore) -> List[str]:
    runs = set()
    for key in store.iter_keys("optimize/"):
        parts = key.split("/")
        if len(parts) >= 3:
            runs.add(parts[1])
    return sorted(runs)


def _report(args) -> int:
    store = ResultsStore(args.cache_dir)
    run_id = args.run_id
    if run_id is None:
        runs = _journaled_runs(store)
        if not runs:
            print(f"no journaled optimize runs under "
                  f"{args.cache_dir}", file=sys.stderr)
            return 1
        if len(runs) > 1:
            print("several journaled runs — pick one with --run-id:",
                  file=sys.stderr)
            for rid in runs:
                print(f"  {rid}", file=sys.stderr)
            return 1
        run_id = runs[0]
    journal = GenerationJournal(store, run_id)
    done = journal.completed_generations()
    if not done:
        print(f"run {run_id}: no completed generations",
              file=sys.stderr)
        return 1
    payloads = [journal.load_generation(g) for g in done]
    payloads = [p for p in payloads if p is not None]
    if args.json:
        last = payloads[-1]
        front = [journal.load_evaluation(key) for key
                 in last.get("front", ())]
        print(json.dumps({
            "run_id": run_id,
            "generations": payloads,
            "front": [e.to_dict() for e in front if e is not None],
        }, indent=2, sort_keys=True))
        return 0
    print(f"run {run_id}: {len(payloads)} completed generations, "
          f"{len(journal.evaluation_keys())} journaled evaluations")
    print(render_history(payloads))
    last = payloads[-1]
    front = [journal.load_evaluation(key)
             for key in last.get("front", ())]
    front = [e for e in front if e is not None]
    if front:
        print("last journaled front:")
        print(render_front(front))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro optimize", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="subcommand", required=True)
    _add_run(sub, "run", "seeded NSGA-II search over test-programme "
                         "genomes")
    _add_run(sub, "resume", "continue an interrupted run from its "
                            "journal")
    _add_report(sub)
    args = parser.parse_args(argv)
    if args.subcommand == "report":
        return _report(args)
    return _run(args, resume=args.subcommand == "resume")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
