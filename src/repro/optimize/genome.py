"""The test-plan/DfT genome and its mapping onto campaign configs.

A :class:`PlanGenome` is everything a shippable test programme decides:
which DfT measures the design adopts, whether the at-speed dynamic
test runs, the comparator probe amplitudes, which corner set the spec
limits guardband for, and the ordered stimulus schedule (measurement
inclusion *and* ordering — ordering changes the expected
stop-on-first-fail test time, Pomeranz & Reddy's observation).

Genomes split into two gene groups with very different evaluation
costs:

* **campaign genes** (DfT bits, dynamic test, probes, corners) change
  the simulated fault universe — a new campaign, so a new set of
  content-addressed store keys.  Candidates sharing campaign genes
  share one campaign; repeats are pure cache hits.
* **schedule genes** (the ordered measurement tuple) are scored from
  the campaign's existing detection records and the compiled
  dictionary — no simulation at all.

The mutation operators keep campaign-gene churn low for exactly this
reason (see :mod:`repro.optimize.operators`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Tuple

from .measures import MISSING_CODE, Measure, all_measurements

#: probe palettes the search may pick from (volts); the defaults sit
#: mid-palette so generation 0 can move either way
BIG_PROBE_PALETTE = (0.05, 0.1, 0.2)
SMALL_PROBE_PALETTE = (4e-3, 8e-3, 16e-3)

#: corner sets a candidate may guardband for.  ``reduced`` is encoded
#: as PathConfig's default (corners=None) so its store keys are shared
#: with every non-optimizer campaign; ``full`` is excluded from the
#: search palette (27 corners per good-space sweep) but accepted on
#: deserialization.
CORNER_PALETTE = ("reduced", "typical")
_CORNER_NAMES = ("reduced", "typical", "full")


@dataclasses.dataclass(frozen=True)
class PlanGenome:
    """One candidate test programme.

    Attributes:
        flipflop_redesign: adopt the leakage-free flipflop DfT.
        bias_line_reorder: adopt the separated bias-line routing DfT.
        dynamic_test: run the at-speed missing-code test.
        big_probe: comparator above/below input offset (volts).
        small_probe: comparator offset-detection probe (volts).
        corners: named corner set the spec limits guardband for.
        schedule: ordered measurement tuple (inclusion + ordering).
    """

    flipflop_redesign: bool = False
    bias_line_reorder: bool = False
    dynamic_test: bool = False
    big_probe: float = 0.1
    small_probe: float = 8e-3
    corners: str = "reduced"
    schedule: Tuple[Measure, ...] = ()

    def __post_init__(self) -> None:
        if self.corners not in _CORNER_NAMES:
            raise ValueError(f"unknown corner set {self.corners!r}")
        if not self.schedule:
            raise ValueError("genome schedule must not be empty")
        universe = set(all_measurements())
        seen = set()
        for measure in self.schedule:
            if measure not in universe:
                raise ValueError(f"unknown measurement {measure!r}")
            if measure in seen:
                raise ValueError(f"duplicate measurement {measure!r}")
            seen.add(measure)

    # -- identity ----------------------------------------------------------

    def campaign_genes(self) -> Dict:
        """The genes that change what gets simulated."""
        return {
            "flipflop_redesign": self.flipflop_redesign,
            "bias_line_reorder": self.bias_line_reorder,
            "dynamic_test": self.dynamic_test,
            "big_probe": repr(self.big_probe),
            "small_probe": repr(self.small_probe),
            "corners": self.corners,
        }

    def campaign_key(self) -> str:
        """Digest over the campaign genes alone — candidates sharing
        it share one campaign (and its store entries)."""
        blob = json.dumps(self.campaign_genes(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def key(self) -> str:
        """Digest identifying the whole genome."""
        payload = {"campaign": self.campaign_genes(),
                   "schedule": [list(m) for m in self.schedule]}
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "flipflop_redesign": self.flipflop_redesign,
            "bias_line_reorder": self.bias_line_reorder,
            "dynamic_test": self.dynamic_test,
            "big_probe": self.big_probe,
            "small_probe": self.small_probe,
            "corners": self.corners,
            "schedule": [list(m) for m in self.schedule],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PlanGenome":
        return cls(
            flipflop_redesign=bool(data.get("flipflop_redesign",
                                            False)),
            bias_line_reorder=bool(data.get("bias_line_reorder",
                                            False)),
            dynamic_test=bool(data.get("dynamic_test", False)),
            big_probe=float(data.get("big_probe", 0.1)),
            small_probe=float(data.get("small_probe", 8e-3)),
            corners=str(data.get("corners", "reduced")),
            schedule=tuple(tuple(m) for m in data["schedule"]))

    # -- compilation -------------------------------------------------------

    def path_config(self, base) -> "object":
        """Compile the campaign genes onto a base
        :class:`~repro.core.path.PathConfig`.

        Only deltas are applied, so candidates with default campaign
        genes share content keys — and so store entries — with plain
        (non-optimizer) campaigns of the same base config.
        """
        # lazy: repro.core.path imports repro.testgen, which the
        # measurement re-exports already touch — keep the module
        # import graph acyclic
        from ..adc.process import corner_set
        from ..testgen.dft import DfTConfig

        corners = None if self.corners == "reduced" \
            else tuple(corner_set(self.corners))
        return dataclasses.replace(
            base,
            dft=DfTConfig(flipflop_redesign=self.flipflop_redesign,
                          bias_line_reorder=self.bias_line_reorder),
            dynamic_test=self.dynamic_test,
            big_probe=self.big_probe,
            small_probe=self.small_probe,
            corners=corners)

    def describe(self) -> str:
        """One-line human summary of the genome."""
        genes = []
        if self.flipflop_redesign:
            genes.append("ff-redesign")
        if self.bias_line_reorder:
            genes.append("bias-reorder")
        if self.dynamic_test:
            genes.append("dynamic")
        dft = "+".join(genes) if genes else "no-dft"
        named = ["missing-code" if m == MISSING_CODE
                 else f"{m[0]}/{m[1][:3]}/{m[2][0]}"
                 for m in self.schedule]
        return (f"{dft} corners={self.corners} "
                f"probes={self.big_probe:g}/{self.small_probe:g} "
                f"schedule[{len(self.schedule)}]: " + " ".join(named))
