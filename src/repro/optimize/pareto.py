"""NSGA-II primitives: non-dominated sorting, crowding, hypervolume.

Everything here operates on *minimization* objective vectors — plain
tuples/arrays of floats where smaller is better.  Callers negate
maximized quantities (coverage, resolution) before ranking; see
:meth:`repro.optimize.evaluate.ObjectiveVector.minimize`.

All routines are deterministic: fronts list member indices in
ascending order, crowding ties break toward the lower index, and the
hypervolume recursion slices points in sorted order.  Two processes
ranking the same population therefore produce byte-identical
selections — the property the optimizer's same-seed reproducibility
contract rests on.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization):
    no worse everywhere and strictly better somewhere."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("objective vectors must have equal length")
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_sort(points: Sequence[Sequence[float]]
                       ) -> List[List[int]]:
    """Deb's fast non-dominated sort.

    Returns fronts of point indices: ``fronts[0]`` is the Pareto
    front, ``fronts[1]`` the front once ``fronts[0]`` is removed, and
    so on.  Indices within a front are ascending.
    """
    P = np.asarray(points, dtype=float)
    n = len(P)
    if n == 0:
        return []
    # pairwise domination matrix: dom[i, j] = i dominates j
    le = np.all(P[:, None, :] <= P[None, :, :], axis=2)
    lt = np.any(P[:, None, :] < P[None, :, :], axis=2)
    dom = le & lt
    dominated_count = dom.sum(axis=0)
    fronts: List[List[int]] = []
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        current = np.flatnonzero(remaining & (dominated_count == 0))
        if current.size == 0:  # defensive: ties cannot starve
            current = np.flatnonzero(remaining)
        fronts.append([int(i) for i in current])
        remaining[current] = False
        dominated_count = dominated_count - \
            dom[current].sum(axis=0)
    return fronts


def crowding_distance(points: Sequence[Sequence[float]],
                      front: Sequence[int]) -> np.ndarray:
    """Crowding distance of each front member (same order as
    ``front``).

    Boundary points per objective get ``inf``; interior points sum the
    normalised gaps to their neighbours.  Objectives with zero range
    contribute nothing (every member is a tie there).
    """
    P = np.asarray(points, dtype=float)
    idx = np.asarray(list(front), dtype=int)
    m = len(idx)
    if m == 0:
        return np.zeros(0)
    distance = np.zeros(m)
    if m <= 2:
        distance[:] = np.inf
        return distance
    for obj in range(P.shape[1]):
        values = P[idx, obj]
        # stable sort => equal values keep ascending-index order,
        # making boundary assignment deterministic under ties
        order = np.argsort(values, kind="stable")
        spread = values[order[-1]] - values[order[0]]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if spread <= 0:
            continue
        gaps = (values[order[2:]] - values[order[:-2]]) / spread
        interior = order[1:-1]
        finite = ~np.isinf(distance[interior])
        distance[interior[finite]] += gaps[finite]
    return distance


def nsga_rank(points: Sequence[Sequence[float]]
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point (front rank, crowding distance) arrays."""
    n = len(points)
    ranks = np.zeros(n, dtype=int)
    crowding = np.zeros(n)
    for rank, front in enumerate(non_dominated_sort(points)):
        ranks[front] = rank
        crowding[front] = crowding_distance(points, front)
    return ranks, crowding


def nsga_select(points: Sequence[Sequence[float]],
                k: int) -> List[int]:
    """Elitist NSGA-II environmental selection: the ``k`` indices
    surviving by (front rank, crowding distance, index).

    Whole fronts are taken in rank order; the front that overflows
    ``k`` is truncated by descending crowding distance with the lower
    index winning exact ties — fully deterministic.
    """
    n = len(points)
    if k >= n:
        return list(range(n))
    ranks, crowding = nsga_rank(points)
    order = sorted(range(n), key=lambda i: (ranks[i], -crowding[i], i))
    return sorted(order[:k])


def hypervolume(points: Sequence[Sequence[float]],
                reference: Sequence[float]) -> float:
    """Dominated hypervolume (minimization) against ``reference``.

    Recursive dimension-sweep (HSO): exact for the optimizer's 4-D
    fronts, deterministic, O(n log n) per slice.  Points not strictly
    better than the reference in every objective contribute nothing.
    A growing value across generations means the front is advancing.
    """
    ref = np.asarray(reference, dtype=float)
    P = np.asarray(points, dtype=float)
    if P.size == 0:
        return 0.0
    if P.ndim != 2 or P.shape[1] != ref.shape[0]:
        raise ValueError("points and reference dimensions disagree")
    P = P[np.all(P < ref, axis=1)]
    if len(P) == 0:
        return 0.0
    # keep only the non-dominated subset — dominated points change
    # nothing and the recursion gets cheaper
    fronts = non_dominated_sort(P)
    P = P[fronts[0]]
    # plain-float tuples: the result must be JSON-able (the journal
    # stores it) and independent of numpy scalar types
    return float(_hv(sorted(tuple(row) for row in P.tolist()),
                     tuple(ref.tolist())))


def _hv(points: List[Tuple[float, ...]], ref: Tuple[float, ...]
        ) -> float:
    if not points:
        return 0.0
    if len(ref) == 1:
        return ref[0] - min(p[0] for p in points)
    # sweep the first objective: between consecutive distinct values,
    # the dominated area in the remaining objectives is the (d-1)-dim
    # hypervolume of the points already passed
    volume = 0.0
    active: List[Tuple[float, ...]] = []
    ordered = sorted(points)
    for i, point in enumerate(ordered):
        upper = ordered[i + 1][0] if i + 1 < len(ordered) else ref[0]
        active.append(point[1:])
        width = upper - point[0]
        if width > 0:
            volume += width * _hv(active, ref[1:])
    return volume
