"""Candidate evaluation through the campaign pipeline.

A genome's campaign genes compile onto the base
:class:`~repro.core.path.PathConfig` and run through
:class:`~repro.campaign.runner.CampaignRunner` — so every fault-class
simulation is resolved against the content-addressed store first, and
a candidate whose campaign was seen in *any* earlier run (this
generation, a previous generation, a previous search, a plain
``python -m repro campaign``) costs zero fresh simulations.  Within
one evaluator the scored campaign is additionally memoized by the
genome's campaign key, so schedule-only variants — the bulk of every
generation — are scored from the cached detection records and the
compiled dictionary without touching the runner at all.

Objectives (all computed from deterministic records, so evaluation is
reproducible bit-for-bit):

* **coverage** — weighted fraction of the candidate campaign's fault
  population its schedule detects (maximize);
* **test_time** — expected per-device tester seconds under
  stop-on-first-fail: good devices pay the whole schedule, faulty
  devices stop at the first detecting measurement (ordering matters —
  Pomeranz & Reddy's fault-ordering observation), weighted by
  :data:`YIELD_LOSS` (minimize);
* **dft_area** — modelled silicon cost of the adopted DfT measures
  (minimize; see :mod:`repro.optimize.measures`);
* **resolution** — expected diagnostic resolution of the schedule
  under the campaign's compiled fault dictionary (maximize; see
  ``docs/DIAGNOSIS.md``).

Setting ``workers=N`` fans each fresh campaign out across the PR 5
coordinator/worker fabric instead of the local pool — the merge is
byte-identical, so objectives (and fronts) don't depend on where the
simulations ran.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..campaign import (CampaignOptions, CampaignResult, CampaignRunner,
                        CandidateEvaluated, EventBus)
from ..core.path import PathConfig, PathResult
from .genome import PlanGenome
from .measures import (MISSING_CODE, Measure, dft_area_overhead,
                       full_plan_cost, measurement_cost)

#: fraction of devices assumed faulty when weighting the
#: stop-on-first-fail term of the test-time objective (the paper's
#: process-quality regime; documented in docs/OPTIMIZE.md)
YIELD_LOSS = 0.05

#: hypervolume reference point in minimize space
#: (-coverage, test_time, dft_area, -resolution): a candidate scores
#: volume only where it beats "covers nothing, costs twice the full
#: menu, adopts every DfT measure and resolves nothing"
REFERENCE_POINT = (0.0, 2.0 * full_plan_cost(),
                   dft_area_overhead(True, True) + 1.0, 0.0)


@dataclasses.dataclass(frozen=True)
class ObjectiveVector:
    """One candidate's scores (natural units, not minimize space)."""

    coverage: float
    test_time: float
    dft_area: float
    resolution: float

    def minimize(self) -> Tuple[float, float, float, float]:
        """The NSGA-II minimization tuple (maximized objectives
        negated)."""
        return (-self.coverage, self.test_time, self.dft_area,
                -self.resolution)

    def to_dict(self) -> Dict:
        return {"coverage": self.coverage,
                "test_time": self.test_time,
                "dft_area": self.dft_area,
                "resolution": self.resolution}

    @classmethod
    def from_dict(cls, data: Dict) -> "ObjectiveVector":
        return cls(coverage=float(data["coverage"]),
                   test_time=float(data["test_time"]),
                   dft_area=float(data["dft_area"]),
                   resolution=float(data["resolution"]))


@dataclasses.dataclass(frozen=True)
class CandidateEvaluation:
    """A scored genome.

    Attributes:
        genome: the candidate.
        objectives: its scores.
        source: ``"computed"`` / ``"memo"`` / ``"journal"`` (see
            :class:`~repro.campaign.events.CandidateEvaluated`).
        fresh_simulations: fault classes simulated for it.
        store_hits: fault classes served from the results store.
        fingerprint: the underlying campaign's fingerprint.
        wall: evaluation wall seconds.
    """

    genome: PlanGenome
    objectives: ObjectiveVector
    source: str = "computed"
    fresh_simulations: int = 0
    store_hits: int = 0
    fingerprint: str = ""
    wall: float = 0.0

    def to_dict(self) -> Dict:
        return {"genome": self.genome.to_dict(),
                "objectives": self.objectives.to_dict(),
                "source": self.source,
                "fresh_simulations": self.fresh_simulations,
                "store_hits": self.store_hits,
                "fingerprint": self.fingerprint,
                "wall": self.wall}

    @classmethod
    def from_dict(cls, data: Dict) -> "CandidateEvaluation":
        return cls(
            genome=PlanGenome.from_dict(data["genome"]),
            objectives=ObjectiveVector.from_dict(data["objectives"]),
            source=str(data.get("source", "journal")),
            fresh_simulations=int(data.get("fresh_simulations", 0)),
            store_hits=int(data.get("store_hits", 0)),
            fingerprint=str(data.get("fingerprint", "")),
            wall=float(data.get("wall", 0.0)))


#: (normalized weight, detecting measurements) per fault class
ClassTable = Tuple[Tuple[float, FrozenSet[Measure]], ...]


def class_table(result: PathResult,
                macros: Sequence[str]) -> ClassTable:
    """Flatten a path result into (weight, detections) rows.

    Weights are area-and-yield scaled across macros (each macro's
    share is proportional to its
    :attr:`~repro.macrotest.coverage.MacroResult.weight`) and
    normalized to sum to 1 over the whole fault population, so
    coverage and expected-time sums read directly as fractions.
    """
    parts = []
    for name in macros:
        analysis = result.macros.get(name)
        if analysis is None:
            continue
        for macro_result in (analysis.result, analysis.noncat_result):
            if macro_result is None or not macro_result.records:
                continue
            parts.append(macro_result)
    total_weight = sum(p.weight for p in parts)
    if total_weight <= 0:
        raise ValueError("campaign produced no weighted fault classes")
    rows = []
    for part in parts:
        total = part.total_faults
        if total <= 0:
            continue
        share = part.weight / total_weight
        for record in part.records:
            detections = set(record.violated_keys)
            if record.voltage_detected:
                detections.add(MISSING_CODE)
            rows.append((share * record.count / total,
                         frozenset(detections)))
    return tuple(rows)


def schedule_objectives(schedule: Sequence[Measure],
                        table: ClassTable,
                        yield_loss: float = YIELD_LOSS
                        ) -> Tuple[float, float]:
    """(coverage, expected test time) of one schedule over a table."""
    costs = [measurement_cost(m) for m in schedule]
    cumulative = []
    acc = 0.0
    for cost in costs:
        acc += cost
        cumulative.append(acc)
    full = acc
    position = {m: i for i, m in enumerate(schedule)}
    coverage = 0.0
    faulty_time = 0.0
    for weight, detections in table:
        hit = [position[m] for m in detections if m in position]
        if hit:
            coverage += weight
            faulty_time += weight * cumulative[min(hit)]
        else:
            faulty_time += weight * full
    return coverage, (1.0 - yield_loss) * full + \
        yield_loss * faulty_time


@dataclasses.dataclass
class _CampaignScore:
    """Everything cached per campaign key."""

    campaign: CampaignResult
    dictionary: "object"  # FaultDictionary (lazy import domain)
    table: ClassTable
    fresh_simulations: int
    store_hits: int


class CampaignEvaluator:
    """Scores genomes, memoizing the expensive campaign half.

    One evaluator instance serves a whole search: campaigns are keyed
    by the genome's campaign genes, so only the first candidate of
    each (DfT, dynamic-test, probe, corner) combination pays for
    simulation — and even that first one resolves class-by-class
    against the content-addressed store.
    """

    def __init__(self, base_config: Optional[PathConfig] = None,
                 options: Optional[CampaignOptions] = None,
                 macros: Sequence[str] = ("comparator",),
                 bus: Optional[EventBus] = None,
                 workers: int = 0, worker_mode: str = "process",
                 yield_loss: float = YIELD_LOSS) -> None:
        self.base_config = base_config or PathConfig()
        self.options = options or CampaignOptions()
        self.macros = tuple(macros)
        self.bus = bus or EventBus()
        self.workers = int(workers)
        self.worker_mode = worker_mode
        self.yield_loss = yield_loss
        self._campaigns: Dict[str, _CampaignScore] = {}

    # -- campaign half -----------------------------------------------------

    def _run_campaign(self, config: PathConfig) -> CampaignResult:
        bus = EventBus()
        if self.workers > 0:
            from ..campaign.distributed import Coordinator
            coordinator = Coordinator(config, self.options, bus=bus,
                                      macros=list(self.macros))
            return coordinator.run(workers=self.workers,
                                   worker_mode=self.worker_mode)
        runner = CampaignRunner(config, self.options, bus=bus)
        return runner.run(macros=list(self.macros))

    def _campaign_score(self, genome: PlanGenome
                        ) -> Tuple[_CampaignScore, str]:
        key = genome.campaign_key()
        cached = self._campaigns.get(key)
        if cached is not None:
            return cached, "memo"
        from ..diagnosis import dictionary_for_campaign
        config = genome.path_config(self.base_config)
        campaign = self._run_campaign(config)
        metrics = campaign.metrics
        dictionary = dictionary_for_campaign(campaign, self.options,
                                             EventBus())
        score = _CampaignScore(
            campaign=campaign, dictionary=dictionary,
            table=class_table(campaign.path_result, self.macros),
            fresh_simulations=int(getattr(metrics, "computed", 0)),
            store_hits=int(getattr(metrics, "cache_hits", 0) +
                           getattr(metrics, "journal_hits", 0)))
        self._campaigns[key] = score
        return score, "computed"

    def base_result(self) -> PathResult:
        """The base (default-campaign-genes) path result — what the
        fixed-menu seeding reads its records and escapes from.  The
        campaign is memoized under the default campaign key, so every
        generation-0 candidate with default genes reuses it."""
        score, _ = self._campaign_score(
            PlanGenome(schedule=(MISSING_CODE,)))
        return score.campaign.path_result

    # -- scoring half ------------------------------------------------------

    def objectives_for(self, genome: PlanGenome,
                       score: _CampaignScore) -> ObjectiveVector:
        from ..diagnosis import expected_resolution
        coverage, test_time = schedule_objectives(
            genome.schedule, score.table, yield_loss=self.yield_loss)
        resolution = expected_resolution(
            score.dictionary,
            measurements=list(genome.schedule)).resolution
        return ObjectiveVector(
            coverage=coverage, test_time=test_time,
            dft_area=dft_area_overhead(genome.flipflop_redesign,
                                       genome.bias_line_reorder),
            resolution=resolution)

    def evaluate(self, genome: PlanGenome,
                 generation: int = 0) -> CandidateEvaluation:
        started = time.perf_counter()
        score, source = self._campaign_score(genome)
        objectives = self.objectives_for(genome, score)
        fresh = score.fresh_simulations if source == "computed" else 0
        hits = score.store_hits if source == "computed" else 0
        evaluation = CandidateEvaluation(
            genome=genome, objectives=objectives, source=source,
            fresh_simulations=fresh, store_hits=hits,
            fingerprint=score.campaign.fingerprint,
            wall=time.perf_counter() - started)
        self.bus.emit(CandidateEvaluated(
            generation=generation, key=genome.key(), source=source,
            fresh_simulations=fresh, store_hits=hits,
            wall=evaluation.wall, objectives=objectives.to_dict()))
        return evaluation
