"""Search metrics: per-generation hypervolume and cache accounting.

The event-bus pattern every subsystem here uses: the search emits
typed events (:class:`~repro.campaign.events.CandidateEvaluated`,
:class:`~repro.campaign.events.GenerationCompleted`), the collector
folds them into one thread-safe snapshot, and ``--metrics-out``
serialises the snapshot.  The headline number is
:attr:`OptimizeMetrics.warm_reuse_speedup` — generation 0's fresh
simulations over the warm-generation mean, the store-economy ratio
``bench_optimize.py`` gates at >= 5x.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..campaign.events import (CampaignEvent, CandidateEvaluated,
                               GenerationCompleted)


@dataclass(frozen=True)
class GenerationStats:
    """One generation's accounting (mirrors
    :class:`~repro.campaign.events.GenerationCompleted`)."""

    generation: int
    evaluated: int
    fresh_simulations: int
    store_hits: int
    front_size: int
    hypervolume: float
    wall: float

    def as_dict(self) -> Dict:
        return {"generation": self.generation,
                "evaluated": self.evaluated,
                "fresh_simulations": self.fresh_simulations,
                "store_hits": self.store_hits,
                "front_size": self.front_size,
                "hypervolume": self.hypervolume,
                "wall": self.wall}


@dataclass(frozen=True)
class OptimizeMetrics:
    """Aggregated accounting of one evolutionary search."""

    candidates: int = 0
    computed: int = 0
    memo_hits: int = 0
    journal_hits: int = 0
    fresh_simulations: int = 0
    store_hits: int = 0
    wall_time: float = 0.0
    generations: Tuple[GenerationStats, ...] = ()

    @property
    def warm_reuse_speedup(self) -> float:
        """Generation-0 fresh simulations over the warm-generation
        mean; 0.0 until a warm generation exists.  A warm generation
        that needed *zero* fresh simulations counts as the full
        gen-0 figure (pure reuse — no meaningful ratio exists)."""
        if len(self.generations) < 2:
            return 0.0
        cold = self.generations[0].fresh_simulations
        warm = [g.fresh_simulations for g in self.generations[1:]]
        mean_warm = sum(warm) / len(warm)
        if cold <= 0:
            return 0.0
        if mean_warm <= 0:
            return float(cold)
        return cold / mean_warm

    @property
    def hypervolume_trajectory(self) -> Tuple[float, ...]:
        return tuple(g.hypervolume for g in self.generations)

    def as_dict(self) -> Dict:
        return {
            "candidates": self.candidates,
            "computed": self.computed,
            "memo_hits": self.memo_hits,
            "journal_hits": self.journal_hits,
            "fresh_simulations": self.fresh_simulations,
            "store_hits": self.store_hits,
            "wall_time": self.wall_time,
            "warm_reuse_speedup": self.warm_reuse_speedup,
            "hypervolume_trajectory":
                list(self.hypervolume_trajectory),
            "generations": [g.as_dict() for g in self.generations],
        }


class OptimizeMetricsCollector:
    """EventBus subscriber folding optimizer events into
    :class:`OptimizeMetrics`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._candidates = 0
        self._computed = 0
        self._memo = 0
        self._journal = 0
        self._fresh = 0
        self._store_hits = 0
        self._wall = 0.0
        self._generations: List[GenerationStats] = []

    def __call__(self, event: CampaignEvent) -> None:
        with self._lock:
            if isinstance(event, CandidateEvaluated):
                self._candidates += 1
                self._fresh += event.fresh_simulations
                self._store_hits += event.store_hits
                self._wall += event.wall
                if event.source == "computed":
                    self._computed += 1
                elif event.source == "journal":
                    self._journal += 1
                else:
                    self._memo += 1
            elif isinstance(event, GenerationCompleted):
                self._generations.append(GenerationStats(
                    generation=event.generation,
                    evaluated=event.evaluated,
                    fresh_simulations=event.fresh_simulations,
                    store_hits=event.store_hits,
                    front_size=event.front_size,
                    hypervolume=event.hypervolume,
                    wall=event.wall))

    def snapshot(self) -> OptimizeMetrics:
        with self._lock:
            return OptimizeMetrics(
                candidates=self._candidates, computed=self._computed,
                memo_hits=self._memo, journal_hits=self._journal,
                fresh_simulations=self._fresh,
                store_hits=self._store_hits, wall_time=self._wall,
                generations=tuple(self._generations))
