"""The deterministic, seeded NSGA-II search loop.

(mu + lambda) elitism: each generation breeds ``population`` offspring
from the survivors by binary tournament, crossover and mutation,
scores them through the :class:`~repro.optimize.evaluate
.CampaignEvaluator`, and keeps the best ``population`` of
parents + offspring by (front rank, crowding distance).

Determinism contract — two runs with the same seed produce
byte-identical fronts:

* generation *g*'s RNG is ``generation_rng(seed, g)`` — a pure
  function, no state carried between generations, nothing drawn
  outside the operators;
* every Pareto routine breaks ties by index (see
  :mod:`repro.optimize.pareto`);
* objectives are computed from deterministic detection records, so a
  candidate's scores don't depend on where (or whether) its campaign
  was simulated — a cache hit scores identically to a fresh run.

The same property powers resume: a killed run's journal holds every
completed generation's surviving population and every scored
candidate.  :meth:`EvolutionarySearch.resume` rebuilds the population
from the last ``gen-`` record, re-derives the interrupted
generation's offspring from the identical RNG stream, adopts the
``eval-`` blobs already journaled and scores only what's missing —
landing on the exact front the uninterrupted run would have produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import (CampaignOptions, CandidateEvaluated, EventBus,
                        GenerationCompleted, ResultsStore)
from ..core.path import PathConfig
from .evaluate import (REFERENCE_POINT, CampaignEvaluator,
                       CandidateEvaluation)
from .genome import PlanGenome
from .journal import GenerationJournal
from .operators import (MutationRates, crossover, generation_rng,
                        mutate, tournament)
from .pareto import hypervolume, non_dominated_sort, nsga_rank, \
    nsga_select
from .seeding import fixed_menu_genomes, seed_population


@dataclasses.dataclass(frozen=True)
class SearchConfig:
    """Knobs of one evolutionary search.

    Attributes:
        population: survivors per generation (mu == lambda).
        generations: breeding generations after generation 0.
        seed: search RNG seed (independent of the campaign seed —
            the campaign's defect population is part of the base
            config).
        crossover_rate: probability an offspring is bred from two
            parents instead of cloned from one.
        rates: mutation probabilities (see
            :class:`~repro.optimize.operators.MutationRates`).
        run_id: explicit journal namespace; None derives one from the
            search identity digest.
    """

    population: int = 12
    generations: int = 4
    seed: int = 7
    crossover_rate: float = 0.9
    rates: MutationRates = MutationRates()
    run_id: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """A finished (or resumed-to-finish) search.

    Attributes:
        run_id: the journal namespace of the run.
        front: the final non-dominated front, sorted by genome key.
        population: the final surviving population, sorted by genome
            key.
        generations: per-generation journal payloads, in order.
    """

    run_id: str
    front: Tuple[CandidateEvaluation, ...]
    population: Tuple[CandidateEvaluation, ...]
    generations: Tuple[Dict, ...]

    def front_json(self) -> str:
        """Canonical JSON of the front — the byte-identical artifact
        two same-seed runs must agree on."""
        payload = [{"key": e.genome.key(),
                    "genome": e.genome.to_dict(),
                    "objectives": e.objectives.to_dict()}
                   for e in self.front]
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))


class EvolutionarySearch:
    """Runs (and resumes) one seeded NSGA-II search.

    ``evaluator`` is injectable — tests drive the loop with a stub
    that scores genomes analytically; production uses the campaign-
    backed :class:`~repro.optimize.evaluate.CampaignEvaluator` and an
    optional distributed fan-out (``workers``).
    """

    def __init__(self, base_config: Optional[PathConfig] = None,
                 search: Optional[SearchConfig] = None,
                 options: Optional[CampaignOptions] = None,
                 macros: Sequence[str] = ("comparator",),
                 bus: Optional[EventBus] = None,
                 workers: int = 0, worker_mode: str = "process",
                 evaluator=None,
                 seed_genomes: Optional[Sequence[PlanGenome]] = None
                 ) -> None:
        self.base_config = base_config or PathConfig()
        self.search = search or SearchConfig()
        self.options = options or CampaignOptions()
        self.macros = tuple(macros)
        self.bus = bus or EventBus()
        self.evaluator = evaluator or CampaignEvaluator(
            self.base_config, self.options, macros=self.macros,
            bus=self.bus, workers=workers, worker_mode=worker_mode)
        self._seed_genomes = list(seed_genomes) if seed_genomes \
            else None
        self.reference = REFERENCE_POINT

    # -- identity ----------------------------------------------------------

    def identity(self) -> Dict:
        """What a resume must agree on to continue a journal."""
        return {
            "base_config": self.base_config.to_dict(),
            "macros": list(self.macros),
            "population": self.search.population,
            "generations": self.search.generations,
            "seed": self.search.seed,
            "crossover_rate": repr(self.search.crossover_rate),
            "rates": {
                "campaign": repr(self.search.rates.campaign),
                "schedule_toggle":
                    repr(self.search.rates.schedule_toggle),
                "schedule_swap": repr(self.search.rates.schedule_swap),
            },
        }

    def run_id(self) -> str:
        if self.search.run_id:
            return self.search.run_id
        blob = json.dumps(self.identity(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def _journal(self) -> GenerationJournal:
        store: Optional[ResultsStore] = None
        cache_dir = self.options.resolved_cache_dir()
        if cache_dir is not None:
            store = ResultsStore(cache_dir,
                                 version=self.options.store_version)
        return GenerationJournal(store, self.run_id())

    # -- seeding -----------------------------------------------------------

    def _menu(self) -> List[PlanGenome]:
        if self._seed_genomes is not None:
            return list(self._seed_genomes)
        base = self.evaluator.base_result()
        return fixed_menu_genomes(base, self.macros)

    # -- evaluation with journal adoption ----------------------------------

    def _evaluate(self, genome: PlanGenome, generation: int,
                  journal: GenerationJournal) -> CandidateEvaluation:
        journaled = journal.load_evaluation(genome.key())
        if journaled is not None:
            adopted = dataclasses.replace(
                journaled, source="journal", fresh_simulations=0,
                store_hits=0, wall=0.0)
            self.bus.emit(CandidateEvaluated(
                generation=generation, key=genome.key(),
                source="journal",
                objectives=adopted.objectives.to_dict()))
            return adopted
        evaluation = self.evaluator.evaluate(genome,
                                             generation=generation)
        journal.record_evaluation(evaluation)
        return evaluation

    def _score_population(self, genomes: Sequence[PlanGenome],
                          generation: int,
                          journal: GenerationJournal
                          ) -> List[CandidateEvaluation]:
        return [self._evaluate(g, generation, journal)
                for g in genomes]

    # -- generation bookkeeping --------------------------------------------

    def _front(self, population: Sequence[CandidateEvaluation]
               ) -> List[CandidateEvaluation]:
        points = [e.objectives.minimize() for e in population]
        first = non_dominated_sort(points)[0]
        # the population may carry duplicate genomes (an offspring can
        # clone its parent); the front reports each candidate once
        front: List[CandidateEvaluation] = []
        seen = set()
        for i in first:
            key = population[i].genome.key()
            if key not in seen:
                seen.add(key)
                front.append(population[i])
        return sorted(front, key=lambda e: e.genome.key())

    def _complete_generation(
            self, generation: int,
            population: List[CandidateEvaluation],
            scored: Sequence[CandidateEvaluation],
            journal: GenerationJournal, wall: float) -> Dict:
        front = self._front(population)
        hv = hypervolume([e.objectives.minimize() for e in front],
                         self.reference)
        payload = {
            "generation": generation,
            "population": [e.genome.key() for e in population],
            "front": [e.genome.key() for e in front],
            "hypervolume": hv,
            "evaluated": len(scored),
            "fresh_simulations": sum(e.fresh_simulations
                                     for e in scored),
            "store_hits": sum(e.store_hits for e in scored),
            "wall": wall,
        }
        journal.record_generation(generation, payload)
        self.bus.emit(GenerationCompleted(
            generation=generation, evaluated=len(scored),
            fresh_simulations=payload["fresh_simulations"],
            store_hits=payload["store_hits"],
            front_size=len(front), hypervolume=hv, wall=wall))
        return payload

    # -- breeding ----------------------------------------------------------

    def _breed(self, parents: Sequence[CandidateEvaluation],
               generation: int) -> List[PlanGenome]:
        rng = generation_rng(self.search.seed, generation)
        points = [e.objectives.minimize() for e in parents]
        ranks, crowding = nsga_rank(points)
        offspring: List[PlanGenome] = []
        while len(offspring) < self.search.population:
            i = tournament(rng, ranks, crowding)
            if rng.random() < self.search.crossover_rate:
                j = tournament(rng, ranks, crowding)
                child = crossover(parents[i].genome,
                                  parents[j].genome, rng)
            else:
                child = parents[i].genome
            offspring.append(mutate(child, rng, self.search.rates))
        return offspring

    # -- the loop ----------------------------------------------------------

    def run(self, resume: bool = False) -> SearchResult:
        journal = self._journal()
        meta = journal.load_meta()
        identity = self.identity()
        if meta is not None:
            if meta.get("identity") != identity:
                if resume:
                    raise ValueError(
                        f"run {self.run_id()} was journaled with a "
                        f"different config/search identity; refusing "
                        f"to resume")
                # same run_id, different identity: only possible with
                # an explicit --run-id; start over under that name
                journal.save_meta({"identity": identity})
        else:
            journal.save_meta({"identity": identity})

        generations: List[Dict] = []
        population: List[CandidateEvaluation] = []
        start_generation = 0

        if resume:
            done = journal.completed_generations()
            for g in done:
                payload = journal.load_generation(g)
                if payload is None:
                    break
                adopted = self._adopt(payload.get("population", ()),
                                      g, journal)
                if adopted is None:
                    break
                population = adopted
                generations.append(payload)
                start_generation = g + 1
                # replayed history still reaches the metrics
                # collectors — as pure journal traffic
                for evaluation in adopted:
                    self.bus.emit(CandidateEvaluated(
                        generation=g,
                        key=evaluation.genome.key(),
                        source="journal",
                        objectives=evaluation.objectives.to_dict()))
                self.bus.emit(GenerationCompleted(
                    generation=g,
                    evaluated=int(payload.get("evaluated", 0)),
                    front_size=len(payload.get("front", ())),
                    hypervolume=float(
                        payload.get("hypervolume", 0.0)),
                    wall=float(payload.get("wall", 0.0))))

        if start_generation == 0:
            started = time.perf_counter()
            rng = generation_rng(self.search.seed, 0)
            genomes = seed_population(self._menu(),
                                      self.search.population, rng,
                                      self.search.rates)
            scored = self._score_population(genomes, 0, journal)
            population = list(scored)
            generations.append(self._complete_generation(
                0, population, scored, journal,
                time.perf_counter() - started))
            start_generation = 1

        for g in range(start_generation,
                       self.search.generations + 1):
            started = time.perf_counter()
            offspring = self._breed(population, g)
            scored = self._score_population(offspring, g, journal)
            combined = population + scored
            points = [e.objectives.minimize() for e in combined]
            keep = nsga_select(points, self.search.population)
            population = [combined[i] for i in keep]
            generations.append(self._complete_generation(
                g, population, scored, journal,
                time.perf_counter() - started))

        front = self._front(population)
        return SearchResult(
            run_id=self.run_id(), front=tuple(front),
            population=tuple(sorted(
                population, key=lambda e: e.genome.key())),
            generations=tuple(generations))

    def resume(self) -> SearchResult:
        """Continue a journaled run (no-op when it already finished:
        the journal replays to the identical final front)."""
        return self.run(resume=True)

    # -- resume helpers ----------------------------------------------------

    def _adopt(self, keys: Sequence[str], generation: int,
               journal: GenerationJournal
               ) -> Optional[List[CandidateEvaluation]]:
        """Rebuild a journaled population; None when any member's
        evaluation blob is missing (that generation then re-runs)."""
        out: List[CandidateEvaluation] = []
        for key in keys:
            evaluation = journal.load_evaluation(key)
            if evaluation is None:
                return None
            out.append(dataclasses.replace(
                evaluation, source="journal", fresh_simulations=0,
                store_hits=0, wall=0.0))
        return out
