"""Decision support: render Pareto fronts and run histories.

The front table is the deliverable the paper's section 4 produced by
hand — which DfT measures and which test schedule to ship — except
here every row is a non-dominated candidate with its measured
trade-offs, and the knee point is marked.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .evaluate import CandidateEvaluation


def _knee_index(front: Sequence[CandidateEvaluation]) -> int:
    """The knee: smallest normalised distance to the ideal point."""
    points = np.array([e.objectives.minimize() for e in front],
                      dtype=float)
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    span[span <= 0] = 1.0
    normalised = (points - lo) / span
    return int(np.argmin(np.linalg.norm(normalised, axis=1)))


def render_front(front: Sequence[CandidateEvaluation]) -> str:
    """Human-readable Pareto front, knee point marked with ``*``."""
    if not front:
        return "empty front"
    knee = _knee_index(front)
    lines = [f"  {'':2s}{'key':18s} {'coverage':>9s} {'time':>10s} "
             f"{'area':>12s} {'resolution':>11s}  genes"]
    for idx, evaluation in enumerate(front):
        o = evaluation.objectives
        g = evaluation.genome
        genes = []
        if g.flipflop_redesign:
            genes.append("ff")
        if g.bias_line_reorder:
            genes.append("bias")
        if g.dynamic_test:
            genes.append("dyn")
        mark = "* " if idx == knee else "  "
        lines.append(
            f"  {mark}{g.key():18s} {100 * o.coverage:8.2f}% "
            f"{1e3 * o.test_time:8.3f}ms {o.dft_area:10.0f}um2 "
            f"{100 * o.resolution:10.2f}%  "
            f"{'+'.join(genes) or 'no-dft'}"
            f"[{len(g.schedule)} meas]")
    lines.append(f"  ({len(front)} non-dominated candidates; "
                 f"* = knee point)")
    return "\n".join(lines)


def render_history(generations: Sequence[Dict]) -> str:
    """Per-generation progress table from journal payloads."""
    if not generations:
        return "no completed generations"
    lines = [f"  {'gen':>4s} {'evaluated':>10s} {'fresh sims':>11s} "
             f"{'store hits':>11s} {'front':>6s} {'hypervolume':>12s}"]
    for payload in generations:
        lines.append(
            f"  {payload.get('generation', 0):4d} "
            f"{payload.get('evaluated', 0):10d} "
            f"{payload.get('fresh_simulations', 0):11d} "
            f"{payload.get('store_hits', 0):11d} "
            f"{len(payload.get('front', ())):6d} "
            f"{payload.get('hypervolume', 0.0):12.6g}")
    return "\n".join(lines)


def describe_candidates(front: Sequence[CandidateEvaluation]
                        ) -> List[str]:
    """One :meth:`PlanGenome.describe` line per front member."""
    return [e.genome.describe() for e in front]
