"""Closed-loop DfT/test-plan optimization (ROADMAP item 3).

The paper chose its DfT measures and test schedule by hand from a
fixed menu; this package closes the loop with a deterministic, seeded
evolutionary search over test-programme genomes:

* :mod:`~repro.optimize.genome` — the
  :class:`~repro.optimize.genome.PlanGenome` (DfT measures, dynamic
  test, probe amplitudes, corner set, ordered stimulus schedule) and
  its compilation onto :class:`~repro.core.path.PathConfig` deltas;
* :mod:`~repro.optimize.pareto` — NSGA-II primitives (non-dominated
  sort, crowding distance, elitist selection, hypervolume);
* :mod:`~repro.optimize.operators` — seeded mutation / crossover /
  tournament, all taking an explicit :class:`numpy.random.Generator`;
* :mod:`~repro.optimize.seeding` — the legacy fixed menu (greedy set
  cover + advisor recommendations) as generation 0;
* :mod:`~repro.optimize.evaluate` — candidates scored through the
  campaign pipeline (store cache hits, memoized campaigns, optional
  distributed fan-out) on coverage x test time x DfT area x
  diagnosability;
* :mod:`~repro.optimize.journal` — crash-safe run state in the
  results store (``optimize/<run_id>/``);
* :mod:`~repro.optimize.search` — the
  :class:`~repro.optimize.search.EvolutionarySearch` loop with
  byte-identical same-seed fronts and mid-generation resume;
* :mod:`~repro.optimize.metrics` / :mod:`~repro.optimize.report` —
  per-generation hypervolume + cache accounting, front rendering;
* :mod:`~repro.optimize.cli` — ``python -m repro optimize
  run|resume|report``.

See ``docs/OPTIMIZE.md`` for the genome encoding, the objective
definitions, resume semantics and distributed evaluation.
"""

from .measures import (MISSING_CODE, Measure, TestPlan,
                       all_measurements, dft_area_overhead,
                       full_plan_cost, measurement_cost)
from .pareto import (crowding_distance, dominates, hypervolume,
                     non_dominated_sort, nsga_rank, nsga_select)
from .genome import (BIG_PROBE_PALETTE, CORNER_PALETTE, PlanGenome,
                     SMALL_PROBE_PALETTE)
from .operators import (MutationRates, crossover, generation_rng,
                        mutate, tournament)
from .seeding import (fixed_menu_genomes, greedy_test_plan,
                      seed_population)
from .evaluate import (CampaignEvaluator, CandidateEvaluation,
                       ObjectiveVector, REFERENCE_POINT, YIELD_LOSS,
                       class_table, schedule_objectives)
from .journal import GenerationJournal
from .metrics import (GenerationStats, OptimizeMetrics,
                      OptimizeMetricsCollector)
from .search import EvolutionarySearch, SearchConfig, SearchResult
from .report import describe_candidates, render_front, render_history

__all__ = [
    "MISSING_CODE", "Measure", "TestPlan", "all_measurements",
    "dft_area_overhead", "full_plan_cost", "measurement_cost",
    "crowding_distance", "dominates", "hypervolume",
    "non_dominated_sort", "nsga_rank", "nsga_select",
    "BIG_PROBE_PALETTE", "CORNER_PALETTE", "PlanGenome",
    "SMALL_PROBE_PALETTE",
    "MutationRates", "crossover", "generation_rng", "mutate",
    "tournament",
    "fixed_menu_genomes", "greedy_test_plan", "seed_population",
    "CampaignEvaluator", "CandidateEvaluation", "ObjectiveVector",
    "REFERENCE_POINT", "YIELD_LOSS", "class_table",
    "schedule_objectives",
    "GenerationJournal",
    "GenerationStats", "OptimizeMetrics", "OptimizeMetricsCollector",
    "EvolutionarySearch", "SearchConfig", "SearchResult",
    "describe_candidates", "render_front", "render_history",
]
