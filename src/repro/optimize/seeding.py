"""Generation 0: the fixed menu becomes the seed population.

The greedy weighted set cover that used to *be* the optimizer
(``repro.testgen.optimize.optimize_test_plan``, paper section 3.2)
now seeds it: generation 0 contains the greedy coverage plan, the
advisor's recommended-DfT variants
(:func:`repro.core.advisor.recommended_gene_flags` turned into
campaign genes), the full menu and the bare missing-code test, topped
up with seeded mutations of those.  The search can only improve on
the fixed menu from there — which is exactly the dominance property
``bench_optimize.py`` gates.

:func:`greedy_test_plan` preserves the legacy algorithm bit-for-bit
(same tie-breaks, same stopping rules); the deprecation shim in
``repro.testgen.optimize`` delegates here, and
``tests/testgen/test_optimize_shim.py`` pins the equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.advisor import diagnose_escapes, recommended_gene_flags
from ..core.path import PathResult
from ..macrotest.coverage import MacroResult
from .genome import PlanGenome
from .measures import (MISSING_CODE, Measure, TestPlan,
                       all_measurements, measurement_cost)
from .operators import MutationRates, mutate


def greedy_test_plan(result: MacroResult,
                     min_coverage: Optional[float] = None,
                     dictionary=None,
                     resolution_weight: float = 0.0,
                     rng: Optional[np.random.Generator] = None
                     ) -> TestPlan:
    """Greedy minimum-cost measurement selection for one macro.

    At each step take the measurement with the best newly-covered
    fault probability (optionally plus weighted resolution gain) per
    second of tester time; ties break toward the smallest measurement
    tuple.  Fully deterministic — ``rng`` is accepted for uniformity
    with the other plan producers (every stochastic entry point in
    :mod:`repro.optimize` takes an explicit generator) but never
    drawn from.

    Args:
        result: macro result whose records carry ``violated_keys``.
        min_coverage: stop once this weighted coverage is reached
            (default: everything achievable).
        dictionary: optional :class:`repro.diagnosis.FaultDictionary`;
            when given, the returned plan carries the expected
            diagnostic resolution of the selected measurements.
        resolution_weight: trade-off knob; with a dictionary, each
            greedy step scores ``coverage_gain + resolution_weight *
            resolution_gain`` per second, and selection continues past
            the coverage target while a measurement still improves
            resolution.  0.0 (the default) reproduces the
            coverage-only plan exactly.
        rng: unused; accepted per the explicit-Generator contract.
    """
    del rng  # deterministic: kept for the uniform RNG contract
    weights: Dict[int, float] = {}
    detections: Dict[int, Set[Measure]] = {}
    total = result.total_faults
    if total == 0:
        raise ValueError("macro has no faults to cover")
    for idx, record in enumerate(result.records):
        weights[idx] = record.count / total
        dets: Set[Measure] = set(record.violated_keys)
        if record.voltage_detected:
            dets.add(MISSING_CODE)
        detections[idx] = dets

    candidates: Set[Measure] = set()
    for dets in detections.values():
        candidates |= dets
    achievable = sum(w for idx, w in weights.items() if detections[idx])
    target = achievable if min_coverage is None \
        else min(min_coverage, achievable)

    diagnose = dictionary is not None and resolution_weight > 0.0
    if diagnose:
        from ..diagnosis import expected_resolution

        def resolution_of(measures: Sequence[Measure]) -> float:
            return expected_resolution(
                dictionary, measurements=measures).resolution

    chosen: List[Measure] = []
    covered: Set[int] = set()
    coverage = 0.0
    resolution = resolution_of(chosen) if diagnose else 0.0
    remaining = set(candidates)
    while remaining:
        covering = coverage < target - 1e-12

        def gain(measure: Measure) -> float:
            g = sum(weights[idx] for idx in weights
                    if idx not in covered and
                    measure in detections[idx])
            if diagnose:
                g += resolution_weight * \
                    (resolution_of(chosen + [measure]) - resolution)
            return g / measurement_cost(measure)

        best = max(sorted(remaining), key=gain)
        newly = {idx for idx in weights
                 if idx not in covered and best in detections[idx]}
        if covering:
            if not newly and not (diagnose and gain(best) > 1e-12):
                break
        else:
            # coverage target met: keep going only while a measurement
            # still buys diagnostic resolution
            if not diagnose or \
                    resolution_of(chosen + [best]) <= resolution + 1e-12:
                break
        remaining.discard(best)
        chosen.append(best)
        covered |= newly
        coverage = sum(weights[idx] for idx in covered)
        if diagnose:
            resolution = resolution_of(chosen)

    cost = sum(measurement_cost(m) for m in chosen)
    final_resolution: Optional[float] = None
    if dictionary is not None:
        from ..diagnosis import expected_resolution
        final_resolution = expected_resolution(
            dictionary, measurements=chosen).resolution
    return TestPlan(measurements=tuple(chosen), coverage=coverage,
                    achievable=achievable, cost=cost,
                    resolution=final_resolution)


def _greedy_schedule(result: PathResult,
                     macros: Sequence[str]) -> Tuple[Measure, ...]:
    """Greedy selection order over every macro the search evaluates.

    Single macro (the common case) reproduces the legacy plan exactly;
    several macros run one combined set cover over the concatenated
    records, weighted by class magnitude — a seed, not a score (the
    evaluator's area-scaled objectives decide what survives).
    """
    parts: List[MacroResult] = []
    for name in macros:
        analysis = result.macros.get(name)
        if analysis is None:
            continue
        for macro_result in (analysis.result, analysis.noncat_result):
            if macro_result is not None and macro_result.records:
                parts.append(macro_result)
    if len(parts) == 1:
        return greedy_test_plan(parts[0]).measurements
    records = tuple(r for part in parts for r in part.records)
    merged = MacroResult(name="merged", bbox_area=1.0, instances=1,
                         defects_sprinkled=sum(
                             p.defects_sprinkled for p in parts),
                         records=records)
    return greedy_test_plan(merged).measurements


def fixed_menu_genomes(result: PathResult,
                       macros: Sequence[str] = ("comparator",)
                       ) -> List[PlanGenome]:
    """The fixed-menu candidates, as genomes.

    Built from a *base* (no-DfT) campaign result:

    1. the greedy coverage plan (the legacy optimizer's answer);
    2. the advisor plans — escape analysis turned into DfT/dynamic
       genes, once with the greedy schedule (what a designer
       following ``render_advice`` would ship) and once with the
       full suite (the paper's section 4 scenario);
    3. the full menu (every measurement, maximal resolution);
    4. the bare missing-code test (the minimal go/no-go plan).
    """
    greedy = _greedy_schedule(result, macros)
    if not greedy:
        greedy = (MISSING_CODE,)
    genomes = [PlanGenome(schedule=greedy)]

    flags: Dict[str, bool] = {}
    for name in macros:
        analysis = result.macros.get(name)
        if analysis is None or analysis.classes is None:
            continue
        diagnoses = diagnose_escapes(analysis.classes,
                                     analysis.result.records)
        for gene, wanted in recommended_gene_flags(diagnoses).items():
            flags[gene] = flags.get(gene, False) or wanted
    if any(flags.values()):
        genomes.append(PlanGenome(
            flipflop_redesign=flags.get("flipflop_redesign", False),
            bias_line_reorder=flags.get("bias_line_reorder", False),
            dynamic_test=flags.get("dynamic_test", False),
            schedule=greedy))
        # the paper's section 4 scenario: adopt the DfT measures and
        # apply the entire measurement suite
        genomes.append(PlanGenome(
            flipflop_redesign=flags.get("flipflop_redesign", False),
            bias_line_reorder=flags.get("bias_line_reorder", False),
            dynamic_test=flags.get("dynamic_test", False),
            schedule=all_measurements()))

    genomes.append(PlanGenome(schedule=all_measurements()))
    genomes.append(PlanGenome(schedule=(MISSING_CODE,)))

    unique: List[PlanGenome] = []
    seen: Set[str] = set()
    for genome in genomes:
        if genome.key() not in seen:
            seen.add(genome.key())
            unique.append(genome)
    return unique


def seed_population(menu: Sequence[PlanGenome], size: int,
                    rng: np.random.Generator,
                    rates: MutationRates = MutationRates()
                    ) -> List[PlanGenome]:
    """Generation 0: the fixed menu plus seeded mutations of it.

    Deduplicated by genome key; drawing order is deterministic in the
    generator's stream, so a given (seed, menu) always produces the
    same population.
    """
    if not menu:
        raise ValueError("seed menu must not be empty")
    population = list(menu)[:size]
    seen = {genome.key() for genome in population}
    attempts = 0
    while len(population) < size and attempts < 50 * size:
        attempts += 1
        parent = population[attempts % len(population)]
        child = mutate(parent, rng, rates)
        if child.key() not in seen:
            seen.add(child.key())
            population.append(child)
    # pathological palettes can exhaust distinct neighbours; pad with
    # menu repeats so the population contract (exact size) holds
    while len(population) < size:
        population.append(menu[len(population) % len(menu)])
    return population
