"""High-level (heuristic) fault-signature estimation — the baseline the
paper argues against.

Harvey et al. [7] tackled the IFA-complexity problem by fault-simulating
with *high-level models* instead of circuit-level netlists; the paper's
criticism: "the accuracy of the generated fault models is limited by the
high-level models used."  To quantify that criticism, this module
implements a careful rule-based estimator that maps a circuit-level
fault to a macro signature using only *structural* knowledge (which nets
the fault touches, their roles) — no analog simulation — so the
benchmark suite can measure its agreement with the transistor-level
engine on the same fault population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ..defects.faults import (ExtraContactFault, Fault,
                              GateOxidePinholeFault, JunctionPinholeFault,
                              NewDeviceFault, OpenFault, ShortFault,
                              ShortedDeviceFault, ThickOxidePinholeFault)
from .noncat import NearMissShortFault
from .signatures import CurrentMechanism, VoltageSignature

#: structural net roles in the comparator macro
NET_ROLES: Dict[str, str] = {
    "vdd": "supply", "gnd": "supply",
    "phi1": "clock", "phi2": "clock", "phi3": "clock",
    "vbn1": "bias", "vbn2": "bias",
    "in": "input", "vref": "input",
    "cin_p": "signal", "cin_n": "signal",
    "outp": "signal", "outn": "signal",
    "lp": "signal", "ln": "signal",
    "tail": "internal", "tailsw": "internal", "ltail": "internal",
    "htail": "internal", "phi3b": "internal", "nleak": "internal",
    "ffin": "ff", "ffind": "ff", "ffmid": "ff", "ffmidd": "ff",
    "ffout": "ff",
}


@dataclass(frozen=True)
class HighLevelEstimate:
    """Structurally estimated signature."""

    voltage: VoltageSignature
    mechanisms: FrozenSet[CurrentMechanism]


def _roles(nets) -> Set[str]:
    return {NET_ROLES.get(net, "internal") for net in nets}


def _fault_nets(fault: Fault) -> Set[str]:
    if hasattr(fault, "nets"):
        return set(fault.nets)
    nets: Set[str] = set()
    if hasattr(fault, "net"):
        nets.add(fault.net)
    if hasattr(fault, "bulk_net"):
        nets.add(fault.bulk_net)
    return nets


def estimate_signature(fault: Fault) -> HighLevelEstimate:
    """Rule-based signature estimate from structure alone.

    The rules encode exactly what a designer would guess without
    simulating — which is the point: the benchmark measures how often
    the guess is wrong.
    """
    nets = _fault_nets(fault)
    roles = _roles(nets)
    low_ohmic = isinstance(fault, (ShortFault, ExtraContactFault,
                                   ShortedDeviceFault))
    mechanisms: Set[CurrentMechanism] = set()

    # current rules
    if "clock" in roles and len(roles) > 1:
        mechanisms.add(CurrentMechanism.IDDQ)
    if roles >= {"supply"} and ("supply" in roles and
                                ("signal" in roles or "internal" in
                                 roles or len(nets & {"vdd", "gnd"})
                                 == 2)):
        if low_ohmic and len(nets & {"vdd", "gnd"}) == 2:
            mechanisms.add(CurrentMechanism.IVDD)
    if "input" in roles and len(roles) > 1 and low_ohmic:
        mechanisms.add(CurrentMechanism.IINPUT)

    # voltage rules
    if isinstance(fault, (ShortedDeviceFault, GateOxidePinholeFault)):
        voltage = VoltageSignature.OUTPUT_STUCK_AT
    elif isinstance(fault, OpenFault):
        voltage = VoltageSignature.OUTPUT_STUCK_AT
    elif isinstance(fault, NewDeviceFault):
        voltage = VoltageSignature.OFFSET
    elif isinstance(fault, NearMissShortFault):
        if roles == {"clock"} or (roles == {"bias"}):
            voltage = VoltageSignature.CLOCK_VALUE if "clock" in roles \
                else VoltageSignature.NONE
        elif "signal" in roles:
            voltage = VoltageSignature.OFFSET
        else:
            voltage = VoltageSignature.CLOCK_VALUE
    elif low_ohmic or isinstance(fault, (ThickOxidePinholeFault,
                                         JunctionPinholeFault)):
        if roles == {"bias"}:
            voltage = VoltageSignature.NONE
        elif "signal" in roles or "clock" in roles or \
                "supply" in roles or "internal" in roles:
            voltage = VoltageSignature.OUTPUT_STUCK_AT
        else:
            voltage = VoltageSignature.MIXED
    else:
        voltage = VoltageSignature.MIXED
    return HighLevelEstimate(voltage=voltage,
                             mechanisms=frozenset(mechanisms))


@dataclass(frozen=True)
class AgreementReport:
    """How well the structural estimate matches circuit-level truth."""

    total: int
    voltage_agree: int
    current_agree: int
    confusion: Dict

    @property
    def voltage_accuracy(self) -> float:
        return self.voltage_agree / self.total if self.total else 1.0

    @property
    def current_accuracy(self) -> float:
        return self.current_agree / self.total if self.total else 1.0


def compare_to_circuit_level(pairs) -> AgreementReport:
    """Score estimates against circuit-level results.

    Args:
        pairs: iterable of ``(fault, SignatureResult)`` from the real
            engine.
    """
    total = voltage_agree = current_agree = 0
    confusion: Dict = {}
    for fault, truth in pairs:
        estimate = estimate_signature(fault)
        total += 1
        if estimate.voltage == truth.voltage:
            voltage_agree += 1
        if estimate.mechanisms == truth.mechanisms:
            current_agree += 1
        key = (estimate.voltage.value, truth.voltage.value)
        confusion[key] = confusion.get(key, 0) + 1
    return AgreementReport(total=total, voltage_agree=voltage_agree,
                           current_agree=current_agree,
                           confusion=confusion)
