"""Analog fault simulation: models, injection, good space, signatures.

Pipeline: :func:`fault_models` builds circuit-level models per fault,
:class:`ComparatorFaultEngine` simulates each class against the
comparator testbench and classifies the macro-level
:class:`SignatureResult` against the compiled :class:`GoodSpace`.

Every macro's engine implements the :class:`FaultEngine` protocol —
one contract, ``simulate_class(fault_class) -> DetectionRecord`` — so
the campaign runner and the test path drive all of them identically
(no per-macro special cases).
"""

from __future__ import annotations

from typing import Protocol, TYPE_CHECKING, runtime_checkable

from .baseline import (BASELINE_VERSION, MacroBaseline, Trajectory,
                       align_guide, align_x0)
from .engine import (ComparatorFaultEngine, EngineConfig,
                     FaultClassResult)
from .goodspace import (GoodSpace, N_COMPARATORS, Window,
                        compile_good_space)
from .models import (FLOAT_LEAK_RESISTANCE, FaultModel, ModelError,
                     fault_models, inject)
from .noncat import (NearMissShortFault, derive_noncatastrophic,
                     near_miss_model)
from .signatures import (CLOCK_DEVIATION_THRESHOLD, CurrentMechanism,
                         Measurement, OFFSET_THRESHOLD, PHASES,
                         POLARITIES, SIGNATURE_QUANTITIES,
                         SignatureResult, VoltageSignature,
                         classify_voltage, signature_feature_names,
                         signature_vector)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..defects.collapse import FaultClass
    from ..macrotest.coverage import DetectionRecord


@runtime_checkable
class FaultEngine(Protocol):
    """The one contract every macro fault engine satisfies.

    A fault engine turns one collapsed fault class into one
    :class:`~repro.macrotest.coverage.DetectionRecord`.  The comparator,
    ladder, clock-generator and bias-generator engines all implement
    it, which lets :mod:`repro.campaign.tasks` and
    :mod:`repro.core.path` dispatch any macro's classes through the
    same code path.

    ``runtime_checkable`` only verifies the method exists — it cannot
    check the signature — but that is enough for the isinstance guards
    in tests and the campaign planner.
    """

    def simulate_class(self, fault_class: "FaultClass"
                       ) -> "DetectionRecord":
        """Simulate one fault class and report how it is detected."""
        ...


__all__ = [
    "FaultEngine",
    "BASELINE_VERSION", "MacroBaseline", "Trajectory", "align_guide",
    "align_x0",
    "ComparatorFaultEngine", "EngineConfig", "FaultClassResult",
    "GoodSpace", "N_COMPARATORS", "Window", "compile_good_space",
    "FLOAT_LEAK_RESISTANCE", "FaultModel", "ModelError", "fault_models",
    "inject", "NearMissShortFault", "derive_noncatastrophic",
    "near_miss_model", "CLOCK_DEVIATION_THRESHOLD", "CurrentMechanism",
    "Measurement", "OFFSET_THRESHOLD", "PHASES", "POLARITIES",
    "SIGNATURE_QUANTITIES", "SignatureResult", "VoltageSignature",
    "classify_voltage", "signature_feature_names", "signature_vector",
]
