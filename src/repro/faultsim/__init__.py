"""Analog fault simulation: models, injection, good space, signatures.

Pipeline: :func:`fault_models` builds circuit-level models per fault,
:class:`ComparatorFaultEngine` simulates each class against the
comparator testbench and classifies the macro-level
:class:`SignatureResult` against the compiled :class:`GoodSpace`.
"""

from .engine import (ComparatorFaultEngine, EngineConfig,
                     FaultClassResult)
from .goodspace import (GoodSpace, N_COMPARATORS, Window,
                        compile_good_space)
from .models import (FLOAT_LEAK_RESISTANCE, FaultModel, ModelError,
                     fault_models, inject)
from .noncat import (NearMissShortFault, derive_noncatastrophic,
                     near_miss_model)
from .signatures import (CLOCK_DEVIATION_THRESHOLD, CurrentMechanism,
                         Measurement, OFFSET_THRESHOLD, PHASES,
                         POLARITIES, SignatureResult, VoltageSignature,
                         classify_voltage)

__all__ = [
    "ComparatorFaultEngine", "EngineConfig", "FaultClassResult",
    "GoodSpace", "N_COMPARATORS", "Window", "compile_good_space",
    "FLOAT_LEAK_RESISTANCE", "FaultModel", "ModelError", "fault_models",
    "inject", "NearMissShortFault", "derive_noncatastrophic",
    "near_miss_model", "CLOCK_DEVIATION_THRESHOLD", "CurrentMechanism",
    "Measurement", "OFFSET_THRESHOLD", "PHASES", "POLARITIES",
    "SignatureResult", "VoltageSignature", "classify_voltage",
]
