"""The good signature space (paper section 2, last paragraph).

"In the analog domain, the output of a fault-free circuit can vary under
the influence of environmental conditions like process, supply voltage
and temperature.  Thus the good signature is a multi-dimensional space
... and the faulty circuit has to have a response outside this space to
be recognized as faulty."

We compile the space by measuring the fault-free macro at every corner
and expanding each chip-level measurement to its [min, max] window plus a
tester floor.  Current detection then asks whether the *chip-level*
faulty value — nominal chip plus the one faulty instance's deviation —
escapes the window.  Chip-level scaling is what makes the flipflop-leak
DfT story work: 256 leaky flipflops give the sampling-phase IVdd window a
spread of tens of mA that masks single-instance deviations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..adc.ladder import N_TAPS
from .signatures import (CurrentMechanism, Measurement, PHASES,
                         POLARITIES)

#: number of comparator instances on the chip
N_COMPARATORS = N_TAPS

#: tester floors (amps): a deviation below these is unmeasurable even
#: with a perfectly tight process window
FLOOR_IVDD = 100e-6
FLOOR_IDDQ = 50e-6
FLOOR_IINPUT = 5e-6
FLOOR_IVREF = 500e-6


@dataclass(frozen=True)
class Window:
    """Acceptance interval for one chip-level measurement."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"window hi < lo: {self}")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def expanded(self, margin: float) -> "Window":
        return Window(self.lo - margin, self.hi + margin)


# measurement keys: (quantity, phase, polarity)
Key = Tuple[str, str, str]

#: which coarse mechanism each measured quantity belongs to
_QUANTITY_MECHANISM = {
    "ivdd": CurrentMechanism.IVDD,
    "iddq": CurrentMechanism.IDDQ,
    "iin": CurrentMechanism.IINPUT,
    "ivref": CurrentMechanism.IINPUT,
}


def mechanism_of(key: Key) -> CurrentMechanism:
    """Coarse detection mechanism of a measurement key."""
    return _QUANTITY_MECHANISM[key[0]]


@dataclass
class GoodSpace:
    """Compiled good signature space for the comparator macro.

    Attributes:
        typical: polarity -> fault-free Measurement at the typical
            corner (the baseline the fault deviations are taken from).
        windows: chip-level acceptance window per measurement key.
    """

    typical: Dict[str, Measurement]
    windows: Dict[Key, Window]

    def violated_measurements(self, faulty: Dict[str, Measurement]
                              ) -> Set[Key]:
        """Individual measurement keys whose chip-level value escapes.

        This is the fine-grained view behind
        :meth:`current_detection`; the test-plan optimizer consumes it
        (the paper: "the overlap between different detection mechanisms
        gives room for the optimization of the test method").

        Args:
            faulty: polarity -> Measurement of the faulty instance at
                the typical corner.
        """
        violated: Set[Key] = set()
        for pol in POLARITIES:
            f = faulty[pol]
            t = self.typical[pol]
            if not f.resolved:
                # a hard-broken circuit: the instance cannot bias up,
                # so every supply measurement is out
                for phase in PHASES:
                    violated.add(("ivdd", phase, pol))
                continue
            for k, phase in enumerate(PHASES):
                # IVdd: all 256 instances plus the bias-line loading,
                # which the bias generator ultimately draws from vdd
                d_ivdd = (f.ivdd[k] - t.ivdd[k]) + \
                    abs(f.ibias[k] - t.ibias[k])
                chip = N_COMPARATORS * t.ivdd[k] + d_ivdd
                if not self.windows[("ivdd", phase, pol)].contains(chip):
                    violated.add(("ivdd", phase, pol))
                d_iddq = f.iddq[k] - t.iddq[k]
                if not self.windows[("iddq", phase, pol)].contains(
                        t.iddq[k] + d_iddq):
                    violated.add(("iddq", phase, pol))
                d_iin = f.iin[k] - t.iin[k]
                if not self.windows[("iin", phase, pol)].contains(
                        N_COMPARATORS * t.iin[k] + d_iin):
                    violated.add(("iin", phase, pol))
                d_ivref = f.ivref[k] - t.ivref[k]
                if not self.windows[("ivref", phase, pol)].contains(
                        N_COMPARATORS * t.ivref[k] + d_ivref):
                    violated.add(("ivref", phase, pol))
        return violated

    def current_detection(self, faulty: Dict[str, Measurement]
                          ) -> Set[CurrentMechanism]:
        """Mechanisms whose chip-level measurement escapes its window."""
        return {mechanism_of(key)
                for key in self.violated_measurements(faulty)}


def compile_good_space(corner_measurements: Dict[str, Dict[str,
                                                            Measurement]],
                       typical_name: str = "typical",
                       ladder_current_window: Optional[Window] = None
                       ) -> GoodSpace:
    """Build the good space from per-corner fault-free measurements.

    Args:
        corner_measurements: corner name -> polarity -> Measurement.
        typical_name: which corner is the baseline.
        ladder_current_window: chip-level reference-terminal window
            (the ladder current dominates it); default derives it from
            the comparator's own vref loading spread plus the floor.
    """
    if typical_name not in corner_measurements:
        raise ValueError(f"missing corner {typical_name!r}")
    windows: Dict[Key, Window] = {}
    for k, phase in enumerate(PHASES):
        for pol in POLARITIES:
            ivdds, iddqs, iins, ivrefs = [], [], [], []
            for meas in corner_measurements.values():
                m = meas[pol]
                ivdds.append(N_COMPARATORS * m.ivdd[k])
                iddqs.append(m.iddq[k])
                iins.append(N_COMPARATORS * m.iin[k])
                ivrefs.append(N_COMPARATORS * m.ivref[k])
            windows[("ivdd", phase, pol)] = Window(
                min(ivdds) - FLOOR_IVDD, max(ivdds) + FLOOR_IVDD)
            windows[("iddq", phase, pol)] = Window(
                min(iddqs) - FLOOR_IDDQ, max(iddqs) + FLOOR_IDDQ)
            windows[("iin", phase, pol)] = Window(
                min(iins) - FLOOR_IINPUT, max(iins) + FLOOR_IINPUT)
            if ladder_current_window is not None:
                windows[("ivref", phase, pol)] = ladder_current_window
            else:
                windows[("ivref", phase, pol)] = Window(
                    min(ivrefs) - FLOOR_IVREF, max(ivrefs) + FLOOR_IVREF)
    return GoodSpace(typical=dict(corner_measurements[typical_name]),
                     windows=windows)
