"""Non-catastrophic ("near miss") fault derivation.

Paper section 3.2: non-catastrophic faults are evolved from the
catastrophic shorts and extra contacts — a defect that *almost* bridges
two conductors behaves as a high-ohmic, slightly capacitive connection,
modelled as 500 ohm in parallel with 1 fF.  The other catastrophic fault
types are already high-ohmic and are not evolved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..circuit.elements import Capacitor, Resistor
from ..circuit.netlist import Circuit
from ..defects.collapse import FaultClass
from ..defects.faults import ExtraContactFault, Fault, ShortFault
from ..layout.layers import NEAR_MISS_CAPACITANCE, NEAR_MISS_RESISTANCE
from .models import FaultModel


@dataclass(frozen=True)
class NearMissShortFault(Fault):
    """High-ohmic near-miss bridge between nets (non-catastrophic)."""

    nets: FrozenSet[str]

    @property
    def fault_type(self) -> str:
        return "near_miss_short"

    def collapse_key(self) -> Tuple:
        return ("near_miss_short", tuple(sorted(self.nets)))

    def __str__(self) -> str:
        return f"near_miss_short({','.join(sorted(self.nets))})"


def derive_noncatastrophic(classes: List[FaultClass]) -> List[FaultClass]:
    """Evolve near-miss fault classes from catastrophic bridge classes.

    Each short / extra-contact class spawns one near-miss class with the
    same magnitude (the likelihood of almost-bridging tracks the
    likelihood of bridging).
    """
    derived = {}
    for fc in classes:
        fault = fc.representative
        if isinstance(fault, (ShortFault, ExtraContactFault)):
            near = NearMissShortFault(nets=fault.nets)
            key = near.collapse_key()
            if key in derived:
                derived[key] = FaultClass(
                    representative=derived[key].representative,
                    count=derived[key].count + fc.count)
            else:
                derived[key] = FaultClass(representative=near,
                                          count=fc.count)
    result = list(derived.values())
    result.sort(key=lambda fc: (-fc.count,
                                fc.representative.collapse_key()))
    return result


def near_miss_model(fault: NearMissShortFault) -> FaultModel:
    """500 ohm || 1 fF bridge chain over the fault's nets."""
    nets = sorted(fault.nets)

    def apply(circuit: Circuit) -> None:
        for k, (a, b) in enumerate(zip(nets, nets[1:])):
            circuit.add(Resistor(f"FLT_nm_r_{k}_{a}_{b}", a, b,
                                 NEAR_MISS_RESISTANCE))
            circuit.add(Capacitor(f"FLT_nm_c_{k}_{a}_{b}", a, b,
                                  NEAR_MISS_CAPACITANCE))

    return FaultModel(name=f"near_miss:{'-'.join(nets)}", apply=apply)
