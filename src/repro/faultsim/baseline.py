"""Good-circuit baselines: compute once, reuse everywhere.

Every macro engine solves the *same* fault-free circuit before it can
judge a single fault: the comparator compiles its good space over
corners, the ladder solves its corner sweep, the clock and bias
generators run their nominal transients.  A :class:`MacroBaseline`
captures those results — the measurements that rebuild the good space
*and* the solution trajectories that warm-start the faulty Newton
solves — in one JSON-able blob, keyed per (macro, engine spec) in the
campaign's content-addressed store.  A resumed or re-run campaign then
adopts the baseline instead of re-simulating the fault-free circuit,
and ships it to pool workers so each process skips its own good-space
compile.

Trajectories are stored with *named* columns (node and branch names),
because a faulty circuit's unknown ordering differs from the good
circuit's (fault models add nodes and elements).  :func:`align_guide`
maps a stored trajectory onto any compiled circuit by name; unknowns
the baseline does not know start from zero, which simply reproduces
the cold-start seed for those entries.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: bump when the baseline payload layout changes
BASELINE_VERSION = 1


def _encode_array(a: np.ndarray) -> Dict:
    """Loss-free JSON encoding of a float array (base64 of float64)."""
    a = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
    return {"shape": list(a.shape),
            "data": base64.b64encode(a.tobytes()).decode("ascii")}


def _decode_array(payload: Dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.float64).reshape(
        [int(n) for n in payload["shape"]]).copy()


@dataclass
class Trajectory:
    """A solved waveform (or single operating point) with named columns.

    Attributes:
        times: timepoints, shape (nt,); ``[0.0]`` for a DC solution.
        xs: solution matrix, shape (nt, n_unknowns).
        node_cols: node name -> column index in ``xs``.
        branch_cols: branch (source) name -> column index in ``xs``.
    """

    times: np.ndarray
    xs: np.ndarray
    node_cols: Dict[str, int]
    branch_cols: Dict[str, int]

    @classmethod
    def from_result(cls, result) -> "Trajectory":
        """Capture a TransientResult (times+xs) or DCResult (x)."""
        compiled = result.compiled
        if hasattr(result, "times"):
            times = np.asarray(result.times, dtype=float)
            xs = np.asarray(result.xs, dtype=float)
        else:
            times = np.zeros(1)
            xs = np.asarray(result.x, dtype=float)[None, :]
        return cls(times=times, xs=xs,
                   node_cols=dict(compiled.node_index),
                   branch_cols=dict(compiled.branch_index))

    def to_dict(self) -> Dict:
        return {
            "times": _encode_array(self.times),
            "xs": _encode_array(self.xs),
            "node_cols": {k: int(v) for k, v in self.node_cols.items()},
            "branch_cols": {k: int(v)
                            for k, v in self.branch_cols.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Trajectory":
        return cls(times=_decode_array(data["times"]),
                   xs=_decode_array(data["xs"]),
                   node_cols={str(k): int(v)
                              for k, v in data["node_cols"].items()},
                   branch_cols={str(k): int(v)
                                for k, v in data["branch_cols"].items()})


def align_guide(compiled, trajectory: Optional[Trajectory]
                ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Map a stored trajectory onto a circuit's unknown ordering.

    Returns ``(times, xs)`` with ``xs`` shaped ``(nt, compiled.size)``,
    ready for the transient ``guide=`` parameter (row 0 doubles as the
    t=0 operating-point warm guess).  Unknowns absent from the
    trajectory (fault-model nodes, new branches) stay zero — for those
    entries the guide's step increment is zero and the seed degrades to
    the classic previous-solution start.
    """
    if trajectory is None:
        return None
    xs = np.zeros((trajectory.xs.shape[0], compiled.size))
    for name, col in compiled.node_index.items():
        src = trajectory.node_cols.get(name)
        if src is not None:
            xs[:, col] = trajectory.xs[:, src]
    for name, col in compiled.branch_index.items():
        src = trajectory.branch_cols.get(name)
        if src is not None:
            xs[:, col] = trajectory.xs[:, src]
    return trajectory.times, xs


def align_x0(compiled, trajectory: Optional[Trajectory]
             ) -> Optional[np.ndarray]:
    """First trajectory row aligned to a circuit (a DC warm guess)."""
    guide = align_guide(compiled, trajectory)
    if guide is None:
        return None
    return guide[1][0]


@dataclass
class MacroBaseline:
    """One macro's fault-free simulation results, ready to reuse.

    Attributes:
        macro: macro name the baseline belongs to.
        payload: engine-specific JSON-able data.  Each engine documents
            its own layout in ``export_baseline``; trajectories inside
            the payload are stored via :meth:`Trajectory.to_dict`.
    """

    macro: str
    payload: Dict

    def to_dict(self) -> Dict:
        return {"baseline_version": BASELINE_VERSION,
                "macro": self.macro, "payload": self.payload}

    @classmethod
    def from_dict(cls, data: Dict) -> Optional["MacroBaseline"]:
        """None for unknown versions (forces a clean recompute)."""
        if data.get("baseline_version") != BASELINE_VERSION:
            return None
        return cls(macro=str(data["macro"]), payload=data["payload"])


def coerce_payload(baseline) -> Optional[Dict]:
    """Whatever ``adopt_baseline`` was handed -> the payload dict.

    Accepts a :class:`MacroBaseline`, its :meth:`MacroBaseline.to_dict`
    wrapper (what the campaign store round-trips) or a bare payload
    dict.  Returns None — adoption declined, engine recomputes — for
    version-mismatched wrappers and anything unrecognisable.
    """
    if isinstance(baseline, MacroBaseline):
        return baseline.payload
    if isinstance(baseline, dict):
        if "baseline_version" in baseline:
            wrapped = MacroBaseline.from_dict(baseline)
            if wrapped is None:
                return None
            payload = wrapped.payload
        else:
            payload = baseline
        return payload if isinstance(payload, dict) else None
    return None
