"""Circuit-level fault models (paper section 3.2).

Each defect-simulator fault maps to a netlist transformation:

* metal / poly / diffusion shorts -> bridge resistor with the layer's
  material resistance (0.2 ohm metal; higher for poly and diffusion);
* extra contacts -> 2 ohm bridge;
* gate-oxide pinholes -> 2 kohm from the gate to source / drain /
  channel — three model variants, of which the engine keeps the
  worst-case (least detectable) signature, as the paper did;
* junction and thick-oxide pinholes -> 2 kohm leaks;
* opens -> the net is split according to the extracted terminal
  partition; split-off islands get a 1 Gohm leak to ground (floating
  nodes drift to a rail; taking them low is the standard worst case);
* new devices -> the diffusion net is split and a minimum-size
  transistor inserted across the split, its gate on the merged poly net
  (or floating -> leaked to ground);
* shorted devices -> a resistor across the transistor channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..circuit.elements import Capacitor, Resistor
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit, CircuitError
from ..defects.faults import (ExtraContactFault, Fault,
                              GateOxidePinholeFault, JunctionPinholeFault,
                              NewDeviceFault, OpenFault, ShortFault,
                              ShortedDeviceFault, ThickOxidePinholeFault)
from ..layout.layers import (EXTRA_CONTACT_RESISTANCE, PINHOLE_RESISTANCE,
                             SHORTED_DEVICE_RESISTANCE)

#: leak tying split-off (floating) islands to ground
FLOAT_LEAK_RESISTANCE = 1e9
#: minimum-size parasitic device dimensions
MIN_DEVICE_W = 2e-6
MIN_DEVICE_L = 1e-6


@dataclass(frozen=True)
class FaultModel:
    """One injectable model variant for a fault.

    Attributes:
        name: unique variant label (e.g. ``"gate_pinhole:M1:source"``).
        apply: callable mutating a (copied) circuit in place.
    """

    name: str
    apply: Callable[[Circuit], None]


class ModelError(Exception):
    """Fault cannot be modelled against the given netlist."""


def fault_models(fault: Fault, process=None) -> List[FaultModel]:
    """Model variants for *fault* (usually one; three for gate
    pinholes)."""
    if isinstance(fault, ShortFault):
        return [_bridge_model(f"short:{'-'.join(sorted(fault.nets))}",
                              sorted(fault.nets), fault.resistance)]
    if isinstance(fault, ExtraContactFault):
        return [_bridge_model(
            f"extra_contact:{'-'.join(sorted(fault.nets))}",
            sorted(fault.nets), EXTRA_CONTACT_RESISTANCE)]
    if isinstance(fault, ThickOxidePinholeFault):
        return [_bridge_model(
            f"thick_pinhole:{'-'.join(sorted(fault.nets))}",
            sorted(fault.nets), PINHOLE_RESISTANCE)]
    if isinstance(fault, JunctionPinholeFault):
        return [_bridge_model(
            f"junction_pinhole:{fault.net}-{fault.bulk_net}",
            [fault.net, fault.bulk_net], PINHOLE_RESISTANCE)]
    if isinstance(fault, GateOxidePinholeFault):
        return _gate_pinhole_models(fault)
    if isinstance(fault, ShortedDeviceFault):
        return [_shorted_device_model(fault)]
    if isinstance(fault, OpenFault):
        return [_open_model(fault)]
    if isinstance(fault, NewDeviceFault):
        return [_new_device_model(fault, process)]
    raise ModelError(f"no model for fault type {type(fault).__name__}")


# -- bridges -----------------------------------------------------------------


def _bridge_model(name: str, nets: List[str], resistance: float
                  ) -> FaultModel:
    def apply(circuit: Circuit) -> None:
        # chain of bridge resistors covers multi-net shorts
        for k, (a, b) in enumerate(zip(nets, nets[1:])):
            circuit.add(Resistor(f"FLT_{name}_{k}", a, b, resistance))
    return FaultModel(name=name, apply=apply)


# -- gate pinholes --------------------------------------------------------------


def _gate_pinhole_models(fault: GateOxidePinholeFault) -> List[FaultModel]:
    device = fault.device

    def to_terminal(terminal_index: int, label: str):
        def apply(circuit: Circuit) -> None:
            m = _device(circuit, device)
            gate = m.nodes[1]
            other = m.nodes[terminal_index]
            circuit.add(Resistor(f"FLT_gp_{device}_{label}", gate, other,
                                 PINHOLE_RESISTANCE))
        return apply

    def to_channel(circuit: Circuit) -> None:
        m = _device(circuit, device)
        gate, drain, source = m.nodes[1], m.nodes[0], m.nodes[2]
        mid = f"{device}__pinhole_ch"
        circuit.add(Resistor(f"FLT_gp_{device}_ch", gate, mid,
                             PINHOLE_RESISTANCE))
        # the channel point sits resistively between source and drain
        circuit.add(Resistor(f"FLT_gp_{device}_chs", mid, source, 500.0))
        circuit.add(Resistor(f"FLT_gp_{device}_chd", mid, drain, 500.0))

    return [
        FaultModel(f"gate_pinhole:{device}:source", to_terminal(2, "s")),
        FaultModel(f"gate_pinhole:{device}:drain", to_terminal(0, "d")),
        FaultModel(f"gate_pinhole:{device}:channel", to_channel),
    ]


def _shorted_device_model(fault: ShortedDeviceFault) -> FaultModel:
    def apply(circuit: Circuit) -> None:
        m = _device(circuit, fault.device)
        circuit.add(Resistor(f"FLT_sd_{fault.device}", m.nodes[0],
                             m.nodes[2], SHORTED_DEVICE_RESISTANCE))
    return FaultModel(name=f"shorted_device:{fault.device}", apply=apply)


# -- opens and new devices ---------------------------------------------------------


def _split_net(circuit: Circuit, net: str, partition, name: str
               ) -> List[str]:
    """Rewire the net according to the terminal partition.

    The island containing a port anchor (or, failing that, the largest
    island) keeps the original net name; every other island moves to a
    fresh node with a leak to ground.

    Returns:
        The new island node names.
    """
    groups = sorted(partition, key=lambda g: (-len(g), sorted(g)))
    keep = next((g for g in groups
                 if any(label.startswith("port:") for label in g)),
                groups[0])
    new_nodes = []
    for idx, group in enumerate(g for g in groups if g is not keep):
        new_node = f"{net}__{name}{idx}"
        new_nodes.append(new_node)
        for label in sorted(group):
            device, _, terminal = label.partition(":")
            if device.startswith("port:"):
                continue
            try:
                circuit.rename_terminal(device, int(terminal), new_node)
            except CircuitError:
                # the defect universe comes from the layout, which may
                # contain anchors absent from this testbench variant
                continue
        circuit.add(Resistor(f"FLT_leak_{new_node}", new_node, "gnd",
                             FLOAT_LEAK_RESISTANCE))
    if not circuit.elements_on_node(net):
        # every device terminal moved off the net (the kept island was
        # a port-only stub): keep the node alive as a floating stub so
        # circuit-edge measurements of it remain well-defined
        circuit.add(Resistor(f"FLT_leak_{net}__stub", net, "gnd",
                             FLOAT_LEAK_RESISTANCE))
    return new_nodes


def _open_model(fault: OpenFault) -> FaultModel:
    def apply(circuit: Circuit) -> None:
        _split_net(circuit, fault.net, fault.partition, "open")
    return FaultModel(
        name=f"open:{fault.net}:{len(fault.partition)}way", apply=apply)


def _new_device_model(fault: NewDeviceFault, process=None) -> FaultModel:
    from ..adc.process import typical

    def apply(circuit: Circuit) -> None:
        p = process or typical()
        islands = _split_net(circuit, fault.net, fault.partition, "nd")
        if not islands:
            return
        gate = fault.gate_net
        if gate is None:
            gate = f"{fault.net}__ndgate"
            circuit.add(Resistor(f"FLT_ndgate_{fault.net}", gate, "gnd",
                                 FLOAT_LEAK_RESISTANCE))
        params = p.nmos if fault.polarity == "n" else p.pmos
        bulk = "gnd" if fault.polarity == "n" else "vdd"
        circuit.add(Mosfet(f"FLT_nd_{fault.net}", fault.net, gate,
                           islands[0], bulk, params, w=MIN_DEVICE_W,
                           l=MIN_DEVICE_L, polarity=fault.polarity))
    return FaultModel(name=f"new_device:{fault.net}", apply=apply)


def _device(circuit: Circuit, name: str) -> Mosfet:
    element = circuit.element(name)
    if not isinstance(element, Mosfet):
        raise ModelError(f"{name!r} is not a MOSFET")
    return element


def inject(circuit: Circuit, model: FaultModel) -> Circuit:
    """Return a faulty copy of *circuit* with the model applied."""
    faulty = circuit.copy()
    model.apply(faulty)
    return faulty
