"""Fault signatures: what a fault looks like at the macro boundary.

Voltage signatures (paper Table 2): Output Stuck-At, Offset (> 8 mV),
Mixed, Clock value, No deviation.  Current signatures (paper Table 3):
IVdd, IDDQ (clock generator), Iinput, No deviation — a fault can carry
several current signatures at once (the table's percentages overlap).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np


class VoltageSignature(enum.Enum):
    """Macro-level voltage-domain fault signature."""

    OUTPUT_STUCK_AT = "output_stuck_at"
    OFFSET = "offset"
    MIXED = "mixed"
    CLOCK_VALUE = "clock_value"
    NONE = "no_deviation"


class CurrentMechanism(enum.Enum):
    """Current-based detection mechanisms."""

    IVDD = "ivdd"
    IDDQ = "iddq"
    IINPUT = "iinput"


#: phase labels in measurement order
PHASES = ("sampling", "amplification", "latching")
#: input polarities: analog input above / below the reference
POLARITIES = ("above", "below")


@dataclass(frozen=True)
class Measurement:
    """Quiescent measurements from one comparator transient.

    All current arrays are indexed by phase (sampling, amplification,
    latching).

    Attributes:
        decision: flipflop output decision (True = input above ref).
        ivdd: analog supply current per phase.
        iddq: clock-generator loading per phase (sum of clock-driver
            magnitudes — the clock generator's quiescent current).
        iin: analog input terminal current per phase.
        ivref: reference terminal current per phase.
        ibias: bias-line loading per phase (folds into IVdd at chip
            level: the bias generator draws it from the supply).
        clock_deviation: worst deviation of any clock line from its
            nominal level in any phase (volts).
        resolved: False when the simulation failed to converge (the
            fault breaks the circuit hard); measurements are zeros.
    """

    decision: bool
    ivdd: Tuple[float, float, float]
    iddq: Tuple[float, float, float]
    iin: Tuple[float, float, float]
    ivref: Tuple[float, float, float]
    ibias: Tuple[float, float, float]
    clock_deviation: float
    resolved: bool = True

    def to_dict(self) -> Dict:
        """Stable JSON-able form (the baseline-cache contract)."""
        return {
            "decision": self.decision,
            "ivdd": list(self.ivdd),
            "iddq": list(self.iddq),
            "iin": list(self.iin),
            "ivref": list(self.ivref),
            "ibias": list(self.ibias),
            "clock_deviation": self.clock_deviation,
            "resolved": self.resolved,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Measurement":
        """Inverse of :meth:`to_dict` (raises KeyError/TypeError on
        malformed input)."""
        def triple(key: str) -> Tuple[float, float, float]:
            a, b, c = (float(v) for v in data[key])
            return (a, b, c)

        return cls(decision=bool(data["decision"]),
                   ivdd=triple("ivdd"), iddq=triple("iddq"),
                   iin=triple("iin"), ivref=triple("ivref"),
                   ibias=triple("ibias"),
                   clock_deviation=float(data["clock_deviation"]),
                   resolved=bool(data.get("resolved", True)))


@dataclass(frozen=True)
class SignatureResult:
    """Complete macro-level signature of one fault model variant.

    Attributes:
        voltage: the voltage-domain signature category.
        offset_sign: +1 / -1 for OFFSET signatures (which side trips).
        mechanisms: current mechanisms that flag the fault.
        measurements: polarity -> Measurement (the "above"/"below" runs).
        violated_keys: the individual (quantity, phase, polarity)
            measurements that escape the good space — the fine-grained
            view the test-plan optimizer consumes.
        unresolved: simulation could not converge for some run.
    """

    voltage: VoltageSignature
    offset_sign: int
    mechanisms: FrozenSet[CurrentMechanism]
    measurements: Dict[str, Measurement]
    violated_keys: FrozenSet[Tuple[str, str, str]] = frozenset()
    unresolved: bool = False

    def detectability_rank(self) -> Tuple[int, int]:
        """Orders variants from hardest to easiest to detect.

        Used for the paper's worst-case gate-pinhole variant choice:
        fewer current mechanisms first, then weaker voltage signature.
        """
        voltage_rank = {
            VoltageSignature.NONE: 0,
            VoltageSignature.CLOCK_VALUE: 1,
            VoltageSignature.MIXED: 2,
            VoltageSignature.OFFSET: 3,
            VoltageSignature.OUTPUT_STUCK_AT: 4,
        }
        return (len(self.mechanisms), voltage_rank[self.voltage])


# ---------------------------------------------------------------------------
# signature vectorization (the fault-dictionary feature contract)
# ---------------------------------------------------------------------------

#: measured quantities in signature-vector order
SIGNATURE_QUANTITIES = ("ivdd", "iddq", "iin", "ivref")

#: voltage-signature categories that carry diagnostic information, in
#: signature-vector order.  ``NONE`` ("no deviation") is deliberately
#: absent: a record with no deviation anywhere must vectorize to the
#: all-zeros vector, the matcher's "inside the good space" sentinel.
SIGNATURE_VOLTAGE_ORDER = (
    VoltageSignature.OUTPUT_STUCK_AT,
    VoltageSignature.OFFSET,
    VoltageSignature.MIXED,
    VoltageSignature.CLOCK_VALUE,
)

#: current mechanisms in signature-vector order
SIGNATURE_MECHANISM_ORDER = (
    CurrentMechanism.IVDD,
    CurrentMechanism.IDDQ,
    CurrentMechanism.IINPUT,
)


def signature_feature_names() -> Tuple[str, ...]:
    """The stable feature ordering every signature vector follows.

    This tuple is the serialisation contract shared by dictionary
    build and query (``repro.diagnosis``): element *k* of any
    signature vector always means feature *k* of this list, across
    store version bumps.  Layout, in order:

    1. ``voltage:missing_codes`` — the macro-level missing-code
       verdict (1 bit);
    2. ``voltage:<signature>`` — one-hot over the deviating voltage
       signatures in :data:`SIGNATURE_VOLTAGE_ORDER` (4 bits);
    3. ``mechanism:<name>`` — coarse current mechanisms in
       :data:`SIGNATURE_MECHANISM_ORDER` (3 bits);
    4. ``current:<quantity>:<phase>:<polarity>`` — the fine-grained
       good-space violations, quantity-major over
       :data:`SIGNATURE_QUANTITIES` x :data:`PHASES` x
       :data:`POLARITIES` (24 bits).

    Extending the vector is append-only: new features go at the end
    under a new dictionary version, never in the middle.
    """
    names: List[str] = ["voltage:missing_codes"]
    names += [f"voltage:{sig.value}" for sig in SIGNATURE_VOLTAGE_ORDER]
    names += [f"mechanism:{m.value}"
              for m in SIGNATURE_MECHANISM_ORDER]
    names += [f"current:{q}:{phase}:{pol}"
              for q in SIGNATURE_QUANTITIES
              for phase in PHASES
              for pol in POLARITIES]
    return tuple(names)


#: cached feature list and index (the ordering is a constant)
_FEATURE_NAMES = signature_feature_names()
_VIOLATED_INDEX = {
    (q, phase, pol): _FEATURE_NAMES.index(f"current:{q}:{phase}:{pol}")
    for q in SIGNATURE_QUANTITIES
    for phase in PHASES
    for pol in POLARITIES}


def signature_vector(voltage_detected: bool,
                     voltage_signature: Optional[VoltageSignature],
                     mechanisms: FrozenSet[CurrentMechanism],
                     violated_keys: FrozenSet[Tuple[str, str, str]]
                     ) -> np.ndarray:
    """Vectorize one boundary signature into the stable feature order.

    Returns a float64 0/1 vector aligned to
    :func:`signature_feature_names`.  Violated keys outside the
    canonical quantity/phase/polarity grid (bespoke test keys some
    callers use) carry no feature and are ignored; an undetected
    record vectorizes to all zeros.
    """
    vec = np.zeros(len(_FEATURE_NAMES))
    if voltage_detected:
        vec[0] = 1.0
    if voltage_signature is not None and \
            voltage_signature in SIGNATURE_VOLTAGE_ORDER:
        vec[1 + SIGNATURE_VOLTAGE_ORDER.index(voltage_signature)] = 1.0
    offset = 1 + len(SIGNATURE_VOLTAGE_ORDER)
    for k, mech in enumerate(SIGNATURE_MECHANISM_ORDER):
        if mech in mechanisms:
            vec[offset + k] = 1.0
    for key in violated_keys:
        idx = _VIOLATED_INDEX.get(tuple(key))
        if idx is not None:
            vec[idx] = 1.0
    return vec


#: clock-line deviation beyond which the 'clock value' signature applies
CLOCK_DEVIATION_THRESHOLD = 0.15
#: the paper's offset threshold: one LSB of the 8-bit, 2-V-range ADC
OFFSET_THRESHOLD = 8e-3


def classify_voltage(decision_above_big: bool, decision_below_big: bool,
                     decision_above_small: Optional[bool],
                     decision_below_small: Optional[bool],
                     clock_deviation: float) -> Tuple[VoltageSignature,
                                                      int]:
    """Derive the voltage signature from probe decisions.

    Args:
        decision_above_big / below_big: decisions for inputs well above
            and well below the reference (+/- 100 mV).
        decision_above_small / below_small: decisions for inputs just
            above / below the reference (+/- 8 mV); None when the big
            probes already settle the classification.
        clock_deviation: worst clock-line deviation (volts).

    Returns:
        ``(signature, offset_sign)``.
    """
    if decision_above_big == decision_below_big:
        return VoltageSignature.OUTPUT_STUCK_AT, 0
    if decision_above_big is False and decision_below_big is True:
        return VoltageSignature.MIXED, 0
    # big probes correct; consult the small probes
    above_ok = decision_above_small is True
    below_ok = decision_below_small is False
    if above_ok and below_ok:
        if clock_deviation > CLOCK_DEVIATION_THRESHOLD:
            return VoltageSignature.CLOCK_VALUE, 0
        return VoltageSignature.NONE, 0
    if above_ok != below_ok:
        # trip point displaced beyond +/- 8 mV: an offset fault.  The
        # "below" probe tripping True means the decision fires early ->
        # positive input-referred offset; the "above" probe failing means
        # it fires late -> negative offset.
        return VoltageSignature.OFFSET, (+1 if above_ok else -1)
    return VoltageSignature.MIXED, 0
