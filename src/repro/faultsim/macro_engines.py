"""Fault-simulation engines for the non-comparator macros.

Each engine mirrors the comparator engine's contract: given collapsed
fault classes from the defect simulator, produce per-class
:class:`~repro.macrotest.coverage.DetectionRecord` entries (voltage
detectability via behavioral propagation, current mechanisms via the
good-space windows).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..adc.biasgen import biasgen_testbench
from ..adc.clockgen import (PHASES as CLOCK_PHASES, clock_levels,
                            clockgen_testbench, iddq)
from ..adc.comparator import CLOCK_PERIOD, build_testbench, \
    phase_measure_times, regeneration_windows
from ..adc.ladder import (N_TAPS, SEGMENTS_PER_COARSE, ladder_testbench,
                          tap_voltages)
from ..adc.process import Process, reduced_corners, typical
from ..adc.behavioral import ComparatorBehavior
from ..circuit.dc import ConvergenceError, operating_point
from ..circuit.elements import VoltageSource
from ..circuit.transient import supply_current, transient
from ..defects.collapse import FaultClass
from ..defects.faults import (Fault, GateOxidePinholeFault,
                              JunctionPinholeFault, NewDeviceFault,
                              OpenFault, ShortedDeviceFault)
from ..digital.faults import (BridgingFault, StuckAtFault,
                              iddq_detects_bridge, logic_detects_bridge,
                              detects_stuck_at, neighbouring_bridges)
from ..digital.netlist import LogicNetlist
from ..macrotest.coverage import DetectionRecord
from ..macrotest.propagate import (propagate_bank_behavior,
                                   propagate_clock_fault,
                                   propagate_ladder_fault)
from .goodspace import FLOOR_IDDQ, FLOOR_IVREF
from .models import fault_models, inject
from .noncat import NearMissShortFault, near_miss_model
from .signatures import CurrentMechanism


def translate_fault(fault: Fault, net_map: Dict[str, str],
                    device_map: Dict[str, str]) -> Fault:
    """Rename a fault's nets/devices (slice coordinates -> full-circuit
    coordinates)."""
    def net(n: str) -> str:
        return net_map.get(n, n)

    def dev(d: str) -> str:
        return device_map.get(d, d)

    def group(g):
        out = []
        for label in g:
            device, _, term = label.partition(":")
            out.append(f"{dev(device)}:{term}")
        return frozenset(out)

    kwargs = {}
    if hasattr(fault, "nets"):
        kwargs["nets"] = frozenset(net(n) for n in fault.nets)
    if hasattr(fault, "net"):
        kwargs["net"] = net(fault.net)
    if hasattr(fault, "bulk_net"):
        kwargs["bulk_net"] = net(fault.bulk_net)
    if hasattr(fault, "device"):
        kwargs["device"] = dev(fault.device)
    if hasattr(fault, "gate_net") and fault.gate_net is not None:
        kwargs["gate_net"] = net(fault.gate_net)
    if hasattr(fault, "partition"):
        kwargs["partition"] = frozenset(group(g)
                                        for g in fault.partition)
    return dataclasses.replace(fault, **kwargs)


# ---------------------------------------------------------------------------
# ladder
# ---------------------------------------------------------------------------

#: the analysed slice stands for the span starting at this tap — it
#: must be a coarse-pin multiple so the slice's coarse segment lands on
#: a real coarse segment of the full ladder
LADDER_SLICE_BASE = 128


@dataclass
class LadderFaultEngine:
    """DC fault simulation of the ladder macro.

    The defect campaign runs on a one-span slice; its faults are
    translated into the middle span of the full dual ladder, solved at
    DC, and judged on reference-terminal current, supply loading and
    the propagated tap voltages (missing-code test).

    Attributes:
        ivdd_window_halfwidth: chip-level IVdd acceptance half-width
            (from the comparator good space) for supply-loading faults.
    """

    process: Process = field(default_factory=typical)
    corners: Sequence[Process] = field(default_factory=reduced_corners)
    ivdd_window_halfwidth: float = 20e-3
    #: resolution of the terminal-difference current measurement
    iref_diff_floor: float = 200e-6

    def __post_init__(self) -> None:
        self._window: Optional[Tuple[float, float]] = None
        self._typ: Optional[Tuple[float, np.ndarray]] = None

    def _testbench(self, process: Process):
        tb = ladder_testbench(process)
        tb.add(VoltageSource("VDD", "vdd", "gnd", process.vdd))
        return tb

    def _solve(self, circuit):
        op = operating_point(circuit)
        taps = np.array([op.voltage(f"tap{k}")
                         for k in range(N_TAPS + 1)])
        return {
            # both reference terminals are measured separately: a short
            # to a rail pulls extra current from one terminal and
            # starves the other, which would cancel in a summed metric
            "ivrefp": -op.current("VREFP"),
            "ivrefn": op.current("VREFN"),
            "ivdd": -op.current("VDD"),
            "taps": taps,
        }

    def _net_map(self) -> Dict[str, str]:
        mapping = {f"tap{k}": f"tap{LADDER_SLICE_BASE + k}"
                   for k in range(SEGMENTS_PER_COARSE + 1)}
        return mapping

    def _device_map(self) -> Dict[str, str]:
        mapping = {f"RF{k}": f"RF{LADDER_SLICE_BASE + k}"
                   for k in range(SEGMENTS_PER_COARSE)}
        mapping["RC0"] = f"RC{LADDER_SLICE_BASE}"
        return mapping

    def good(self):
        """Typical solution plus per-terminal current windows over
        corners."""
        if self._typ is None:
            self._typ = self._solve(self._testbench(self.process))
            solutions = [self._solve(self._testbench(p))
                         for p in self.corners]
            self._window = {}
            for key in ("ivrefp", "ivrefn"):
                values = [s[key] for s in solutions]
                self._window[key] = (min(values) - FLOOR_IVREF,
                                     max(values) + FLOOR_IVREF)
        return self._typ, self._window

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        typ, windows = self.good()
        fault = translate_fault(fault_class.representative,
                                self._net_map(), self._device_map())
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        records = []
        for model in variants:
            tb = self._testbench(self.process)
            try:
                sol = self._solve(inject(tb, model))
            except ConvergenceError:
                records.append((True, {CurrentMechanism.IVDD}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            for key in ("ivrefp", "ivrefn"):
                lo, hi = windows[key]
                if not lo <= sol[key] <= hi:
                    mechanisms.add(CurrentMechanism.IINPUT)
            # terminal-difference measurement: the sheet-resistance
            # spread cancels between the two terminals, so any leak
            # from the ladder into another net is visible far below
            # the absolute-current window
            diff = abs(sol["ivrefp"] - sol["ivrefn"])
            typ_diff = abs(typ["ivrefp"] - typ["ivrefn"])
            if abs(diff - typ_diff) > self.iref_diff_floor:
                mechanisms.add(CurrentMechanism.IINPUT)
            if abs(sol["ivdd"] - typ["ivdd"]) > \
                    self.ivdd_window_halfwidth:
                mechanisms.add(CurrentMechanism.IVDD)
            voltage = propagate_ladder_fault(sol["taps"])
            records.append((voltage, mechanisms))
        # worst case (least detectable) variant, as for the comparator
        records.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = records[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type)

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# clock generator
# ---------------------------------------------------------------------------


@dataclass
class ClockgenFaultEngine:
    """Transient fault simulation of the clock generator macro."""

    process: Process = field(default_factory=typical)
    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    iddq_floor: float = FLOOR_IDDQ

    def __post_init__(self) -> None:
        self._good: Optional[dict] = None

    def _run(self, circuit):
        tr = transient(circuit, tstop=self.period, dt=self.dt)
        return {
            "iddq": iddq(tr, period=self.period),
            "levels": clock_levels(tr, period=self.period),
            "lows": {phase: tr.at_time(phase, frac * self.period)
                     for phase, frac in (("phi1", 0.50), ("phi2", 0.88),
                                         ("phi3", 0.17))},
        }

    def good(self) -> dict:
        if self._good is None:
            self._good = self._run(clockgen_testbench(self.process,
                                                      self.period))
        return self._good

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        good = self.good()
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        outcomes = []
        for model in variants:
            tb = clockgen_testbench(self.process, self.period)
            try:
                sol = self._run(inject(tb, model))
            except ConvergenceError:
                outcomes.append((True, {CurrentMechanism.IDDQ}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            if sol["iddq"] > good["iddq"] + self.iddq_floor:
                mechanisms.add(CurrentMechanism.IDDQ)
            vdd = self.process.vdd
            alive = {}
            degraded = False
            for phase in CLOCK_PHASES:
                high = sol["levels"][phase]
                low = sol["lows"][phase]
                alive[phase] = high > 0.7 * vdd and low < 0.3 * vdd
                if alive[phase] and (abs(high - vdd) > 0.15 or
                                     abs(low) > 0.15):
                    degraded = True
            voltage = propagate_clock_fault(alive, degraded)
            outcomes.append((voltage, mechanisms))
        outcomes.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = outcomes[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type)

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# bias generator
# ---------------------------------------------------------------------------


@dataclass
class BiasgenFaultEngine:
    """DC + comparator-bank fault simulation of the bias generator.

    A biasgen fault shifts vbn1/vbn2 for *every* comparator.  Each fault
    class is DC-solved; when the bias lines move more than a dead-band
    the comparator testbench is re-run with the faulty bias values to
    judge the bank's behaviour and the (x256) supply-current shift.
    """

    process: Process = field(default_factory=typical)
    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    ivdd_window_halfwidth: float = 20e-3
    #: bias shifts below this provably change nothing measurable
    dead_band: float = 0.02

    def __post_init__(self) -> None:
        self._good: Optional[dict] = None

    def _solve_bias(self, circuit) -> dict:
        op = operating_point(circuit)
        return {"vbn1": op.voltage("vbn1"), "vbn2": op.voltage("vbn2"),
                "ivdd": -op.current("VDD")}

    def _comparator_run(self, vbn1: float, vbn2: float, vin_offset: float
                        ) -> dict:
        tb = build_testbench(process=self.process,
                             vin=2.5 + vin_offset, vref=2.5,
                             period=self.period)
        tb.circuit.element("VBN1S").value = vbn1
        tb.circuit.element("VBN2S").value = vbn2
        tr = transient(tb.circuit, tstop=self.period, dt=self.dt,
                       fine_windows=regeneration_windows(self.period, 1))
        times = phase_measure_times(self.period, 0)
        ivdd = supply_current(tr, "VDD")
        samples = [float(ivdd[int(np.argmin(np.abs(tr.times - t)))])
                   for t in times]
        decision = tr.at_time("ffout", 0.97 * self.period) > \
            self.process.vdd / 2.0
        return {"ivdd": samples, "decision": bool(decision)}

    def good(self) -> dict:
        if self._good is None:
            bias = self._solve_bias(biasgen_testbench(self.process))
            above = self._comparator_run(bias["vbn1"], bias["vbn2"], 0.1)
            below = self._comparator_run(bias["vbn1"], bias["vbn2"],
                                         -0.1)
            self._good = {"bias": bias, "above": above, "below": below}
        return self._good

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        good = self.good()
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        outcomes = []
        for model in variants:
            tb = biasgen_testbench(self.process)
            try:
                bias = self._solve_bias(inject(tb, model))
            except ConvergenceError:
                outcomes.append((True, {CurrentMechanism.IVDD}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            d_own = bias["ivdd"] - good["bias"]["ivdd"]
            shift = max(abs(bias["vbn1"] - good["bias"]["vbn1"]),
                        abs(bias["vbn2"] - good["bias"]["vbn2"]))
            if shift < self.dead_band:
                if abs(d_own) > self.ivdd_window_halfwidth:
                    mechanisms.add(CurrentMechanism.IVDD)
                outcomes.append((False, mechanisms))
                continue
            try:
                above = self._comparator_run(bias["vbn1"], bias["vbn2"],
                                             0.1)
                below = self._comparator_run(bias["vbn1"], bias["vbn2"],
                                             -0.1)
            except ConvergenceError:
                outcomes.append((True, {CurrentMechanism.IVDD}))
                continue
            d_bank = max(
                abs(256 * (a - g))
                for a, g in zip(above["ivdd"] + below["ivdd"],
                                good["above"]["ivdd"] +
                                good["below"]["ivdd"]))
            if d_bank + abs(d_own) > self.ivdd_window_halfwidth:
                mechanisms.add(CurrentMechanism.IVDD)
            behavior = ComparatorBehavior()
            if above["decision"] == below["decision"]:
                behavior = ComparatorBehavior(stuck=above["decision"])
            elif above["decision"] is False:
                behavior = ComparatorBehavior(mixed_band=0.2)
            voltage = propagate_bank_behavior(behavior)
            outcomes.append((voltage, mechanisms))
        outcomes.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = outcomes[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type)

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# decoder (digital)
# ---------------------------------------------------------------------------


@dataclass
class DecoderFaultEngine:
    """Digital fault analysis of the thermometer decoder.

    Universe: bridging faults (the metallisation-short population, IDDQ
    plus wired-AND logic detection) and a stuck-at sample (the open /
    pinhole population, logic detection).  Vectors are exactly the 256
    thermometer codes that the triangular missing-code stimulus applies.
    """

    netlist: Optional[LogicNetlist] = None
    n_bridge_sample: int = 400
    n_stuck_sample: int = 200
    #: logic detection tries at most this many differing vectors per
    #: fault (underestimates logic coverage slightly; documented)
    max_logic_probes: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.netlist is None:
            from ..adc.decoder import build_decoder
            self.netlist = build_decoder(8)
        self._vectors: Optional[List[Dict[str, bool]]] = None
        self._values: Optional[List[Dict[str, bool]]] = None

    def vectors(self) -> List[Dict[str, bool]]:
        if self._vectors is None:
            from ..adc.decoder import thermometer_vector
            self._vectors = [thermometer_vector(code, 8)
                             for code in range(256)]
            self._values = [self.netlist.evaluate(v)
                            for v in self._vectors]
        return self._vectors

    def _good_values(self) -> List[Dict[str, bool]]:
        self.vectors()
        return self._values

    def run(self) -> Tuple[List[DetectionRecord], List[DetectionRecord]]:
        """Returns (bridge_records, stuck_records)."""
        rng = np.random.default_rng(self.seed)
        vectors = self.vectors()
        values = self._good_values()

        bridges = neighbouring_bridges(self.netlist)
        if len(bridges) > self.n_bridge_sample:
            idx = rng.choice(len(bridges), self.n_bridge_sample,
                             replace=False)
            bridges = [bridges[int(i)] for i in sorted(idx)]
        bridge_records = []
        for bridge in bridges:
            differing = [k for k, vals in enumerate(values)
                         if vals[bridge.net_a] != vals[bridge.net_b]]
            iddq_det = bool(differing)
            logic_det = False
            for k in differing[:self.max_logic_probes]:
                if logic_detects_bridge(self.netlist, bridge,
                                        vectors[k]):
                    logic_det = True
                    break
            bridge_records.append(DetectionRecord(
                count=1, voltage_detected=logic_det,
                mechanisms=frozenset({CurrentMechanism.IDDQ})
                if iddq_det else frozenset(),
                fault_type="short"))

        nets = sorted(self.netlist.nets())
        stuck_universe = [StuckAtFault(net, value)
                          for net in nets for value in (False, True)]
        if len(stuck_universe) > self.n_stuck_sample:
            idx = rng.choice(len(stuck_universe), self.n_stuck_sample,
                             replace=False)
            stuck_universe = [stuck_universe[int(i)]
                              for i in sorted(idx)]
        stuck_records = []
        for fault in stuck_universe:
            differing = [k for k, vals in enumerate(values)
                         if vals.get(fault.net) != fault.value]
            detected = False
            for k in differing[:self.max_logic_probes]:
                if detects_stuck_at(self.netlist, fault, vectors[k]):
                    detected = True
                    break
            stuck_records.append(DetectionRecord(
                count=1, voltage_detected=detected,
                mechanisms=frozenset(), fault_type="open"))
        return bridge_records, stuck_records
