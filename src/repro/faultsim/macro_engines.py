"""Fault-simulation engines for the non-comparator macros.

Each engine mirrors the comparator engine's contract: given collapsed
fault classes from the defect simulator, produce per-class
:class:`~repro.macrotest.coverage.DetectionRecord` entries (voltage
detectability via behavioral propagation, current mechanisms via the
good-space windows).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..adc.biasgen import biasgen_testbench
from ..adc.clockgen import (PHASES as CLOCK_PHASES, clock_levels,
                            clockgen_testbench, iddq)
from ..adc.comparator import CLOCK_PERIOD, build_testbench, \
    phase_measure_times, regeneration_windows
from ..adc.ladder import (N_TAPS, SEGMENTS_PER_COARSE, ladder_testbench,
                          tap_voltages)
from ..adc.process import Process, reduced_corners, typical
from ..adc.behavioral import ComparatorBehavior
from ..circuit.batch import operating_point_lanes, transient_lanes
from ..circuit.dc import ConvergenceError, DCResult
from ..circuit.elements import VoltageSource
from ..circuit.transient import TransientResult, supply_current
from ..defects.collapse import FaultClass
from ..defects.faults import (Fault, GateOxidePinholeFault,
                              JunctionPinholeFault, NewDeviceFault,
                              OpenFault, ShortedDeviceFault)
from ..digital.faults import (BridgingFault, StuckAtFault,
                              iddq_detects_bridge, logic_detects_bridge,
                              detects_stuck_at, neighbouring_bridges)
from ..digital.netlist import LogicNetlist
from ..macrotest.coverage import DetectionRecord
from ..macrotest.propagate import (propagate_bank_behavior,
                                   propagate_clock_fault,
                                   propagate_ladder_fault)
from .baseline import (MacroBaseline, Trajectory, align_guide,
                       align_x0, coerce_payload)
from .goodspace import FLOOR_IDDQ, FLOOR_IVREF
from .models import fault_models, inject
from .noncat import NearMissShortFault, near_miss_model
from .signatures import CurrentMechanism


def _detected_by(voltage: bool, mechanisms) -> Optional[str]:
    """First detecting stimulus in schedule order (current first —
    the quiescent measurements ride on runs already made)."""
    if mechanisms:
        return "current"
    if voltage:
        return "voltage"
    return None


def translate_fault(fault: Fault, net_map: Dict[str, str],
                    device_map: Dict[str, str]) -> Fault:
    """Rename a fault's nets/devices (slice coordinates -> full-circuit
    coordinates)."""
    def net(n: str) -> str:
        return net_map.get(n, n)

    def dev(d: str) -> str:
        return device_map.get(d, d)

    def group(g):
        out = []
        for label in g:
            device, _, term = label.partition(":")
            out.append(f"{dev(device)}:{term}")
        return frozenset(out)

    kwargs = {}
    if hasattr(fault, "nets"):
        kwargs["nets"] = frozenset(net(n) for n in fault.nets)
    if hasattr(fault, "net"):
        kwargs["net"] = net(fault.net)
    if hasattr(fault, "bulk_net"):
        kwargs["bulk_net"] = net(fault.bulk_net)
    if hasattr(fault, "device"):
        kwargs["device"] = dev(fault.device)
    if hasattr(fault, "gate_net") and fault.gate_net is not None:
        kwargs["gate_net"] = net(fault.gate_net)
    if hasattr(fault, "partition"):
        kwargs["partition"] = frozenset(group(g)
                                        for g in fault.partition)
    return dataclasses.replace(fault, **kwargs)


# ---------------------------------------------------------------------------
# ladder
# ---------------------------------------------------------------------------

#: the analysed slice stands for the span starting at this tap — it
#: must be a coarse-pin multiple so the slice's coarse segment lands on
#: a real coarse segment of the full ladder
LADDER_SLICE_BASE = 128


@dataclass
class LadderFaultEngine:
    """DC fault simulation of the ladder macro.

    The defect campaign runs on a one-span slice; its faults are
    translated into the middle span of the full dual ladder, solved at
    DC, and judged on reference-terminal current, supply loading and
    the propagated tap voltages (missing-code test).

    Attributes:
        ivdd_window_halfwidth: chip-level IVdd acceptance half-width
            (from the comparator good space) for supply-loading faults.
        warm_start: seed the faulty DC Newton solves from the good
            ladder solution (gmin/source stepping stays as fallback).
        drop: reuse the fault-free missing-code verdict for variants
            whose tap vector is bit-identical to the good one (their
            behavioral propagation is the same pure function call).
    """

    process: Process = field(default_factory=typical)
    corners: Sequence[Process] = field(default_factory=reduced_corners)
    ivdd_window_halfwidth: float = 20e-3
    #: resolution of the terminal-difference current measurement
    iref_diff_floor: float = 200e-6
    #: solve structurally identical circuits through the batched kernel
    batch: bool = True
    warm_start: bool = True
    drop: bool = True
    #: linear backend for the batched solves (see
    #: :func:`repro.circuit.backend.resolve_solver`)
    solver: str = "auto"

    def __post_init__(self) -> None:
        self._window: Optional[Tuple[float, float]] = None
        self._typ: Optional[Tuple[float, np.ndarray]] = None
        self._guide: Optional[Trajectory] = None
        self._good_voltage: Optional[bool] = None
        self.baseline_source = "computed"
        self.propagations_dropped = 0

    def _testbench(self, process: Process):
        tb = ladder_testbench(process)
        tb.add(VoltageSource("VDD", "vdd", "gnd", process.vdd))
        return tb

    def _extract(self, op: DCResult) -> dict:
        taps = np.array([op.voltage(f"tap{k}")
                         for k in range(N_TAPS + 1)])
        return {
            # both reference terminals are measured separately: a short
            # to a rail pulls extra current from one terminal and
            # starves the other, which would cancel in a summed metric
            "ivrefp": -op.current("VREFP"),
            "ivrefn": op.current("VREFN"),
            "ivdd": -op.current("VDD"),
            "taps": taps,
        }

    def _solve_raw(self, circuits, warm: bool = False):
        """Raw DC outcomes, optionally warm-started off the baseline."""
        guesses = None
        if warm and self.warm_start and self._guide is not None:
            guesses = [align_x0(c.compile(), self._guide)
                       for c in circuits]
        return operating_point_lanes(circuits, batch=self.batch,
                                     x0_guesses=guesses,
                                     solver=self.solver)

    def _solve_many(self, circuits, warm: bool = False):
        """Solve several circuits, batching identical structures.

        Returns per-circuit dicts, or the lane's
        :class:`ConvergenceError` where the solve failed.
        """
        return [out if isinstance(out, ConvergenceError)
                else self._extract(out)
                for out in self._solve_raw(circuits, warm=warm)]

    def _solve(self, circuit):
        sol = self._solve_many([circuit])[0]
        if isinstance(sol, ConvergenceError):
            raise sol
        return sol

    def _net_map(self) -> Dict[str, str]:
        mapping = {f"tap{k}": f"tap{LADDER_SLICE_BASE + k}"
                   for k in range(SEGMENTS_PER_COARSE + 1)}
        return mapping

    def _device_map(self) -> Dict[str, str]:
        mapping = {f"RF{k}": f"RF{LADDER_SLICE_BASE + k}"
                   for k in range(SEGMENTS_PER_COARSE)}
        mapping["RC0"] = f"RC{LADDER_SLICE_BASE}"
        return mapping

    def good(self):
        """Typical solution plus per-terminal current windows over
        corners.

        The typical and corner testbenches are structurally identical,
        so the whole fault-free sweep solves as one batched DC ladder.
        """
        if self._typ is None:
            circuits = [self._testbench(self.process)] + \
                [self._testbench(p) for p in self.corners]
            raw = self._solve_raw(circuits)
            for out in raw:
                if isinstance(out, ConvergenceError):
                    raise out
            self._guide = Trajectory.from_result(raw[0])
            solved = [self._extract(out) for out in raw]
            self._typ = solved[0]
            solutions = solved[1:]
            self._window = {}
            for key in ("ivrefp", "ivrefn"):
                values = [s[key] for s in solutions]
                self._window[key] = (min(values) - FLOOR_IVREF,
                                     max(values) + FLOOR_IVREF)
        return self._typ, self._window

    def export_baseline(self) -> MacroBaseline:
        """The fault-free sweep as a shareable baseline blob."""
        typ, windows = self.good()
        payload = {
            "typ": {"ivrefp": typ["ivrefp"], "ivrefn": typ["ivrefn"],
                    "ivdd": typ["ivdd"],
                    "taps": [float(v) for v in typ["taps"]]},
            "window": {key: [lo, hi]
                       for key, (lo, hi) in windows.items()},
            "guide": self._guide.to_dict() if self._guide else None,
        }
        return MacroBaseline(macro="ladder", payload=payload)

    def adopt_baseline(self, baseline) -> bool:
        """Reuse an exported baseline; False if it does not fit."""
        payload = coerce_payload(baseline)
        if payload is None:
            return False
        try:
            typ = {"ivrefp": float(payload["typ"]["ivrefp"]),
                   "ivrefn": float(payload["typ"]["ivrefn"]),
                   "ivdd": float(payload["typ"]["ivdd"]),
                   "taps": np.array([float(v)
                                     for v in payload["typ"]["taps"]])}
            window = {str(k): (float(v[0]), float(v[1]))
                      for k, v in payload["window"].items()}
            guide = (Trajectory.from_dict(payload["guide"])
                     if payload.get("guide") else None)
        except (KeyError, TypeError, ValueError):
            return False
        if set(window) != {"ivrefp", "ivrefn"} or \
                len(typ["taps"]) != N_TAPS + 1:
            return False
        self._typ = typ
        self._window = window
        self._guide = guide
        self.baseline_source = "adopted"
        return True

    def _propagate(self, taps: np.ndarray, typ: dict) -> bool:
        """Missing-code verdict, dropping bit-identical-to-good taps.

        :func:`propagate_ladder_fault` is a pure function of the tap
        vector, so reusing the fault-free verdict for an identical
        vector cannot change any record.
        """
        if self.drop and np.array_equal(taps, typ["taps"]):
            if self._good_voltage is None:
                self._good_voltage = propagate_ladder_fault(typ["taps"])
            else:
                self.propagations_dropped += 1
            return self._good_voltage
        return propagate_ladder_fault(taps)

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        typ, windows = self.good()
        fault = translate_fault(fault_class.representative,
                                self._net_map(), self._device_map())
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        solutions = self._solve_many(
            [inject(self._testbench(self.process), model)
             for model in variants], warm=True)
        records = []
        for sol in solutions:
            if isinstance(sol, ConvergenceError):
                records.append((True, {CurrentMechanism.IVDD}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            for key in ("ivrefp", "ivrefn"):
                lo, hi = windows[key]
                if not lo <= sol[key] <= hi:
                    mechanisms.add(CurrentMechanism.IINPUT)
            # terminal-difference measurement: the sheet-resistance
            # spread cancels between the two terminals, so any leak
            # from the ladder into another net is visible far below
            # the absolute-current window
            diff = abs(sol["ivrefp"] - sol["ivrefn"])
            typ_diff = abs(typ["ivrefp"] - typ["ivrefn"])
            if abs(diff - typ_diff) > self.iref_diff_floor:
                mechanisms.add(CurrentMechanism.IINPUT)
            if abs(sol["ivdd"] - typ["ivdd"]) > \
                    self.ivdd_window_halfwidth:
                mechanisms.add(CurrentMechanism.IVDD)
            voltage = self._propagate(sol["taps"], typ)
            records.append((voltage, mechanisms))
        # worst case (least detectable) variant, as for the comparator
        records.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = records[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type,
                               detected_by=_detected_by(voltage,
                                                        mechanisms))

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# clock generator
# ---------------------------------------------------------------------------


@dataclass
class ClockgenFaultEngine:
    """Transient fault simulation of the clock generator macro.

    Attributes:
        warm_start: seed faulty transients from the good trajectory.
        drop: memoise the chip-level missing-code propagation on the
            (phase-alive, degraded) signature — once a signature is
            known to stay inside (or leave) the good space, identical
            signatures reuse the verdict instead of re-running the
            behavioral ADC.
    """

    process: Process = field(default_factory=typical)
    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    iddq_floor: float = FLOOR_IDDQ
    #: solve structurally identical circuits through the batched kernel
    batch: bool = True
    warm_start: bool = True
    drop: bool = True
    #: linear backend for the batched solves (see
    #: :func:`repro.circuit.backend.resolve_solver`)
    solver: str = "auto"

    def __post_init__(self) -> None:
        self._good: Optional[dict] = None
        self._guide: Optional[Trajectory] = None
        self._propagate_memo: Dict[Tuple, bool] = {}
        self.baseline_source = "computed"
        self.propagations_dropped = 0

    def _extract(self, tr: TransientResult) -> dict:
        return {
            "iddq": iddq(tr, period=self.period),
            "levels": clock_levels(tr, period=self.period),
            "lows": {phase: tr.at_time(phase, frac * self.period)
                     for phase, frac in (("phi1", 0.50), ("phi2", 0.88),
                                         ("phi3", 0.17))},
        }

    def _run_raw(self, circuits, warm: bool = False):
        guides = None
        if warm and self.warm_start and self._guide is not None:
            guides = [align_guide(c.compile(), self._guide)
                      for c in circuits]
        return transient_lanes(circuits, tstop=self.period,
                               dt=self.dt, batch=self.batch,
                               guides=guides, solver=self.solver)

    def _run_many(self, circuits, warm: bool = False):
        """Transients for several circuits, batching identical
        structures (e.g. a class's conductance-only model variants)."""
        return [out if isinstance(out, ConvergenceError)
                else self._extract(out)
                for out in self._run_raw(circuits, warm=warm)]

    def _run(self, circuit):
        sol = self._run_many([circuit])[0]
        if isinstance(sol, ConvergenceError):
            raise sol
        return sol

    def good(self) -> dict:
        if self._good is None:
            out = self._run_raw([clockgen_testbench(self.process,
                                                    self.period)])[0]
            if isinstance(out, ConvergenceError):
                raise out
            self._guide = Trajectory.from_result(out)
            self._good = self._extract(out)
        return self._good

    def export_baseline(self) -> MacroBaseline:
        """The fault-free run as a shareable baseline blob."""
        good = self.good()
        payload = {
            "good": {"iddq": good["iddq"],
                     "levels": {k: float(v)
                                for k, v in good["levels"].items()},
                     "lows": {k: float(v)
                              for k, v in good["lows"].items()}},
            "guide": self._guide.to_dict() if self._guide else None,
        }
        return MacroBaseline(macro="clockgen", payload=payload)

    def adopt_baseline(self, baseline) -> bool:
        """Reuse an exported baseline; False if it does not fit."""
        payload = coerce_payload(baseline)
        if payload is None:
            return False
        try:
            good = {"iddq": float(payload["good"]["iddq"]),
                    "levels": {str(k): float(v) for k, v
                               in payload["good"]["levels"].items()},
                    "lows": {str(k): float(v) for k, v
                             in payload["good"]["lows"].items()}}
            guide = (Trajectory.from_dict(payload["guide"])
                     if payload.get("guide") else None)
        except (KeyError, TypeError, ValueError):
            return False
        if set(good["levels"]) != set(CLOCK_PHASES) or \
                set(good["lows"]) != set(CLOCK_PHASES):
            return False
        self._good = good
        self._guide = guide
        self.baseline_source = "adopted"
        return True

    def _propagate(self, alive: dict, degraded: bool) -> bool:
        """Missing-code verdict, memoised per signature under drop.

        :func:`propagate_clock_fault` is a pure function of the
        signature, so the memo cannot change any record.
        """
        if not self.drop:
            return propagate_clock_fault(alive, degraded)
        key = (tuple(sorted(alive.items())), degraded)
        verdict = self._propagate_memo.get(key)
        if verdict is None:
            verdict = propagate_clock_fault(alive, degraded)
            self._propagate_memo[key] = verdict
        else:
            self.propagations_dropped += 1
        return verdict

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        good = self.good()
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        solutions = self._run_many(
            [inject(clockgen_testbench(self.process, self.period), model)
             for model in variants], warm=True)
        outcomes = []
        for sol in solutions:
            if isinstance(sol, ConvergenceError):
                outcomes.append((True, {CurrentMechanism.IDDQ}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            if sol["iddq"] > good["iddq"] + self.iddq_floor:
                mechanisms.add(CurrentMechanism.IDDQ)
            vdd = self.process.vdd
            alive = {}
            degraded = False
            for phase in CLOCK_PHASES:
                high = sol["levels"][phase]
                low = sol["lows"][phase]
                alive[phase] = high > 0.7 * vdd and low < 0.3 * vdd
                if alive[phase] and (abs(high - vdd) > 0.15 or
                                     abs(low) > 0.15):
                    degraded = True
            voltage = self._propagate(alive, degraded)
            outcomes.append((voltage, mechanisms))
        outcomes.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = outcomes[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type,
                               detected_by=_detected_by(voltage,
                                                        mechanisms))

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# bias generator
# ---------------------------------------------------------------------------


@dataclass
class BiasgenFaultEngine:
    """DC + comparator-bank fault simulation of the bias generator.

    A biasgen fault shifts vbn1/vbn2 for *every* comparator.  Each fault
    class is DC-solved; when the bias lines move more than a dead-band
    the comparator testbench is re-run with the faulty bias values to
    judge the bank's behaviour and the (x256) supply-current shift.
    """

    process: Process = field(default_factory=typical)
    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    ivdd_window_halfwidth: float = 20e-3
    #: bias shifts below this provably change nothing measurable
    dead_band: float = 0.02
    #: solve structurally identical circuits through the batched kernel
    batch: bool = True
    #: seed faulty solves from the good bias point / comparator runs
    warm_start: bool = True
    #: skip the comparator-bank re-run for dead-band bias shifts
    drop: bool = True
    #: linear backend for the batched solves (see
    #: :func:`repro.circuit.backend.resolve_solver`)
    solver: str = "auto"

    def __post_init__(self) -> None:
        self._good: Optional[dict] = None
        self._bias_guide: Optional[Trajectory] = None
        self._comp_guides: Dict[str, Trajectory] = {}
        self.baseline_source = "computed"
        self.reruns_dropped = 0

    def _solve_bias(self, circuit, warm: bool = False) -> dict:
        guesses = None
        if warm and self.warm_start and self._bias_guide is not None:
            guesses = [align_x0(circuit.compile(), self._bias_guide)]
        out = operating_point_lanes([circuit], batch=self.batch,
                                    x0_guesses=guesses,
                                    solver=self.solver)[0]
        if isinstance(out, ConvergenceError):
            raise out
        return {"vbn1": out.voltage("vbn1"), "vbn2": out.voltage("vbn2"),
                "ivdd": -out.current("VDD")}

    def _comparator_raw(self, vbn1: float, vbn2: float,
                        vin_offsets: Sequence[float],
                        warm: bool = False):
        """Raw comparator-bank transients at several input offsets with
        shifted bias lines — one batched transient (the lanes differ
        only in source values)."""
        circuits = []
        guides = [] if warm and self.warm_start and self._comp_guides \
            else None
        for off in vin_offsets:
            tb = build_testbench(process=self.process,
                                 vin=2.5 + off, vref=2.5,
                                 period=self.period)
            tb.circuit.element("VBN1S").value = vbn1
            tb.circuit.element("VBN2S").value = vbn2
            circuits.append(tb.circuit)
            if guides is not None:
                trajectory = self._comp_guides.get(
                    "above" if off > 0 else "below")
                guides.append(align_guide(tb.circuit.compile(),
                                          trajectory))
        return transient_lanes(
            circuits, tstop=self.period, dt=self.dt,
            fine_windows=regeneration_windows(self.period, 1),
            batch=self.batch, guides=guides, solver=self.solver)

    def _extract_comparator(self, tr: TransientResult) -> dict:
        times = phase_measure_times(self.period, 0)
        ivdd = supply_current(tr, "VDD")
        samples = [float(ivdd[int(np.argmin(np.abs(tr.times - t)))])
                   for t in times]
        decision = tr.at_time("ffout", 0.97 * self.period) > \
            self.process.vdd / 2.0
        return {"ivdd": samples, "decision": bool(decision)}

    def _comparator_runs(self, vbn1: float, vbn2: float,
                         vin_offsets: Sequence[float],
                         warm: bool = False) -> List[dict]:
        results = []
        for tr in self._comparator_raw(vbn1, vbn2, vin_offsets,
                                       warm=warm):
            if isinstance(tr, ConvergenceError):
                raise tr
            results.append(self._extract_comparator(tr))
        return results

    def _comparator_run(self, vbn1: float, vbn2: float, vin_offset: float
                        ) -> dict:
        return self._comparator_runs(vbn1, vbn2, [vin_offset])[0]

    def good(self) -> dict:
        if self._good is None:
            bias_circuit = biasgen_testbench(self.process)
            guesses = None
            if self.warm_start and self._bias_guide is not None:
                guesses = [align_x0(bias_circuit.compile(),
                                    self._bias_guide)]
            out = operating_point_lanes([bias_circuit],
                                        batch=self.batch,
                                        x0_guesses=guesses,
                                        solver=self.solver)[0]
            if isinstance(out, ConvergenceError):
                raise out
            self._bias_guide = Trajectory.from_result(out)
            bias = {"vbn1": out.voltage("vbn1"),
                    "vbn2": out.voltage("vbn2"),
                    "ivdd": -out.current("VDD")}
            raws = self._comparator_raw(bias["vbn1"], bias["vbn2"],
                                        [0.1, -0.1])
            results = []
            for pol, tr in zip(("above", "below"), raws):
                if isinstance(tr, ConvergenceError):
                    raise tr
                self._comp_guides[pol] = Trajectory.from_result(tr)
                results.append(self._extract_comparator(tr))
            self._good = {"bias": bias, "above": results[0],
                          "below": results[1]}
        return self._good

    def export_baseline(self) -> MacroBaseline:
        """The fault-free solves as a shareable baseline blob."""
        good = self.good()
        payload = {
            "bias": dict(good["bias"]),
            "above": {"ivdd": list(good["above"]["ivdd"]),
                      "decision": good["above"]["decision"]},
            "below": {"ivdd": list(good["below"]["ivdd"]),
                      "decision": good["below"]["decision"]},
            "bias_guide": (self._bias_guide.to_dict()
                           if self._bias_guide else None),
            "comp_guides": {pol: t.to_dict()
                            for pol, t in self._comp_guides.items()},
        }
        return MacroBaseline(macro="biasgen", payload=payload)

    def adopt_baseline(self, baseline) -> bool:
        """Reuse an exported baseline; False if it does not fit."""
        payload = coerce_payload(baseline)
        if payload is None:
            return False
        try:
            bias = {k: float(payload["bias"][k])
                    for k in ("vbn1", "vbn2", "ivdd")}
            runs = {pol: {"ivdd": [float(v)
                                   for v in payload[pol]["ivdd"]],
                          "decision": bool(payload[pol]["decision"])}
                    for pol in ("above", "below")}
            bias_guide = (Trajectory.from_dict(payload["bias_guide"])
                          if payload.get("bias_guide") else None)
            comp_guides = {str(pol): Trajectory.from_dict(t)
                           for pol, t
                           in payload.get("comp_guides", {}).items()}
        except (KeyError, TypeError, ValueError):
            return False
        self._good = {"bias": bias, "above": runs["above"],
                      "below": runs["below"]}
        self._bias_guide = bias_guide
        self._comp_guides = comp_guides
        self.baseline_source = "adopted"
        return True

    def simulate_class(self, fault_class: FaultClass) -> DetectionRecord:
        good = self.good()
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.process)
        outcomes = []
        for model in variants:
            tb = biasgen_testbench(self.process)
            try:
                bias = self._solve_bias(inject(tb, model), warm=True)
            except ConvergenceError:
                outcomes.append((True, {CurrentMechanism.IVDD}))
                continue
            mechanisms: Set[CurrentMechanism] = set()
            d_own = bias["ivdd"] - good["bias"]["ivdd"]
            shift = max(abs(bias["vbn1"] - good["bias"]["vbn1"]),
                        abs(bias["vbn2"] - good["bias"]["vbn2"]))
            if self.drop and shift < self.dead_band:
                # detection-driven drop: the bias lines stayed inside
                # the dead band, so the bank re-run cannot move any
                # decision; only the macro's own supply draw remains
                self.reruns_dropped += 1
                if abs(d_own) > self.ivdd_window_halfwidth:
                    mechanisms.add(CurrentMechanism.IVDD)
                outcomes.append((False, mechanisms))
                continue
            try:
                above, below = self._comparator_runs(
                    bias["vbn1"], bias["vbn2"], [0.1, -0.1],
                    warm=True)
            except ConvergenceError:
                outcomes.append((True, {CurrentMechanism.IVDD}))
                continue
            d_bank = max(
                abs(256 * (a - g))
                for a, g in zip(above["ivdd"] + below["ivdd"],
                                good["above"]["ivdd"] +
                                good["below"]["ivdd"]))
            if d_bank + abs(d_own) > self.ivdd_window_halfwidth:
                mechanisms.add(CurrentMechanism.IVDD)
            behavior = ComparatorBehavior()
            if above["decision"] == below["decision"]:
                behavior = ComparatorBehavior(stuck=above["decision"])
            elif above["decision"] is False:
                behavior = ComparatorBehavior(mixed_band=0.2)
            voltage = propagate_bank_behavior(behavior)
            outcomes.append((voltage, mechanisms))
        outcomes.sort(key=lambda r: (len(r[1]), r[0]))
        voltage, mechanisms = outcomes[0]
        return DetectionRecord(count=fault_class.count,
                               voltage_detected=voltage,
                               mechanisms=frozenset(mechanisms),
                               fault_type=fault_class.fault_type,
                               detected_by=_detected_by(voltage,
                                                        mechanisms))

    def run(self, classes: Sequence[FaultClass]) -> List[DetectionRecord]:
        return [self.simulate_class(fc) for fc in classes]


# ---------------------------------------------------------------------------
# decoder (digital)
# ---------------------------------------------------------------------------


@dataclass
class DecoderFaultEngine:
    """Digital fault analysis of the thermometer decoder.

    Universe: bridging faults (the metallisation-short population, IDDQ
    plus wired-AND logic detection) and a stuck-at sample (the open /
    pinhole population, logic detection).  Vectors are exactly the 256
    thermometer codes that the triangular missing-code stimulus applies.
    """

    netlist: Optional[LogicNetlist] = None
    n_bridge_sample: int = 400
    n_stuck_sample: int = 200
    #: logic detection tries at most this many differing vectors per
    #: fault (underestimates logic coverage slightly; documented)
    max_logic_probes: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.netlist is None:
            from ..adc.decoder import build_decoder
            self.netlist = build_decoder(8)
        self._vectors: Optional[List[Dict[str, bool]]] = None
        self._values: Optional[List[Dict[str, bool]]] = None

    def vectors(self) -> List[Dict[str, bool]]:
        if self._vectors is None:
            from ..adc.decoder import thermometer_vector
            self._vectors = [thermometer_vector(code, 8)
                             for code in range(256)]
            self._values = [self.netlist.evaluate(v)
                            for v in self._vectors]
        return self._vectors

    def _good_values(self) -> List[Dict[str, bool]]:
        self.vectors()
        return self._values

    def simulate_class(self, fault) -> DetectionRecord:
        """Detection record of one digital fault (the
        :class:`~repro.faultsim.FaultEngine` contract).

        Accepts a :class:`~repro.digital.faults.BridgingFault` or
        :class:`~repro.digital.faults.StuckAtFault` (the decoder's
        fault universe is digital, not a collapsed analog class).
        """
        vectors = self.vectors()
        values = self._good_values()
        if isinstance(fault, BridgingFault):
            differing = [k for k, vals in enumerate(values)
                         if vals[fault.net_a] != vals[fault.net_b]]
            iddq_det = bool(differing)
            logic_det = False
            for k in differing[:self.max_logic_probes]:
                if logic_detects_bridge(self.netlist, fault,
                                        vectors[k]):
                    logic_det = True
                    break
            mechanisms = frozenset({CurrentMechanism.IDDQ}) \
                if iddq_det else frozenset()
            return DetectionRecord(
                count=1, voltage_detected=logic_det,
                mechanisms=mechanisms,
                fault_type="short",
                detected_by=_detected_by(logic_det, mechanisms))
        if isinstance(fault, StuckAtFault):
            differing = [k for k, vals in enumerate(values)
                         if vals.get(fault.net) != fault.value]
            detected = False
            for k in differing[:self.max_logic_probes]:
                if detects_stuck_at(self.netlist, fault, vectors[k]):
                    detected = True
                    break
            return DetectionRecord(
                count=1, voltage_detected=detected,
                mechanisms=frozenset(), fault_type="open",
                detected_by=_detected_by(detected, frozenset()))
        raise TypeError(f"unsupported decoder fault {fault!r}")

    def run(self, rng: Optional[np.random.Generator] = None
            ) -> Tuple[List[DetectionRecord], List[DetectionRecord]]:
        """Returns (bridge_records, stuck_records).

        ``self.seed`` is ignored when an explicit *rng* is given.
        """
        rng = rng if rng is not None else np.random.default_rng(self.seed)

        bridges = neighbouring_bridges(self.netlist)
        if len(bridges) > self.n_bridge_sample:
            idx = rng.choice(len(bridges), self.n_bridge_sample,
                             replace=False)
            bridges = [bridges[int(i)] for i in sorted(idx)]
        bridge_records = [self.simulate_class(b) for b in bridges]

        nets = sorted(self.netlist.nets())
        stuck_universe = [StuckAtFault(net, value)
                          for net in nets for value in (False, True)]
        if len(stuck_universe) > self.n_stuck_sample:
            idx = rng.choice(len(stuck_universe), self.n_stuck_sample,
                             replace=False)
            stuck_universe = [stuck_universe[int(i)]
                              for i in sorted(idx)]
        stuck_records = [self.simulate_class(f) for f in stuck_universe]
        return bridge_records, stuck_records
