"""Analog fault-simulation engine for the comparator macro.

For every fault class: inject each circuit-level model variant into the
comparator testbench, run clocked transients with the analog input above
and below the reference (plus +/- 8 mV probes when needed), extract the
quiescent currents in each clock phase and the flipflop decision, and
classify the macro-level fault signature.  Gate-oxide pinholes keep the
*worst-case* (least detectable) of their three variants, as in the
paper.

All transients go through the batched MNA kernel
(:func:`~repro.circuit.batch.transient_lanes`): the good-space corner
sweep and a fault class's variant runs are structurally identical
circuits differing only in source values and device parameters, so they
solve as one stacked Newton iteration.  Lanes the kernel cannot finish
re-run scalar, keeping every measurement bit-identical to an all-scalar
run (see ``docs/ENGINE.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, TYPE_CHECKING,
                    Tuple)

import numpy as np

from ..adc.comparator import (CLOCK_PERIOD, build_testbench,
                              phase_measure_times, regeneration_windows)
from ..adc.process import Process, reduced_corners, typical
from ..circuit.batch import transient_lanes
from ..circuit.dc import ConvergenceError
from ..circuit.transient import TransientResult, supply_current
from ..defects.collapse import FaultClass
from .baseline import (MacroBaseline, Trajectory, align_guide,
                       coerce_payload)
from .goodspace import GoodSpace, compile_good_space
from .models import FaultModel, fault_models, inject
from .noncat import NearMissShortFault, near_miss_model
from .signatures import (CurrentMechanism, Measurement, SignatureResult,
                         VoltageSignature, classify_voltage)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..macrotest.coverage import DetectionRecord


@dataclass(frozen=True)
class EngineConfig:
    """Fault-simulation engine settings.

    Attributes:
        dt: coarse transient step.
        period: clock period.
        dft: simulate the DfT comparator variant.
        vref: reference voltage of the instance under test.
        big_probe: input offset for the main above/below runs (volts).
        small_probe: input offset for the offset-detection probes.
        process: the corner the faulty instance is evaluated at.
        corners: corners the good space is compiled over (None: the
            reduced corner set).
        dynamic_test: run the at-speed missing-code test during
            propagation (consumed by :meth:`simulate_class`).
        batch: solve structurally identical runs through the batched
            kernel (False forces every run scalar; results are
            bit-identical either way).
        warm_start: seed faulty Newton solves from the good-circuit
            baseline trajectory (the full gmin/source stepping ladder
            stays as fallback).  Detection records are identical either
            way; False forces the historical cold start.
        drop: stop a fault class's stimulus schedule once its boundary
            signature has left the good space (skip the small offset
            probes when the big probes already classify).  Verdicts are
            identical either way — the skipped probes are exactly the
            ones :func:`~repro.faultsim.signatures.classify_voltage`
            never consults; False forces the exhaustive schedule.
        solver: linear backend for the kernel (see
            :data:`~repro.circuit.backend.SOLVERS`).  ``auto`` keeps
            the bit-identical dense path; ``sparse`` trades bit
            identity for full-chip-scale wall-clock (results agree
            within Newton tolerance, with per-lane dense fallback).
    """

    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    dft: bool = False
    vref: float = 2.5
    big_probe: float = 0.1
    small_probe: float = 8e-3
    process: Process = field(default_factory=typical)
    corners: Optional[Tuple[Process, ...]] = None
    dynamic_test: bool = False
    batch: bool = True
    warm_start: bool = True
    drop: bool = True
    solver: str = "auto"


@dataclass(frozen=True)
class FaultClassResult:
    """Signature of one fault class (worst-case over model variants).

    Attributes:
        fault_class: the simulated class.
        signature: its macro-level signature.
        variant: name of the chosen (worst-case) model variant.
    """

    fault_class: FaultClass
    signature: SignatureResult
    variant: str


#: one requested measurement run: (fault model or None, input offset,
#: process corner)
_Run = Tuple[Optional[FaultModel], float, Process]


class ComparatorFaultEngine:
    """Runs the fault-simulation step of the defect-oriented test path.

    Implements the :class:`~repro.faultsim.FaultEngine` protocol:
    :meth:`simulate_class` takes a collapsed fault class and returns a
    :class:`~repro.macrotest.coverage.DetectionRecord`.  The richer
    per-class signature is available via
    :meth:`simulate_class_signature`.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 corners: Optional[Sequence[Process]] = None) -> None:
        self.config = config or EngineConfig()
        if corners is not None:
            self._corners = list(corners)
        elif self.config.corners is not None:
            self._corners = list(self.config.corners)
        else:
            self._corners = reduced_corners()
        self._good_space: Optional[GoodSpace] = None
        self._good_decisions: Dict[float, bool] = {}
        #: good-circuit trajectories at the faulty-evaluation corner,
        #: polarity -> Trajectory (the warm-start guides)
        self._trajectories: Dict[str, Trajectory] = {}
        #: per-corner fault-free measurements (the exportable baseline)
        self._corner_measurements: Optional[
            Dict[str, Dict[str, Measurement]]] = None
        #: where the good space came from: "computed" or "adopted"
        self.baseline_source = "computed"
        #: transient lanes actually simulated (accounting)
        self.runs_simulated = 0
        #: small-probe lanes skipped by detection-driven dropping
        self.probes_dropped = 0

    # -- measurement -------------------------------------------------------

    def _guide_for(self, circuit, offset: float, process: Process):
        """Warm-start guide for one run, when the baseline covers it.

        Guides only exist for the corner the faulty instances are
        evaluated at; the big-probe trajectory of the matching polarity
        also seeds the same-polarity small probe (the fault-free
        waveforms barely differ between the two offsets).
        """
        if process.name != self.config.process.name:
            return None
        trajectory = self._trajectories.get(
            "above" if offset > 0 else "below")
        if trajectory is None:
            return None
        return align_guide(circuit.compile(), trajectory)

    def _transients(self, runs: Sequence[_Run]):
        """Run a batch of transients; returns (testbenches, outcomes).

        Builds one testbench per run; structurally identical lanes (the
        corner sweep, a class's model variants) stack into one batched
        transient, the rest run scalar.  When ``config.warm_start`` and
        a baseline trajectory exists, every lane's Newton solves are
        seeded from the good-circuit solution.
        """
        tbs = []
        circuits = []
        for model, offset, process in runs:
            tb = build_testbench(process=process,
                                 vin=self.config.vref + offset,
                                 vref=self.config.vref,
                                 dft=self.config.dft,
                                 period=self.config.period)
            tbs.append(tb)
            circuits.append(tb.circuit if model is None
                            else inject(tb.circuit, model))
        guides = None
        if self.config.warm_start and self._trajectories:
            guides = [self._guide_for(circuit, offset, process)
                      for circuit, (model, offset, process)
                      in zip(circuits, runs)]
            if not any(g is not None for g in guides):
                guides = None
        windows = regeneration_windows(self.config.period, 1)
        outcomes = transient_lanes(circuits, tstop=self.config.period,
                                   dt=self.config.dt,
                                   fine_windows=windows,
                                   batch=self.config.batch,
                                   guides=guides,
                                   solver=self.config.solver)
        self.runs_simulated += len(runs)
        return tbs, outcomes

    def _measure_runs(self, runs: Sequence[_Run]) -> List[Measurement]:
        """Measure a batch of runs through the batched kernel.

        A lane that fails to converge measures as unresolved, exactly
        as the scalar path reported it.
        """
        tbs, outcomes = self._transients(runs)
        measurements = []
        for (model, offset, process), tb, outcome in zip(runs, tbs,
                                                         outcomes):
            if isinstance(outcome, ConvergenceError):
                measurements.append(self._unresolved_measurement())
            else:
                measurements.append(self._measure(tb, outcome, process))
        return measurements

    def _measure(self, tb, tr: TransientResult,
                 process: Process) -> Measurement:
        times = phase_measure_times(self.config.period, 0)

        def at(array: np.ndarray, t: float) -> float:
            return float(array[int(np.argmin(np.abs(tr.times - t)))])

        ivdd = supply_current(tr, tb.supply_source)
        iddq_arrays = [np.abs(tr.current(name))
                       for name in tb.clock_sources]
        iin = np.abs(tr.current("VIN"))
        ivref = np.abs(tr.current("VREFS"))
        ibias = np.abs(tr.current("VBN1S")) + np.abs(tr.current("VBN2S"))

        decision = tr.at_time("ffout", 0.97 * self.config.period) > \
            process.vdd / 2.0
        clock_dev = self._clock_deviation(tr, process)
        return Measurement(
            decision=bool(decision),
            ivdd=tuple(at(ivdd, t) for t in times),
            iddq=tuple(sum(at(a, t) for a in iddq_arrays) for t in times),
            iin=tuple(at(iin, t) for t in times),
            ivref=tuple(at(ivref, t) for t in times),
            ibias=tuple(at(ibias, t) for t in times),
            clock_deviation=clock_dev)

    def _clock_deviation(self, tr: TransientResult,
                         process: Process) -> float:
        """Worst deviation of the clock lines from their nominal levels
        at the quiescent instants of each phase."""
        period = self.config.period
        expected = {
            "phi1": (process.vdd, 0.0, 0.0),
            "phi2": (0.0, process.vdd, 0.0),
            "phi3": (0.0, 0.0, process.vdd),
        }
        worst = 0.0
        for phase_idx, t in enumerate(phase_measure_times(period, 0)):
            for line, levels in expected.items():
                actual = tr.at_time(line, t)
                worst = max(worst, abs(actual - levels[phase_idx]))
        return worst

    def _unresolved_measurement(self) -> Measurement:
        zeros = (0.0, 0.0, 0.0)
        return Measurement(decision=False, ivdd=zeros, iddq=zeros,
                           iin=zeros, ivref=zeros, ibias=zeros,
                           clock_deviation=0.0, resolved=False)

    def measure_polarity(self, model: Optional[FaultModel],
                         vin_offset: float,
                         process: Optional[Process] = None
                         ) -> Measurement:
        """Measure one (possibly faulty) run at vref + vin_offset."""
        p = process or self.config.process
        return self._measure_runs([(model, vin_offset, p)])[0]

    # -- good space ---------------------------------------------------------

    def good_space(self) -> GoodSpace:
        """Compile (and cache) the good signature space over corners.

        All ``len(corners) * 2`` fault-free runs share one circuit
        structure, so the whole sweep is a single batched transient.
        When a baseline was adopted (:meth:`adopt_baseline`), no
        simulation happens at all — the space is rebuilt from the
        cached per-corner measurements.
        """
        if self._good_space is None:
            if self._corner_measurements is None:
                self._compute_baseline()
            per_corner = self._corner_measurements
            name = self._corners[0].name
            if "typical" in per_corner:
                name = "typical"
            self._good_space = compile_good_space(per_corner,
                                                  typical_name=name)
        return self._good_space

    def _compute_baseline(self) -> None:
        """Simulate the fault-free corner sweep, keeping trajectories."""
        runs: List[_Run] = []
        for p in self._corners:
            runs.append((None, +self.config.big_probe, p))
            runs.append((None, -self.config.big_probe, p))
        tbs, outcomes = self._transients(runs)
        per_corner: Dict[str, Dict[str, Measurement]] = {}
        for k, p in enumerate(self._corners):
            polarity_meas: Dict[str, Measurement] = {}
            for j, pol in ((0, "above"), (1, "below")):
                outcome = outcomes[2 * k + j]
                if isinstance(outcome, ConvergenceError):
                    polarity_meas[pol] = self._unresolved_measurement()
                    continue
                polarity_meas[pol] = self._measure(tbs[2 * k + j],
                                                   outcome, p)
                if p.name == self.config.process.name:
                    self._trajectories[pol] = \
                        Trajectory.from_result(outcome)
            per_corner[p.name] = polarity_meas
        self._corner_measurements = per_corner
        self.baseline_source = "computed"

    def export_baseline(self) -> MacroBaseline:
        """The fault-free results as a shareable baseline blob.

        Computes the good-space sweep first if it has not run yet.
        """
        self.good_space()
        payload = {
            "corners": {name: {pol: m.to_dict()
                               for pol, m in meas.items()}
                        for name, meas
                        in self._corner_measurements.items()},
            "process": self.config.process.name,
            "trajectories": {pol: t.to_dict()
                             for pol, t in self._trajectories.items()},
        }
        return MacroBaseline(macro="comparator", payload=payload)

    def adopt_baseline(self, baseline) -> bool:
        """Reuse a previously exported baseline instead of simulating.

        Accepts a :class:`~repro.faultsim.baseline.MacroBaseline` or
        its payload dict.  Returns False (and changes nothing) when the
        baseline does not cover this engine's corner set or evaluation
        process — a stale blob can never poison a run.
        """
        payload = coerce_payload(baseline)
        if payload is None:
            return False
        try:
            corners = {str(name): {pol: Measurement.from_dict(m)
                                   for pol, m in meas.items()}
                       for name, meas in payload["corners"].items()}
            trajectories = {str(pol): Trajectory.from_dict(t)
                            for pol, t
                            in payload.get("trajectories", {}).items()}
            process_name = payload.get("process")
        except (KeyError, TypeError, ValueError):
            return False
        if set(corners) != {p.name for p in self._corners}:
            return False
        if any(set(meas) != {"above", "below"}
               for meas in corners.values()):
            return False
        self._corner_measurements = corners
        if process_name == self.config.process.name:
            self._trajectories = trajectories
        self._good_space = None
        self.baseline_source = "adopted"
        return True

    # -- fault simulation ---------------------------------------------------

    def _variants(self, fault_class: FaultClass) -> List[FaultModel]:
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            return [near_miss_model(fault)]
        return fault_models(fault, process=self.config.process)

    def _signatures(self, models: Sequence[FaultModel]
                    ) -> List[SignatureResult]:
        """Signatures of several model variants, batched.

        Phase one runs every variant's above/below pair in one
        :func:`transient_lanes` call (variants that share a topology —
        e.g. the three pinhole conductances — stack into one batch).
        Variants that still resolve correctly get a second, smaller
        batch at the +/- ``small_probe`` offsets.
        """
        good = self.good_space()
        runs: List[_Run] = []
        for model in models:
            runs.append((model, +self.config.big_probe,
                         self.config.process))
            runs.append((model, -self.config.big_probe,
                         self.config.process))
        measured = self._measure_runs(runs)

        # second pass: offset probes.  The stimulus schedule is ordered
        # by detectability — the big probes classify most faults — so
        # with ``drop`` a variant whose boundary signature already left
        # the good space (wrong/unresolved decisions) never sees the
        # small probes; those are exactly the probes classify_voltage
        # would ignore, so the verdict is unchanged.  Without ``drop``
        # every variant runs the full schedule (offset faults hide at
        # the big probes).
        if self.config.drop:
            need_small = []
            for k, model in enumerate(models):
                above, below = measured[2 * k], measured[2 * k + 1]
                if above.resolved and below.resolved and \
                        above.decision is True and \
                        below.decision is False:
                    need_small.append(k)
            self.probes_dropped += 2 * (len(models) - len(need_small))
        else:
            need_small = list(range(len(models)))
        small_runs: List[_Run] = []
        for k in need_small:
            small_runs.append((models[k], +self.config.small_probe,
                               self.config.process))
            small_runs.append((models[k], -self.config.small_probe,
                               self.config.process))
        small_measured = self._measure_runs(small_runs) if small_runs \
            else []
        small_by_variant = {
            k: (small_measured[2 * j].decision,
                small_measured[2 * j + 1].decision)
            for j, k in enumerate(need_small)}

        results = []
        for k, model in enumerate(models):
            above, below = measured[2 * k], measured[2 * k + 1]
            unresolved = not (above.resolved and below.resolved)
            small_above, small_below = small_by_variant.get(k,
                                                            (None, None))
            if unresolved:
                voltage, sign = VoltageSignature.OUTPUT_STUCK_AT, 0
            else:
                clock_dev = max(above.clock_deviation,
                                below.clock_deviation)
                voltage, sign = classify_voltage(
                    above.decision, below.decision, small_above,
                    small_below, clock_dev)
            measurements = {"above": above, "below": below}
            violated = good.violated_measurements(measurements)
            from .goodspace import mechanism_of
            mechanisms = {mechanism_of(key) for key in violated}
            results.append(SignatureResult(
                voltage=voltage, offset_sign=sign,
                mechanisms=frozenset(mechanisms),
                measurements=measurements,
                violated_keys=frozenset(violated),
                unresolved=unresolved))
        return results

    def simulate_model(self, model: FaultModel) -> SignatureResult:
        """Signature of one model variant."""
        return self._signatures([model])[0]

    def simulate_class_signature(self, fault_class: FaultClass
                                 ) -> FaultClassResult:
        """Worst-case signature over the class's model variants."""
        variants = self._variants(fault_class)
        signatures = self._signatures(variants)
        results = [(sig, v.name)
                   for sig, v in zip(signatures, variants)]
        results.sort(key=lambda pair: pair[0].detectability_rank())
        signature, variant = results[0]
        return FaultClassResult(fault_class=fault_class,
                                signature=signature, variant=variant)

    def simulate_class(self, fault_class: FaultClass
                       ) -> "DetectionRecord":
        """Detection record of one fault class (the
        :class:`~repro.faultsim.FaultEngine` contract).

        Simulates the class's worst-case signature and propagates it to
        the macro-level missing-code verdict, honouring
        ``config.dynamic_test``.
        """
        from ..macrotest.coverage import DetectionRecord
        from ..macrotest.propagate import propagate_comparator_fault

        res = self.simulate_class_signature(fault_class)
        voltage = propagate_comparator_fault(
            res.signature, fault_class.representative,
            at_speed=self.config.dynamic_test)
        # which stimulus detects the class first, in schedule order:
        # the current measurements ride on the big-probe runs (the
        # cheapest stimulus), the missing-code test comes after
        detected_by = None
        if res.signature.mechanisms:
            detected_by = "current"
        elif voltage:
            detected_by = "voltage"
        return DetectionRecord(
            count=fault_class.count, voltage_detected=voltage,
            mechanisms=res.signature.mechanisms,
            voltage_signature=res.signature.voltage,
            fault_type=fault_class.fault_type,
            violated_keys=res.signature.violated_keys,
            detected_by=detected_by)

    def simulate_class_legacy(self, fault_class: FaultClass
                              ) -> FaultClassResult:
        """Deprecated pre-protocol name for
        :meth:`simulate_class_signature` (``simulate_class`` used to
        return a :class:`FaultClassResult`)."""
        warnings.warn(
            "simulate_class_legacy() is deprecated; use "
            "simulate_class() for a DetectionRecord or "
            "simulate_class_signature() for the full FaultClassResult",
            DeprecationWarning, stacklevel=2)
        return self.simulate_class_signature(fault_class)

    def run(self, classes: Sequence[FaultClass],
            progress: Optional[Callable[[int, int], None]] = None
            ) -> List["DetectionRecord"]:
        """Simulate every class; optional progress callback."""
        results = []
        for k, fc in enumerate(classes):
            results.append(self.simulate_class(fc))
            if progress is not None:
                progress(k + 1, len(classes))
        return results
