"""Analog fault-simulation engine for the comparator macro.

For every fault class: inject each circuit-level model variant into the
comparator testbench, run clocked transients with the analog input above
and below the reference (plus +/- 8 mV probes when needed), extract the
quiescent currents in each clock phase and the flipflop decision, and
classify the macro-level fault signature.  Gate-oxide pinholes keep the
*worst-case* (least detectable) of their three variants, as in the
paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..adc.comparator import (CLOCK_PERIOD, build_testbench,
                              phase_measure_times, regeneration_windows)
from ..adc.process import Process, reduced_corners, typical
from ..circuit.dc import ConvergenceError
from ..circuit.transient import TransientResult, supply_current, transient
from ..defects.collapse import FaultClass
from .goodspace import GoodSpace, compile_good_space
from .models import FaultModel, fault_models, inject
from .noncat import NearMissShortFault, near_miss_model
from .signatures import (CurrentMechanism, Measurement, SignatureResult,
                         VoltageSignature, classify_voltage)


@dataclass(frozen=True)
class EngineConfig:
    """Fault-simulation engine settings.

    Attributes:
        dt: coarse transient step.
        period: clock period.
        dft: simulate the DfT comparator variant.
        vref: reference voltage of the instance under test.
        big_probe: input offset for the main above/below runs (volts).
        small_probe: input offset for the offset-detection probes.
        process: the corner the faulty instance is evaluated at.
    """

    dt: float = 1e-9
    period: float = CLOCK_PERIOD
    dft: bool = False
    vref: float = 2.5
    big_probe: float = 0.1
    small_probe: float = 8e-3
    process: Process = field(default_factory=typical)


@dataclass(frozen=True)
class FaultClassResult:
    """Signature of one fault class (worst-case over model variants).

    Attributes:
        fault_class: the simulated class.
        signature: its macro-level signature.
        variant: name of the chosen (worst-case) model variant.
    """

    fault_class: FaultClass
    signature: SignatureResult
    variant: str


class ComparatorFaultEngine:
    """Runs the fault-simulation step of the defect-oriented test path."""

    def __init__(self, config: Optional[EngineConfig] = None,
                 corners: Optional[Sequence[Process]] = None) -> None:
        self.config = config or EngineConfig()
        self._corners = list(corners) if corners is not None \
            else reduced_corners()
        self._good_space: Optional[GoodSpace] = None
        self._good_decisions: Dict[float, bool] = {}

    # -- measurement -------------------------------------------------------

    def _run(self, circuit, process: Process) -> TransientResult:
        windows = regeneration_windows(self.config.period, 1)
        return transient(circuit, tstop=self.config.period,
                         dt=self.config.dt, fine_windows=windows)

    def _measure(self, tb, tr: TransientResult,
                 process: Process) -> Measurement:
        times = phase_measure_times(self.config.period, 0)

        def at(array: np.ndarray, t: float) -> float:
            return float(array[int(np.argmin(np.abs(tr.times - t)))])

        ivdd = supply_current(tr, tb.supply_source)
        iddq_arrays = [np.abs(tr.current(name))
                       for name in tb.clock_sources]
        iin = np.abs(tr.current("VIN"))
        ivref = np.abs(tr.current("VREFS"))
        ibias = np.abs(tr.current("VBN1S")) + np.abs(tr.current("VBN2S"))

        decision = tr.at_time("ffout", 0.97 * self.config.period) > \
            process.vdd / 2.0
        clock_dev = self._clock_deviation(tr, process)
        return Measurement(
            decision=bool(decision),
            ivdd=tuple(at(ivdd, t) for t in times),
            iddq=tuple(sum(at(a, t) for a in iddq_arrays) for t in times),
            iin=tuple(at(iin, t) for t in times),
            ivref=tuple(at(ivref, t) for t in times),
            ibias=tuple(at(ibias, t) for t in times),
            clock_deviation=clock_dev)

    def _clock_deviation(self, tr: TransientResult,
                         process: Process) -> float:
        """Worst deviation of the clock lines from their nominal levels
        at the quiescent instants of each phase."""
        period = self.config.period
        expected = {
            "phi1": (process.vdd, 0.0, 0.0),
            "phi2": (0.0, process.vdd, 0.0),
            "phi3": (0.0, 0.0, process.vdd),
        }
        worst = 0.0
        for phase_idx, t in enumerate(phase_measure_times(period, 0)):
            for line, levels in expected.items():
                actual = tr.at_time(line, t)
                worst = max(worst, abs(actual - levels[phase_idx]))
        return worst

    def _unresolved_measurement(self) -> Measurement:
        zeros = (0.0, 0.0, 0.0)
        return Measurement(decision=False, ivdd=zeros, iddq=zeros,
                           iin=zeros, ivref=zeros, ibias=zeros,
                           clock_deviation=0.0, resolved=False)

    def measure_polarity(self, model: Optional[FaultModel],
                         vin_offset: float,
                         process: Optional[Process] = None
                         ) -> Measurement:
        """Measure one (possibly faulty) run at vref + vin_offset."""
        p = process or self.config.process
        tb = build_testbench(process=p,
                             vin=self.config.vref + vin_offset,
                             vref=self.config.vref, dft=self.config.dft,
                             period=self.config.period)
        circuit = tb.circuit if model is None else inject(tb.circuit,
                                                          model)
        try:
            tr = self._run(circuit, p)
        except ConvergenceError:
            return self._unresolved_measurement()
        return self._measure(tb, tr, p)

    # -- good space ---------------------------------------------------------

    def good_space(self) -> GoodSpace:
        """Compile (and cache) the good signature space over corners."""
        if self._good_space is None:
            per_corner: Dict[str, Dict[str, Measurement]] = {}
            for p in self._corners:
                per_corner[p.name] = {
                    "above": self.measure_polarity(
                        None, +self.config.big_probe, process=p),
                    "below": self.measure_polarity(
                        None, -self.config.big_probe, process=p),
                }
            name = self._corners[0].name
            if "typical" in per_corner:
                name = "typical"
            self._good_space = compile_good_space(per_corner,
                                                  typical_name=name)
        return self._good_space

    # -- fault simulation ------------------------------------------------------

    def simulate_model(self, model: FaultModel) -> SignatureResult:
        """Signature of one model variant."""
        good = self.good_space()
        above = self.measure_polarity(model, +self.config.big_probe)
        below = self.measure_polarity(model, -self.config.big_probe)
        unresolved = not (above.resolved and below.resolved)

        small_above: Optional[bool] = None
        small_below: Optional[bool] = None
        if not unresolved and above.decision is True and \
                below.decision is False:
            small_above = self.measure_polarity(
                model, +self.config.small_probe).decision
            small_below = self.measure_polarity(
                model, -self.config.small_probe).decision

        if unresolved:
            voltage, sign = VoltageSignature.OUTPUT_STUCK_AT, 0
        else:
            clock_dev = max(above.clock_deviation,
                            below.clock_deviation)
            voltage, sign = classify_voltage(
                above.decision, below.decision, small_above,
                small_below, clock_dev)
        measurements = {"above": above, "below": below}
        violated = good.violated_measurements(measurements)
        from .goodspace import mechanism_of
        mechanisms = {mechanism_of(key) for key in violated}
        return SignatureResult(voltage=voltage, offset_sign=sign,
                               mechanisms=frozenset(mechanisms),
                               measurements=measurements,
                               violated_keys=frozenset(violated),
                               unresolved=unresolved)

    def simulate_class(self, fault_class: FaultClass
                       ) -> FaultClassResult:
        """Worst-case signature over the class's model variants."""
        fault = fault_class.representative
        if isinstance(fault, NearMissShortFault):
            variants = [near_miss_model(fault)]
        else:
            variants = fault_models(fault, process=self.config.process)
        results = [(self.simulate_model(v), v.name) for v in variants]
        results.sort(key=lambda pair: pair[0].detectability_rank())
        signature, variant = results[0]
        return FaultClassResult(fault_class=fault_class,
                                signature=signature, variant=variant)

    def run(self, classes: Sequence[FaultClass],
            progress: Optional[Callable[[int, int], None]] = None
            ) -> List[FaultClassResult]:
        """Simulate every class; optional progress callback."""
        results = []
        for k, fc in enumerate(classes):
            results.append(self.simulate_class(fc))
            if progress is not None:
                progress(k + 1, len(classes))
        return results
