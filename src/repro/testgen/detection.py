"""Detection mechanisms: missing codes and out-of-window currents.

A fault is *voltage detected* if the missing-code test fails — some
8-bit output code never occurs over the sampled triangle.  It is
*current detected* if any quiescent current measurement escapes the good
signature space (see ``repro.faultsim.goodspace``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from ..adc.flash import FlashADC
from .stimuli import MissingCodeStimulus


@dataclass(frozen=True)
class MissingCodeResult:
    """Outcome of one missing-code test run.

    Attributes:
        missing: set of codes that never occurred.
        n_samples: samples taken.
    """

    missing: frozenset
    n_samples: int

    @property
    def passed(self) -> bool:
        return not self.missing

    @property
    def detected(self) -> bool:
        """A faulty device is detected when the test fails."""
        return bool(self.missing)


def missing_code_test(adc: FlashADC,
                      stimulus: Optional[MissingCodeStimulus] = None,
                      at_speed: bool = False) -> MissingCodeResult:
    """Run the missing-code test on a (possibly faulty) behavioral ADC.

    Args:
        at_speed: sample at the maximum conversion rate.  The baseline
            (paper) test already samples "at full speed" but with
            settled clocking; the at-speed variant additionally stresses
            the comparators' dynamic margins.
    """
    stimulus = stimulus or MissingCodeStimulus()
    codes = adc.convert_many(stimulus.samples(), at_speed=at_speed)
    expected = set(range(2 ** adc.n_bits))
    seen = set(int(c) for c in codes)
    return MissingCodeResult(missing=frozenset(expected - seen),
                             n_samples=stimulus.n_samples)


def dynamic_missing_code_test(adc: FlashADC,
                              stimulus: Optional[MissingCodeStimulus]
                              = None) -> MissingCodeResult:
    """At-speed missing-code test (our extension).

    The paper notes that 'clock value' faults "typically affect the
    high-frequency behaviour and offset reduction of the comparator"
    and are "not easily detectable by voltage tests" — meaning the
    *static* missing-code test.  Running the same 1000-sample test at
    the ADC's maximum rate turns exactly that population into missing
    codes, at no extra tester time.
    """
    return missing_code_test(adc, stimulus, at_speed=True)


def histogram(adc: FlashADC,
              stimulus: Optional[MissingCodeStimulus] = None) -> np.ndarray:
    """Code histogram over the missing-code stimulus (for DNL-style
    diagnostics on top of the plain missing-code check)."""
    stimulus = stimulus or MissingCodeStimulus()
    codes = adc.convert_many(stimulus.samples())
    return np.bincount(codes, minlength=2 ** adc.n_bits)
