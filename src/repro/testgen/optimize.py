"""Test-plan optimization (paper section 3.2, closing remark).

"The overlap between different detection mechanisms gives room for the
optimization of the test method and fault detection."

Given the per-fault-class measurement violations recorded by the fault
engine, choose the cheapest subset of candidate measurements — the
missing-code test plus any of the 24 individual current measurements
(4 quantities × 3 phases × 2 input levels) — that preserves the
achievable coverage.  Greedy weighted set cover: at each step take the
measurement with the best newly-covered-fault-probability per second of
tester time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..macrotest.coverage import DetectionRecord, MacroResult
from .stimuli import (CURRENT_MEASUREMENT_SETTLE, MissingCodeStimulus)

#: pseudo-measurement representing the whole missing-code test
MISSING_CODE = ("missing_codes", "*", "*")

Measure = Tuple[str, str, str]


@dataclass(frozen=True)
class TestPlan:
    """An ordered measurement selection.

    Attributes:
        measurements: chosen measurements, in selection order.
        coverage: weighted fault coverage the plan achieves.
        achievable: coverage with *every* candidate applied.
        cost: tester time in seconds.
    """

    __test__ = False  # not a pytest class, despite the name

    measurements: Tuple[Measure, ...]
    coverage: float
    achievable: float
    cost: float

    def describe(self) -> str:
        lines = [f"{'measurement':34s} {'cumulative cost':>16s}"]
        cost = 0.0
        for m in self.measurements:
            cost += measurement_cost(m)
            label = "missing-code test" if m == MISSING_CODE else \
                f"{m[0]} @ {m[1]}, input {m[2]}"
            lines.append(f"{label:34s} {1000 * cost:13.3f} ms")
        lines.append(f"coverage: {100 * self.coverage:.1f}% of "
                     f"{100 * self.achievable:.1f}% achievable")
        return "\n".join(lines)


def measurement_cost(measure: Measure) -> float:
    """Tester time of one candidate measurement (seconds)."""
    if measure == MISSING_CODE:
        return MissingCodeStimulus().test_time()
    return CURRENT_MEASUREMENT_SETTLE


def _detections(record: DetectionRecord) -> Set[Measure]:
    out: Set[Measure] = set(record.violated_keys)
    if record.voltage_detected:
        out.add(MISSING_CODE)
    return out


def optimize_test_plan(result: MacroResult,
                       min_coverage: Optional[float] = None
                       ) -> TestPlan:
    """Greedy minimum-cost measurement selection for one macro.

    Args:
        result: macro result whose records carry ``violated_keys``.
        min_coverage: stop once this weighted coverage is reached
            (default: everything achievable).
    """
    weights: Dict[int, float] = {}
    detections: Dict[int, Set[Measure]] = {}
    total = result.total_faults
    if total == 0:
        raise ValueError("macro has no faults to cover")
    for idx, record in enumerate(result.records):
        weights[idx] = record.count / total
        detections[idx] = _detections(record)

    candidates: Set[Measure] = set()
    for dets in detections.values():
        candidates |= dets
    achievable = sum(w for idx, w in weights.items() if detections[idx])
    target = achievable if min_coverage is None \
        else min(min_coverage, achievable)

    chosen: List[Measure] = []
    covered: Set[int] = set()
    coverage = 0.0
    remaining = set(candidates)
    while coverage < target - 1e-12 and remaining:
        def gain(measure: Measure) -> float:
            g = sum(weights[idx] for idx in weights
                    if idx not in covered and
                    measure in detections[idx])
            return g / measurement_cost(measure)

        best = max(sorted(remaining), key=gain)
        newly = {idx for idx in weights
                 if idx not in covered and best in detections[idx]}
        if not newly:
            break
        remaining.discard(best)
        chosen.append(best)
        covered |= newly
        coverage = sum(weights[idx] for idx in covered)

    cost = sum(measurement_cost(m) for m in chosen)
    return TestPlan(measurements=tuple(chosen), coverage=coverage,
                    achievable=achievable, cost=cost)


def full_plan_cost() -> float:
    """Cost of applying every candidate measurement (the naive plan)."""
    return MissingCodeStimulus().test_time() + \
        24 * CURRENT_MEASUREMENT_SETTLE
