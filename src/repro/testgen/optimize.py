"""Test-plan optimization (paper section 3.2, closing remark).

"The overlap between different detection mechanisms gives room for the
optimization of the test method and fault detection."

This module now owns only the measurement *vocabulary* — the candidate
set, the :class:`TestPlan` result type and the tester-time cost model.
The selection logic lives in :mod:`repro.optimize`: the greedy
weighted set cover moved to
:func:`repro.optimize.seeding.greedy_test_plan`, where it seeds
generation 0 of the evolutionary search
(``python -m repro optimize``).  :func:`optimize_test_plan` remains as
a deprecated shim delegating there — same signature, same return
type, bit-identical plans.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..macrotest.coverage import DetectionRecord, MacroResult
from .stimuli import (CURRENT_MEASUREMENT_SETTLE, MissingCodeStimulus)

#: pseudo-measurement representing the whole missing-code test
MISSING_CODE = ("missing_codes", "*", "*")

Measure = Tuple[str, str, str]


@dataclass(frozen=True)
class TestPlan:
    """An ordered measurement selection.

    Attributes:
        measurements: chosen measurements, in selection order.
        coverage: weighted fault coverage the plan achieves.
        achievable: coverage with *every* candidate applied.
        cost: tester time in seconds.
        resolution: expected diagnostic resolution of the selection
            (see :func:`repro.diagnosis.expected_resolution`); None
            when the plan was optimized without a dictionary.
    """

    __test__ = False  # not a pytest class, despite the name

    measurements: Tuple[Measure, ...]
    coverage: float
    achievable: float
    cost: float
    resolution: Optional[float] = None

    def describe(self) -> str:
        lines = [f"{'measurement':34s} {'cumulative cost':>16s}"]
        cost = 0.0
        for m in self.measurements:
            cost += measurement_cost(m)
            label = "missing-code test" if m == MISSING_CODE else \
                f"{m[0]} @ {m[1]}, input {m[2]}"
            lines.append(f"{label:34s} {1000 * cost:13.3f} ms")
        lines.append(f"coverage: {100 * self.coverage:.1f}% of "
                     f"{100 * self.achievable:.1f}% achievable")
        if self.resolution is not None:
            lines.append(f"diagnostic resolution: "
                         f"{100 * self.resolution:.1f}%")
        return "\n".join(lines)


def measurement_cost(measure: Measure) -> float:
    """Tester time of one candidate measurement (seconds)."""
    if measure == MISSING_CODE:
        return MissingCodeStimulus().test_time()
    return CURRENT_MEASUREMENT_SETTLE


def _detections(record: DetectionRecord) -> Set[Measure]:
    out: Set[Measure] = set(record.violated_keys)
    if record.voltage_detected:
        out.add(MISSING_CODE)
    return out


def optimize_test_plan(result: MacroResult,
                       min_coverage: Optional[float] = None,
                       dictionary=None,
                       resolution_weight: float = 0.0,
                       rng=None) -> TestPlan:
    """Deprecated: use :mod:`repro.optimize`.

    Delegates to :func:`repro.optimize.seeding.greedy_test_plan` —
    the identical greedy weighted set cover, now the generation-0
    seed of the evolutionary search.  Same signature (plus the
    optional explicit ``rng`` every plan producer now accepts), same
    :class:`TestPlan` return, bit-identical selections.
    """
    warnings.warn(
        "optimize_test_plan() moved to repro.optimize: call "
        "repro.optimize.greedy_test_plan() for the fixed-menu plan, "
        "or run the evolutionary search (python -m repro optimize) "
        "for Pareto-optimal plans",
        DeprecationWarning, stacklevel=2)
    # lazy import: repro.optimize re-exports this module's types, so
    # a module-level import here would be circular
    from ..optimize.seeding import greedy_test_plan
    return greedy_test_plan(result, min_coverage=min_coverage,
                            dictionary=dictionary,
                            resolution_weight=resolution_weight,
                            rng=rng)


def full_plan_cost() -> float:
    """Cost of applying every candidate measurement (the naive plan)."""
    return MissingCodeStimulus().test_time() + \
        24 * CURRENT_MEASUREMENT_SETTLE
