"""Test-plan optimization (paper section 3.2, closing remark).

"The overlap between different detection mechanisms gives room for the
optimization of the test method and fault detection."

Given the per-fault-class measurement violations recorded by the fault
engine, choose the cheapest subset of candidate measurements — the
missing-code test plus any of the 24 individual current measurements
(4 quantities × 3 phases × 2 input levels) — that preserves the
achievable coverage.  Greedy weighted set cover: at each step take the
measurement with the best newly-covered-fault-probability per second of
tester time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..macrotest.coverage import DetectionRecord, MacroResult
from .stimuli import (CURRENT_MEASUREMENT_SETTLE, MissingCodeStimulus)

#: pseudo-measurement representing the whole missing-code test
MISSING_CODE = ("missing_codes", "*", "*")

Measure = Tuple[str, str, str]


@dataclass(frozen=True)
class TestPlan:
    """An ordered measurement selection.

    Attributes:
        measurements: chosen measurements, in selection order.
        coverage: weighted fault coverage the plan achieves.
        achievable: coverage with *every* candidate applied.
        cost: tester time in seconds.
        resolution: expected diagnostic resolution of the selection
            (see :func:`repro.diagnosis.expected_resolution`); None
            when the plan was optimized without a dictionary.
    """

    __test__ = False  # not a pytest class, despite the name

    measurements: Tuple[Measure, ...]
    coverage: float
    achievable: float
    cost: float
    resolution: Optional[float] = None

    def describe(self) -> str:
        lines = [f"{'measurement':34s} {'cumulative cost':>16s}"]
        cost = 0.0
        for m in self.measurements:
            cost += measurement_cost(m)
            label = "missing-code test" if m == MISSING_CODE else \
                f"{m[0]} @ {m[1]}, input {m[2]}"
            lines.append(f"{label:34s} {1000 * cost:13.3f} ms")
        lines.append(f"coverage: {100 * self.coverage:.1f}% of "
                     f"{100 * self.achievable:.1f}% achievable")
        if self.resolution is not None:
            lines.append(f"diagnostic resolution: "
                         f"{100 * self.resolution:.1f}%")
        return "\n".join(lines)


def measurement_cost(measure: Measure) -> float:
    """Tester time of one candidate measurement (seconds)."""
    if measure == MISSING_CODE:
        return MissingCodeStimulus().test_time()
    return CURRENT_MEASUREMENT_SETTLE


def _detections(record: DetectionRecord) -> Set[Measure]:
    out: Set[Measure] = set(record.violated_keys)
    if record.voltage_detected:
        out.add(MISSING_CODE)
    return out


def optimize_test_plan(result: MacroResult,
                       min_coverage: Optional[float] = None,
                       dictionary=None,
                       resolution_weight: float = 0.0) -> TestPlan:
    """Greedy minimum-cost measurement selection for one macro.

    Args:
        result: macro result whose records carry ``violated_keys``.
        min_coverage: stop once this weighted coverage is reached
            (default: everything achievable).
        dictionary: optional :class:`repro.diagnosis.FaultDictionary`;
            when given, the returned plan carries the expected
            diagnostic resolution of the selected measurements.
        resolution_weight: trade-off knob; with a dictionary, each
            greedy step scores ``coverage_gain + resolution_weight *
            resolution_gain`` per second, and selection continues past
            the coverage target while a measurement still improves
            resolution.  0.0 (the default) reproduces the
            coverage-only plan exactly.
    """
    weights: Dict[int, float] = {}
    detections: Dict[int, Set[Measure]] = {}
    total = result.total_faults
    if total == 0:
        raise ValueError("macro has no faults to cover")
    for idx, record in enumerate(result.records):
        weights[idx] = record.count / total
        detections[idx] = _detections(record)

    candidates: Set[Measure] = set()
    for dets in detections.values():
        candidates |= dets
    achievable = sum(w for idx, w in weights.items() if detections[idx])
    target = achievable if min_coverage is None \
        else min(min_coverage, achievable)

    diagnose = dictionary is not None and resolution_weight > 0.0
    if diagnose:
        from ..diagnosis import expected_resolution

        def resolution_of(measures: Sequence[Measure]) -> float:
            return expected_resolution(
                dictionary, measurements=measures).resolution

    chosen: List[Measure] = []
    covered: Set[int] = set()
    coverage = 0.0
    resolution = resolution_of(chosen) if diagnose else 0.0
    remaining = set(candidates)
    while remaining:
        covering = coverage < target - 1e-12

        def gain(measure: Measure) -> float:
            g = sum(weights[idx] for idx in weights
                    if idx not in covered and
                    measure in detections[idx])
            if diagnose:
                g += resolution_weight * \
                    (resolution_of(chosen + [measure]) - resolution)
            return g / measurement_cost(measure)

        best = max(sorted(remaining), key=gain)
        newly = {idx for idx in weights
                 if idx not in covered and best in detections[idx]}
        if covering:
            if not newly and not (diagnose and gain(best) > 1e-12):
                break
        else:
            # coverage target met: keep going only while a measurement
            # still buys diagnostic resolution
            if not diagnose or \
                    resolution_of(chosen + [best]) <= resolution + 1e-12:
                break
        remaining.discard(best)
        chosen.append(best)
        covered |= newly
        coverage = sum(weights[idx] for idx in covered)
        if diagnose:
            resolution = resolution_of(chosen)

    cost = sum(measurement_cost(m) for m in chosen)
    final_resolution: Optional[float] = None
    if dictionary is not None:
        from ..diagnosis import expected_resolution
        final_resolution = expected_resolution(
            dictionary, measurements=chosen).resolution
    return TestPlan(measurements=tuple(chosen), coverage=coverage,
                    achievable=achievable, cost=cost,
                    resolution=final_resolution)


def full_plan_cost() -> float:
    """Cost of applying every candidate measurement (the naive plan)."""
    return MissingCodeStimulus().test_time() + \
        24 * CURRENT_MEASUREMENT_SETTLE
