"""Test-time / test-cost model.

The paper's argument is economic as much as technical: the simple
defect-oriented tests (missing code + six DC current measurements) take
well under a millisecond of tester time, while a specification-oriented
test (INL/DNL histogram, SNR, full AC characterisation) needs orders of
magnitude more samples and several instrument reconfigurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .stimuli import (CURRENT_MEASUREMENTS, CurrentTestStimulus,
                      MissingCodeStimulus, SAMPLE_RATE)

#: tester overhead per instrument reconfiguration (load new setup,
#: relays, ranging) — a conservative production-ATE figure
RECONFIGURATION_TIME = 5e-3
#: samples needed for a statistically solid code-density (INL/DNL) test
#: of an 8-bit converter (≥ 64 hits/code on 256 codes with margin)
HISTOGRAM_SAMPLES = 65536
#: record length for an FFT-based SNR/THD measurement
SNR_RECORD = 8192
#: number of distinct configurations in a typical spec test
#: (histogram, SNR at two frequencies, gain/offset, PSRR)
SPEC_CONFIGURATIONS = 5


@dataclass(frozen=True)
class TestCost:
    """Tester-time breakdown in seconds."""

    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())


def defect_oriented_cost(stimulus: MissingCodeStimulus = None,
                         current: CurrentTestStimulus = None) -> TestCost:
    """Cost of the paper's simple test (missing code + current test)."""
    stimulus = stimulus or MissingCodeStimulus()
    current = current or CurrentTestStimulus()
    return TestCost(components={
        "missing_code_sampling": stimulus.test_time(),
        "current_measurements": current.test_time(),
        "setup": RECONFIGURATION_TIME,
    })


def current_only_cost(current: CurrentTestStimulus = None) -> TestCost:
    """Cost of a current-only wafer-sort test (the paper's post-DfT
    recommendation)."""
    current = current or CurrentTestStimulus()
    return TestCost(components={
        "current_measurements": current.test_time(),
        "setup": RECONFIGURATION_TIME,
    })


def specification_oriented_cost() -> TestCost:
    """Cost of a conventional functional/spec test of the same ADC."""
    return TestCost(components={
        "histogram_sampling": HISTOGRAM_SAMPLES / SAMPLE_RATE,
        "snr_records": 2 * SNR_RECORD / SAMPLE_RATE,
        "gain_offset": 1e-3,
        "reconfigurations": SPEC_CONFIGURATIONS * RECONFIGURATION_TIME,
    })
