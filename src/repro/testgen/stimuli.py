"""Test stimuli (paper section 3.2, "Input stimuli and detection
mechanisms").

* **Missing-code test**: a full-range triangular waveform sampled 1000
  times at the ADC's full conversion rate; every 8-bit output code must
  occur.  Sampling the triangle guarantees each code bin is visited.
* **Current test**: an input above the highest reference and one below
  the lowest, with the three DC currents (IVdd, IDDQ, Iinput) measured
  in each of the three comparator clock phases — six quiescent
  measurements, each needing ~100 us for transients to die out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..adc.ladder import VREF_HIGH, VREF_LOW
from ..circuit.waveforms import Triangle

#: number of samples in the missing-code test (paper: 1,000)
MISSING_CODE_SAMPLES = 1000
#: ADC conversion rate (video ADC, one conversion per 3-phase cycle)
SAMPLE_RATE = 1.0 / 150e-9
#: settle time per quiescent current measurement (paper: ~100 us)
CURRENT_MEASUREMENT_SETTLE = 100e-6
#: number of current measurements (3 phases x 2 input levels)
CURRENT_MEASUREMENTS = 6


@dataclass(frozen=True)
class MissingCodeStimulus:
    """The triangular-wave sample set for the missing-code test.

    Attributes:
        n_samples: number of conversions taken.
        low, high: triangle extremes; slightly beyond the reference
            range so the end codes are guaranteed to be exercised.
    """

    n_samples: int = MISSING_CODE_SAMPLES
    low: float = VREF_LOW - 0.05
    high: float = VREF_HIGH + 0.05

    def samples(self) -> np.ndarray:
        """Input voltages of the sampled triangle (one full period)."""
        tri = Triangle(low=self.low, high=self.high, period=1.0)
        times = np.arange(self.n_samples) / self.n_samples
        return np.array([tri.at(t) for t in times])

    def test_time(self) -> float:
        """Seconds of tester time (full-speed sampling)."""
        return self.n_samples / SAMPLE_RATE


@dataclass(frozen=True)
class CurrentTestStimulus:
    """Input levels and measurement plan for the DC current test."""

    above_all: float = VREF_HIGH + 0.1
    below_all: float = VREF_LOW - 0.1
    settle: float = CURRENT_MEASUREMENT_SETTLE

    def measurement_points(self) -> List[Tuple[str, str]]:
        """(input level, phase) pairs: 2 levels x 3 phases."""
        return [(level, phase)
                for level in ("above", "below")
                for phase in ("sampling", "amplification", "latching")]

    def test_time(self) -> float:
        """Seconds of tester time (settle per measurement)."""
        return len(self.measurement_points()) * self.settle
