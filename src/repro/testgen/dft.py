"""Design-for-Testability measures (paper section 3.4).

Two measures, both derived from the fault-signature analysis:

1. **Flipflop redesign** — remove the leakage path that makes the
   sampling-phase supply current spread over process ("A redesign of the
   flipflop, eliminating the leakage current, would make them
   detectable").  Implemented as the comparator's ``dft=True`` netlist
   variant.
2. **Bias-line reordering** — separate the two bias lines that carry
   marginally different signals so spot defects can no longer bridge
   them ("exchange some bias lines, thereby separating two lines with
   similar signals by another more deviating signal line").  Implemented
   as the layout's DfT global-track order.

This module packages the two knobs so experiments can switch each one
independently (the ablation benchmark exercises all four combinations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adc.comparator import GLOBAL_NETS_DFT, GLOBAL_NETS_STD, \
    build_comparator
from ..layout.synth import SynthOptions, synthesize
from ..adc.comparator import PORTS


@dataclass(frozen=True)
class DfTConfig:
    """Which DfT measures are applied.

    Attributes:
        flipflop_redesign: remove the flipflop leakage path.
        bias_line_reorder: separate the twin bias lines in layout.
    """

    flipflop_redesign: bool = False
    bias_line_reorder: bool = False

    @property
    def label(self) -> str:
        parts = []
        if self.flipflop_redesign:
            parts.append("ff")
        if self.bias_line_reorder:
            parts.append("bias")
        return "dft:" + ("+".join(parts) if parts else "none")


NO_DFT = DfTConfig()
FULL_DFT = DfTConfig(flipflop_redesign=True, bias_line_reorder=True)


def comparator_layout_for(config: DfTConfig):
    """Comparator layout matching a DfT configuration.

    The netlist changes with the flipflop redesign, the track order with
    the bias reorder — so the defect universe itself shifts, which is
    the point: DfT here changes what faults *occur*, not just how they
    are detected.
    """
    order = GLOBAL_NETS_DFT if config.bias_line_reorder \
        else GLOBAL_NETS_STD
    circuit = build_comparator(dft=config.flipflop_redesign)
    return synthesize(circuit, SynthOptions(global_nets=list(order),
                                            ports=list(PORTS)))
