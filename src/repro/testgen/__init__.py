"""Test stimuli, detection mechanisms, DfT measures, baselines, costs."""

from .cost import (TestCost, current_only_cost, defect_oriented_cost,
                   specification_oriented_cost)
from .detection import (MissingCodeResult, dynamic_missing_code_test,
                        histogram, missing_code_test)
from .optimize import (MISSING_CODE, TestPlan, full_plan_cost,
                       measurement_cost, optimize_test_plan)
from .dft import (DfTConfig, FULL_DFT, NO_DFT, comparator_layout_for)
from .spec import SpecMeasurement, measure_static, spec_test_detects
from .stimuli import (CURRENT_MEASUREMENTS, CurrentTestStimulus,
                      MISSING_CODE_SAMPLES, MissingCodeStimulus,
                      SAMPLE_RATE)

__all__ = [
    "TestCost", "current_only_cost", "defect_oriented_cost",
    "specification_oriented_cost", "MissingCodeResult", "histogram",
    "missing_code_test", "DfTConfig", "FULL_DFT", "NO_DFT",
    "comparator_layout_for", "SpecMeasurement", "measure_static",
    "spec_test_detects", "CURRENT_MEASUREMENTS", "CurrentTestStimulus",
    "MISSING_CODE_SAMPLES", "MissingCodeStimulus", "SAMPLE_RATE",
    "dynamic_missing_code_test", "MISSING_CODE", "TestPlan",
    "full_plan_cost", "measurement_cost", "optimize_test_plan",
]
