"""Specification-oriented (functional) test baseline.

The conventional alternative the paper argues against: measure the
converter's datasheet parameters — offset, gain, INL, DNL — and reject
parts that violate their limits.  Implemented over the behavioral ADC so
its defect coverage can be compared against the defect-oriented test on
the *same* fault population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..adc.flash import FlashADC

#: datasheet limits for the 8-bit video ADC
MAX_DNL_LSB = 0.9
MAX_INL_LSB = 1.5
MAX_OFFSET_LSB = 2.0
MAX_GAIN_ERROR_FRACTION = 0.03


@dataclass(frozen=True)
class SpecMeasurement:
    """Static-performance measurement of one device.

    Attributes:
        dnl: worst |DNL| in LSB.
        inl: worst |INL| in LSB.
        offset_lsb: zero-crossing offset in LSB.
        gain_error: full-scale gain error (fraction).
    """

    dnl: float
    inl: float
    offset_lsb: float
    gain_error: float

    def passes(self) -> bool:
        return (self.dnl <= MAX_DNL_LSB and self.inl <= MAX_INL_LSB and
                abs(self.offset_lsb) <= MAX_OFFSET_LSB and
                abs(self.gain_error) <= MAX_GAIN_ERROR_FRACTION)


def measure_static(adc: FlashADC, n_points: int = 16384
                   ) -> SpecMeasurement:
    """Ramp-based static characterisation (code transition levels)."""
    lo, hi = adc.full_scale()
    span = hi - lo
    n_codes = 2 ** adc.n_bits
    lsb = span / n_codes
    vins = np.linspace(lo - 0.05 * span, hi + 0.05 * span, n_points)
    codes = adc.convert_many(vins)

    # transition level T[k]: first input producing a code >= k
    transitions = np.full(n_codes, np.nan)
    for k in range(1, n_codes):
        idx = np.argmax(codes >= k)
        if codes[idx] >= k:
            transitions[k] = vins[idx]

    ideal = lo + lsb * np.arange(n_codes)
    valid = ~np.isnan(transitions[1:])
    if not np.any(valid):
        # completely dead converter: everything out of spec
        return SpecMeasurement(dnl=float("inf"), inl=float("inf"),
                               offset_lsb=float("inf"),
                               gain_error=float("inf"))

    t = transitions[1:][valid]
    ideal_t = ideal[1:][valid]
    inl = np.max(np.abs(t - ideal_t)) / lsb

    widths = np.diff(transitions[1:])
    widths = widths[~np.isnan(widths)]
    if len(widths):
        dnl = float(np.max(np.abs(widths / lsb - 1.0)))
    else:
        dnl = float("inf")

    offset_lsb = float((t[0] - ideal_t[0]) / lsb)
    gain_error = float((t[-1] - t[0]) / max(ideal_t[-1] - ideal_t[0],
                                            1e-12) - 1.0)
    # a missing transition anywhere is itself a gross DNL violation
    if np.any(~valid):
        dnl = float("inf")
    return SpecMeasurement(dnl=dnl, inl=inl, offset_lsb=offset_lsb,
                           gain_error=gain_error)


def spec_test_detects(adc: FlashADC) -> bool:
    """True when the spec test rejects the (faulty) device."""
    return not measure_static(adc).passes()
