"""Shared CLI argument group for the analog engine knobs.

Every entry point that runs fault simulations — ``python -m repro``
(path artifacts and campaigns), ``scripts/run_full_experiments.py``
and the kernel benchmark — exposes the same engine knobs through
:func:`add_engine_arguments`.  The defaults are read off
:class:`~repro.faultsim.engine.EngineConfig` itself, so the CLI can
never drift from the engine's actual defaults, and
:func:`engine_knobs` turns the parsed namespace back into the keyword
overrides :class:`~repro.core.path.PathConfig` (and through it every
:class:`~repro.campaign.tasks.EngineSpec`) accepts.
"""

from __future__ import annotations

import argparse
from dataclasses import fields
from typing import Dict

from ..adc.process import CORNER_SETS
from ..circuit.backend import SOLVERS
from ..faultsim.engine import EngineConfig

_ENGINE_DEFAULTS = {f.name: f.default for f in fields(EngineConfig)}


def add_engine_arguments(parser: argparse.ArgumentParser):
    """Attach the engine-knob argument group to a parser.

    Returns the group so callers can extend it.
    """
    group = parser.add_argument_group(
        "engine", "analog fault-engine knobs (defaults come from "
                  "EngineConfig)")
    group.add_argument("--dt", type=float,
                       default=_ENGINE_DEFAULTS["dt"],
                       help="transient timestep in seconds "
                            "(default: %(default)g)")
    group.add_argument("--big-probe", type=float,
                       default=_ENGINE_DEFAULTS["big_probe"],
                       help="comparator above/below input offset in "
                            "volts (default: %(default)g)")
    group.add_argument("--small-probe", type=float,
                       default=_ENGINE_DEFAULTS["small_probe"],
                       help="comparator offset-detection probe in "
                            "volts (default: %(default)g)")
    group.add_argument("--corners", choices=CORNER_SETS, default=None,
                       help="good-space corner set "
                            "(default: reduced)")
    group.add_argument("--cold-start", dest="warm_start",
                       action="store_false",
                       default=_ENGINE_DEFAULTS["warm_start"],
                       help="disable baseline reuse and warm-start "
                            "Newton continuation (results identical; "
                            "exhaustive-mode reference)")
    group.add_argument("--no-drop", dest="drop", action="store_false",
                       default=_ENGINE_DEFAULTS["drop"],
                       help="disable detection-driven fault dropping "
                            "— run every stimulus for every class "
                            "(results identical; exhaustive-mode "
                            "reference)")
    group.add_argument("--solver", choices=SOLVERS,
                       default=_ENGINE_DEFAULTS["solver"],
                       help="linear-solve backend: auto/dense/"
                            "dense-batched are bit-identical; sparse "
                            "factorises through SuperLU (needs scipy) "
                            "and scales to full-chip systems "
                            "(default: %(default)s)")
    return group


def engine_knobs(args: argparse.Namespace) -> Dict:
    """Parsed namespace -> PathConfig/EngineSpec keyword overrides.

    Absent attributes fall back to the EngineConfig defaults, so a
    parser that never called :func:`add_engine_arguments` still works.
    """
    corners = None
    if getattr(args, "corners", None):
        from ..adc.process import corner_set
        corners = tuple(corner_set(args.corners))
    return {
        "dt": getattr(args, "dt", _ENGINE_DEFAULTS["dt"]),
        "big_probe": getattr(args, "big_probe",
                             _ENGINE_DEFAULTS["big_probe"]),
        "small_probe": getattr(args, "small_probe",
                               _ENGINE_DEFAULTS["small_probe"]),
        "corners": corners,
        "warm_start": getattr(args, "warm_start",
                              _ENGINE_DEFAULTS["warm_start"]),
        "drop": getattr(args, "drop", _ENGINE_DEFAULTS["drop"]),
        "solver": getattr(args, "solver", _ENGINE_DEFAULTS["solver"]),
    }
