"""Outgoing-quality model: fault coverage -> shipped defect level.

The paper's motivation is economic and reliability-driven: limited
functional verification "does not ensure that all defects are detected,
causing potential reliability problems".  This module quantifies that
with the standard models of the IFA literature:

* Poisson yield: a chip with expected fault count ``lambda`` is fault
  free with probability ``exp(-lambda)``.
* Williams-Brown defect level: with process yield Y and fault coverage
  T, the shipped defect level is ``DL = 1 - Y**(1 - T)``.

The chip-level fault rate comes straight from the path results: each
macro's fault-per-defect yield times its defect exposure (area x
density).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..macrotest.coverage import MacroResult, global_breakdown

#: spot-defect density of a healthy mid-90s CMOS line (defects / cm^2)
DEFAULT_DEFECT_DENSITY_CM2 = 1.0

_UM2_PER_CM2 = 1e8


def chip_fault_rate(results: Sequence[MacroResult],
                    defect_density_cm2: float =
                    DEFAULT_DEFECT_DENSITY_CM2) -> float:
    """Expected circuit-level fault count per chip (lambda).

    Each macro contributes ``instances * area * density * fault_yield``
    — the same uniform-defect-density scaling the paper uses for its
    global coverage numbers.

    Note: ``fault_yield`` is faults per *sprinkled* defect, and the
    sprinkling density is per macro bounding box, so the product is the
    expected fault count when the physical defect density applies.
    """
    if defect_density_cm2 <= 0:
        raise ValueError("defect density must be positive")
    # exposure = expected defect count over the macro's area; faults =
    # defects * (faults per sprinkled defect)
    return sum(m.instances * m.bbox_area / _UM2_PER_CM2 *
               defect_density_cm2 * m.fault_yield for m in results)


def poisson_yield(fault_rate: float) -> float:
    """Probability a chip has no circuit-level fault."""
    if fault_rate < 0:
        raise ValueError("fault rate must be non-negative")
    return math.exp(-fault_rate)


def defect_level(process_yield: float, coverage: float) -> float:
    """Williams-Brown shipped defect level ``1 - Y**(1 - T)``.

    Args:
        process_yield: fraction of fault-free chips (0, 1].
        coverage: fault coverage of the applied test [0, 1].
    """
    if not 0.0 < process_yield <= 1.0:
        raise ValueError("yield must be in (0, 1]")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    return 1.0 - process_yield ** (1.0 - coverage)


def dppm(process_yield: float, coverage: float) -> float:
    """Shipped defective parts per million."""
    return 1e6 * defect_level(process_yield, coverage)


@dataclass(frozen=True)
class QualityReport:
    """Outgoing quality of one test strategy on one design.

    Attributes:
        fault_rate: expected faults per chip (lambda).
        process_yield: Poisson fault-free probability.
        coverage: fault coverage of the test.
        shipped_dppm: resulting defective parts per million.
    """

    fault_rate: float
    process_yield: float
    coverage: float
    shipped_dppm: float

    def __str__(self) -> str:
        return (f"lambda={self.fault_rate:.3f}  "
                f"yield={100 * self.process_yield:.1f}%  "
                f"coverage={100 * self.coverage:.1f}%  "
                f"DPPM={self.shipped_dppm:.0f}")


def quality_report(results: Sequence[MacroResult],
                   coverage: Optional[float] = None,
                   defect_density_cm2: float =
                   DEFAULT_DEFECT_DENSITY_CM2) -> QualityReport:
    """Full quality picture for a path run.

    Args:
        results: macro results of a path run.
        coverage: test fault coverage; defaults to the run's own global
            detection total.
    """
    rate = chip_fault_rate(results, defect_density_cm2)
    y = poisson_yield(rate)
    t = coverage if coverage is not None else \
        global_breakdown(results).total
    return QualityReport(fault_rate=rate, process_yield=y, coverage=t,
                         shipped_dppm=dppm(y, t))
