"""DfT advisor: diagnose escaped faults and recommend countermeasures.

Paper section 3.4: "The methodology used makes it easy to investigate
the reasons for the undetectability of faults."  The authors did that
investigation by hand and derived two DfT measures plus two general
mixed-signal guidelines (section 4).  This module automates the
investigation: every undetected fault class is classified into an escape
category, and each category maps to the corresponding recommendation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..defects.collapse import FaultClass
from ..faultsim.noncat import NearMissShortFault
from ..faultsim.signatures import VoltageSignature
from ..macrotest.coverage import DetectionRecord, MacroResult

#: escape categories and their recommendations
RECOMMENDATIONS: Dict[str, str] = {
    "similar_signal_bridge":
        "separate lines carrying almost identical signals (re-order "
        "the bias-line tracks)",
    "masked_supply_current":
        "remove the quiescent-current spread masking supply "
        "measurements (redesign the flipflop leakage path)",
    "dynamic_only":
        "add an at-speed test: the fault only degrades high-frequency "
        "behaviour (clock-value signature)",
    "parametric":
        "sub-LSB parametric deviation: needs precision parametric "
        "tests or design margin",
    "unknown":
        "no structural explanation found: simulate with finer stimuli",
}

#: escape category -> the optimizer campaign genes that counter it
#: (see repro.optimize: the advisor's fixed menu seeds generation 0)
CATEGORY_GENES: Dict[str, Tuple[str, ...]] = {
    "similar_signal_bridge": ("bias_line_reorder",),
    "masked_supply_current": ("flipflop_redesign",),
    "dynamic_only": ("dynamic_test",),
    "parametric": (),
    "unknown": (),
}

#: net pairs that nominally carry almost identical signals
SIMILAR_SIGNAL_PAIRS = (frozenset({"vbn1", "vbn2"}),)

#: supply nets whose loading lands in the (maskable) IVdd measurement
SUPPLY_NETS = frozenset({"vdd", "gnd"})


@dataclass(frozen=True)
class EscapeDiagnosis:
    """One undetected fault class, explained.

    Attributes:
        fault_class: the escaping class.
        category: escape-category key (see :data:`RECOMMENDATIONS`).
        recommendation: the countermeasure for this category.
    """

    fault_class: FaultClass
    category: str

    @property
    def recommendation(self) -> str:
        return RECOMMENDATIONS[self.category]


def _fault_nets(fault) -> Set[str]:
    if hasattr(fault, "nets"):
        return set(fault.nets)
    nets: Set[str] = set()
    if hasattr(fault, "net"):
        nets.add(fault.net)
    return nets


def classify_escape(fault_class: FaultClass,
                    record: DetectionRecord) -> str:
    """Escape category of one undetected fault class."""
    fault = fault_class.representative
    nets = frozenset(_fault_nets(fault))
    if any(nets >= pair for pair in SIMILAR_SIGNAL_PAIRS):
        return "similar_signal_bridge"
    if record.voltage_signature == VoltageSignature.CLOCK_VALUE:
        return "dynamic_only"
    if nets & SUPPLY_NETS:
        return "masked_supply_current"
    if isinstance(fault, NearMissShortFault):
        return "parametric"
    if fault.fault_type in ("short",) and len(nets) == 2:
        # a bridge between electrically close nodes that moved nothing
        return "parametric"
    return "unknown"


def diagnose_escapes(classes: Sequence[FaultClass],
                     records: Sequence[DetectionRecord]
                     ) -> List[EscapeDiagnosis]:
    """Diagnose every undetected class of a macro analysis.

    Args:
        classes: fault classes, in the same order as *records* (as the
            path produces them).
    """
    if len(classes) != len(records):
        raise ValueError("classes and records must align")
    out: List[EscapeDiagnosis] = []
    for fc, record in zip(classes, records):
        if record.detected:
            continue
        out.append(EscapeDiagnosis(
            fault_class=fc, category=classify_escape(fc, record)))
    return out


def recommendations(diagnoses: Sequence[EscapeDiagnosis],
                    total_faults: int) -> List[Tuple[str, float, str]]:
    """Aggregate: (category, escaping fault fraction, recommendation),
    largest population first."""
    if total_faults <= 0:
        raise ValueError("total_faults must be positive")
    weights: Counter = Counter()
    for d in diagnoses:
        weights[d.category] += d.fault_class.count
    out = [(category, count / total_faults,
            RECOMMENDATIONS[category])
           for category, count in weights.most_common()]
    return out


def recommended_gene_flags(diagnoses: Sequence[EscapeDiagnosis]
                           ) -> Dict[str, bool]:
    """The advisor's recommendations as optimizer campaign genes.

    Maps every diagnosed escape category through
    :data:`CATEGORY_GENES` and returns which genes
    (``flipflop_redesign`` / ``bias_line_reorder`` /
    ``dynamic_test``) the fixed menu would switch on — the
    generation-0 seed of :mod:`repro.optimize` (the search is then
    free to drop a recommendation the objectives don't justify).
    """
    flags = {"flipflop_redesign": False, "bias_line_reorder": False,
             "dynamic_test": False}
    for diagnosis in diagnoses:
        for gene in CATEGORY_GENES.get(diagnosis.category, ()):
            flags[gene] = True
    return flags


def render_advice(classes: Sequence[FaultClass],
                  records: Sequence[DetectionRecord],
                  total_faults: int) -> str:
    """Paper-section-3.4-style escape analysis report."""
    diagnoses = diagnose_escapes(classes, records)
    if not diagnoses:
        return "no escaping fault classes: no DfT action needed"
    lines = ["escape analysis (undetected fault classes):", ""]
    for category, fraction, recommendation in \
            recommendations(diagnoses, total_faults):
        n = sum(1 for d in diagnoses if d.category == category)
        lines.append(f"  {100 * fraction:5.1f}% of faults "
                     f"({n} classes): {category}")
        lines.append(f"         -> {recommendation}")
    return "\n".join(lines)
