"""Persistence for path results (JSON).

A paper-scale path run takes tens of minutes; this module saves its
results so tables can be re-rendered, compared across runs, and diffed
against the paper without re-simulating.  The serialisation captures the
detection records, macro bookkeeping and the run configuration summary —
everything the renderers and the coverage/quality models consume.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..faultsim.signatures import CurrentMechanism, VoltageSignature
from ..macrotest.coverage import DetectionRecord, MacroResult

FORMAT_VERSION = 1


class SerializeError(Exception):
    """Raised for malformed or incompatible serialised data."""


def record_to_dict(record: DetectionRecord) -> Dict:
    return {
        "count": record.count,
        "voltage_detected": record.voltage_detected,
        "mechanisms": sorted(m.value for m in record.mechanisms),
        "voltage_signature": (record.voltage_signature.value
                              if record.voltage_signature else None),
        "fault_type": record.fault_type,
        "violated_keys": sorted(list(k) for k in record.violated_keys),
    }


def record_from_dict(data: Dict) -> DetectionRecord:
    try:
        signature = data.get("voltage_signature")
        return DetectionRecord(
            count=int(data["count"]),
            voltage_detected=bool(data["voltage_detected"]),
            mechanisms=frozenset(CurrentMechanism(m)
                                 for m in data["mechanisms"]),
            voltage_signature=(VoltageSignature(signature)
                               if signature else None),
            fault_type=data.get("fault_type", "short"),
            violated_keys=frozenset(
                tuple(k) for k in data.get("violated_keys", ())))
    except (KeyError, ValueError) as exc:
        raise SerializeError(f"bad detection record: {exc}") from exc


def macro_to_dict(result: MacroResult) -> Dict:
    return {
        "name": result.name,
        "bbox_area": result.bbox_area,
        "instances": result.instances,
        "defects_sprinkled": result.defects_sprinkled,
        "records": [record_to_dict(r) for r in result.records],
    }


def macro_from_dict(data: Dict) -> MacroResult:
    try:
        return MacroResult(
            name=data["name"],
            bbox_area=float(data["bbox_area"]),
            instances=int(data["instances"]),
            defects_sprinkled=int(data["defects_sprinkled"]),
            records=tuple(record_from_dict(r)
                          for r in data["records"]))
    except KeyError as exc:
        raise SerializeError(f"missing macro field: {exc}") from exc


def save_macro_results(results: Dict[str, Dict[str, Optional[MacroResult]]],
                       path: Union[str, Path],
                       metadata: Optional[Dict] = None) -> None:
    """Save macro results to a JSON file.

    Args:
        results: ``{macro_name: {"cat": MacroResult,
            "noncat": MacroResult | None}}``.
        metadata: free-form run description (budgets, seed, DfT label).
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": metadata or {},
        "macros": {
            name: {
                kind: (macro_to_dict(result) if result else None)
                for kind, result in kinds.items()
            }
            for name, kinds in results.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_macro_results(path: Union[str, Path]
                       ) -> Dict[str, Dict[str, Optional[MacroResult]]]:
    """Load macro results saved by :func:`save_macro_results`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializeError(f"cannot read {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializeError(f"unsupported format version {version!r}")
    out: Dict[str, Dict[str, Optional[MacroResult]]] = {}
    for name, kinds in payload.get("macros", {}).items():
        out[name] = {kind: (macro_from_dict(data) if data else None)
                     for kind, data in kinds.items()}
    return out


def save_path_result(result, path: Union[str, Path]) -> None:
    """Persist a :class:`~repro.core.path.PathResult`'s measurables."""
    results = {
        name: {"cat": analysis.result, "noncat": analysis.noncat_result}
        for name, analysis in result.macros.items()
    }
    config = result.config
    metadata = {
        "n_defects": config.n_defects,
        "magnitude_defects": config.magnitude_defects,
        "seed": config.seed,
        "dft": config.dft.label,
        "max_classes": config.max_classes,
        "include_noncat": config.include_noncat,
    }
    save_macro_results(results, path, metadata=metadata)
