"""Persistence for path results (JSON).

A paper-scale path run takes tens of minutes; this module saves its
results so tables can be re-rendered, compared across runs, and diffed
against the paper without re-simulating.  The serialisation captures the
detection records, macro bookkeeping and the run configuration summary —
everything the renderers and the coverage/quality models consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..macrotest.coverage import DetectionRecord, MacroResult

FORMAT_VERSION = 1


class SerializeError(Exception):
    """Raised for malformed or incompatible serialised data."""


def record_to_dict(record: DetectionRecord) -> Dict:
    """Thin wrapper over :meth:`DetectionRecord.to_dict`."""
    return record.to_dict()


def record_from_dict(data: Dict) -> DetectionRecord:
    """:meth:`DetectionRecord.from_dict` with the SerializeError
    contract."""
    try:
        return DetectionRecord.from_dict(data)
    except (KeyError, ValueError) as exc:
        raise SerializeError(f"bad detection record: {exc}") from exc


def macro_to_dict(result: MacroResult) -> Dict:
    """Thin wrapper over :meth:`MacroResult.to_dict`."""
    return result.to_dict()


def macro_from_dict(data: Dict) -> MacroResult:
    """:meth:`MacroResult.from_dict` with the SerializeError
    contract."""
    try:
        return MacroResult.from_dict(data)
    except (KeyError, ValueError) as exc:
        raise SerializeError(f"bad macro result: {exc}") from exc


def save_macro_results(results: Dict[str, Dict[str, Optional[MacroResult]]],
                       path: Union[str, Path],
                       metadata: Optional[Dict] = None) -> None:
    """Save macro results to a JSON file.

    Args:
        results: ``{macro_name: {"cat": MacroResult,
            "noncat": MacroResult | None}}``.
        metadata: free-form run description (budgets, seed, DfT label).
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": metadata or {},
        "macros": {
            name: {
                kind: (macro_to_dict(result) if result else None)
                for kind, result in kinds.items()
            }
            for name, kinds in results.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_macro_results(path: Union[str, Path]
                       ) -> Dict[str, Dict[str, Optional[MacroResult]]]:
    """Load macro results saved by :func:`save_macro_results`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializeError(f"cannot read {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializeError(f"unsupported format version {version!r}")
    out: Dict[str, Dict[str, Optional[MacroResult]]] = {}
    for name, kinds in payload.get("macros", {}).items():
        out[name] = {kind: (macro_from_dict(data) if data else None)
                     for kind, data in kinds.items()}
    return out


def save_path_result(result, path: Union[str, Path]) -> None:
    """Persist a :class:`~repro.core.path.PathResult`'s measurables.

    Routed through :meth:`PathResult.to_dict` — the config knobs land
    in ``metadata`` and the per-macro measurables in ``macros``, in
    the same ``cat`` / ``noncat`` layout :func:`load_macro_results`
    reads.
    """
    data = result.to_dict()
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": data["config"],
        "macros": data["macros"],
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_path_result(path: Union[str, Path]):
    """Load a :class:`~repro.core.path.PathResult` saved by
    :func:`save_path_result` (``classes`` comes back empty)."""
    from .path import PathResult
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializeError(f"cannot read {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializeError(f"unsupported format version {version!r}")
    try:
        return PathResult.from_dict({"config": payload["metadata"],
                                     "macros": payload["macros"]})
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise SerializeError(f"bad path result: {exc}") from exc
