"""The defect-oriented test path (paper Fig. 1), end to end.

For each macro cell: layout -> Monte Carlo defect sprinkling -> fault
extraction -> fault collapsing (-> optional large-campaign magnitude
rescaling) -> circuit-level fault models -> analog fault simulation ->
fault signatures -> sensitisation / propagation -> detection records.
The per-macro results are then area-scaled into global coverage.

Runtime knobs: ``n_defects`` sizes the class-discovery campaign,
``magnitude_defects`` optionally re-sprinkles a larger campaign for
statistically significant class magnitudes (the paper's 25 000 /
10 000 000 split), and ``max_classes`` caps how many classes are
simulated (largest magnitudes first — they dominate the coverage mass).
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..adc.comparator import comparator_layout
from ..adc.ladder import SEGMENTS_PER_COARSE, ladder_slice_layout
from ..adc.process import Process, typical
from ..defects.collapse import (FaultClass, collapse, rescale_magnitudes,
                                type_table)
from ..defects.analyze import analyze_defects
from ..defects.sprinkle import sprinkle
from ..defects.statistics import DefectStatistics
from ..faultsim.engine import ComparatorFaultEngine, EngineConfig
from ..faultsim.macro_engines import (BiasgenFaultEngine,
                                      ClockgenFaultEngine,
                                      DecoderFaultEngine,
                                      LadderFaultEngine)
from ..faultsim.noncat import derive_noncatastrophic
from ..faultsim.signatures import PHASES
from ..macrotest.coverage import (DetectionRecord, MacroResult,
                                  global_breakdown, macro_breakdown)
from ..macrotest.macro import standard_partition
from ..macrotest.propagate import propagate_comparator_fault
from ..testgen.dft import DfTConfig, NO_DFT, comparator_layout_for
from ..adc.biasgen import biasgen_layout
from ..adc.clockgen import clockgen_layout


@dataclass(frozen=True)
class PathConfig:
    """Configuration of one full path run.

    Attributes:
        n_defects: class-discovery Monte Carlo budget per macro.
        magnitude_defects: optional larger campaign for magnitudes.
        seed: RNG seed (defect sprinkling is deterministic per seed).
        dft: which DfT measures are applied.
        include_noncat: also derive and simulate non-catastrophic
            faults.
        max_classes: cap on simulated classes per macro (largest
            first); None simulates everything.
        process: corner for the faulty-instance simulations.
        dynamic_test: additionally run the at-speed missing-code test
            during propagation (our extension: catches the 'clock
            value' fault population at no extra tester time).
    """

    n_defects: int = 25000
    magnitude_defects: Optional[int] = None
    seed: int = 1995
    dft: DfTConfig = NO_DFT
    include_noncat: bool = True
    max_classes: Optional[int] = None
    process: Process = field(default_factory=typical)
    statistics: DefectStatistics = field(
        default_factory=DefectStatistics)
    dynamic_test: bool = False


@dataclass(frozen=True)
class MacroAnalysis:
    """Everything the path produced for one macro type.

    Attributes:
        result: catastrophic-fault MacroResult (records + weights).
        noncat_result: near-miss MacroResult (None when disabled).
        classes: the collapsed catastrophic fault classes.
    """

    result: MacroResult
    noncat_result: Optional[MacroResult]
    classes: Tuple[FaultClass, ...]


@dataclass(frozen=True)
class PathResult:
    """Output of a full path run over all macros."""

    config: PathConfig
    macros: Dict[str, MacroAnalysis]

    def macro_results(self, noncat: bool = False) -> List[MacroResult]:
        out = []
        for analysis in self.macros.values():
            r = analysis.noncat_result if noncat else analysis.result
            if r is not None and r.total_faults > 0:
                out.append(r)
        return out

    def global_coverage(self, noncat: bool = False):
        return global_breakdown(self.macro_results(noncat))


class DefectOrientedTestPath:
    """Orchestrates the methodology over the five-macro partition."""

    def __init__(self, config: Optional[PathConfig] = None) -> None:
        self.config = config or PathConfig()
        self._comparator_engine: Optional[ComparatorFaultEngine] = None

    # -- shared pieces -----------------------------------------------------

    def _classes_for(self, cell) -> List[FaultClass]:
        cfg = self.config
        defects = sprinkle(cell, cfg.n_defects, stats=cfg.statistics,
                           seed=cfg.seed)
        faults = analyze_defects(cell, defects)
        classes = collapse(faults)
        if cfg.magnitude_defects and cfg.magnitude_defects > \
                cfg.n_defects:
            large_faults = analyze_defects(
                cell, sprinkle(cell, cfg.magnitude_defects,
                               stats=cfg.statistics,
                               seed=cfg.seed + 1))
            classes = rescale_magnitudes(classes, collapse(large_faults))
        if cfg.max_classes is not None:
            classes = classes[:cfg.max_classes]
        return classes

    def comparator_engine(self) -> ComparatorFaultEngine:
        if self._comparator_engine is None:
            self._comparator_engine = ComparatorFaultEngine(EngineConfig(
                dft=self.config.dft.flipflop_redesign,
                process=self.config.process))
        return self._comparator_engine

    def _ivdd_halfwidth(self) -> float:
        """Chip-level IVdd acceptance half-width from the comparator
        good space (worst phase)."""
        gs = self.comparator_engine().good_space()
        widths = [(w.hi - w.lo) / 2.0
                  for key, w in gs.windows.items() if key[0] == "ivdd"]
        return max(widths)

    # -- per-macro analyses ---------------------------------------------------

    def analyze_comparator(self,
                           progress: Optional[Callable] = None
                           ) -> MacroAnalysis:
        cell = comparator_layout_for(self.config.dft)
        classes = self._classes_for(cell)
        engine = self.comparator_engine()

        def records_for(class_list) -> Tuple[DetectionRecord, ...]:
            records = []
            for k, fc in enumerate(class_list):
                res = engine.simulate_class(fc)
                voltage = propagate_comparator_fault(
                    res.signature, fc.representative,
                    at_speed=self.config.dynamic_test)
                records.append(DetectionRecord(
                    count=fc.count, voltage_detected=voltage,
                    mechanisms=res.signature.mechanisms,
                    voltage_signature=res.signature.voltage,
                    fault_type=fc.fault_type,
                    violated_keys=res.signature.violated_keys))
                if progress is not None:
                    progress("comparator", k + 1, len(class_list))
            return tuple(records)

        result = MacroResult(name="comparator", bbox_area=cell.area(),
                             instances=256,
                             defects_sprinkled=self.config.n_defects,
                             records=records_for(classes))
        noncat_result = None
        if self.config.include_noncat:
            noncat_classes = derive_noncatastrophic(classes)
            if self.config.max_classes is not None:
                noncat_classes = noncat_classes[:self.config.max_classes]
            noncat_result = MacroResult(
                name="comparator", bbox_area=cell.area(), instances=256,
                defects_sprinkled=self.config.n_defects,
                records=records_for(noncat_classes))
        return MacroAnalysis(result=result, noncat_result=noncat_result,
                             classes=tuple(classes))

    def _analyze_with_engine(self, name: str, cell, instances: int,
                             engine) -> MacroAnalysis:
        classes = self._classes_for(cell)
        records = tuple(engine.simulate_class(fc) for fc in classes)
        result = MacroResult(name=name, bbox_area=cell.area(),
                             instances=instances,
                             defects_sprinkled=self.config.n_defects,
                             records=records)
        noncat_result = None
        if self.config.include_noncat:
            noncat_classes = derive_noncatastrophic(classes)
            if self.config.max_classes is not None:
                noncat_classes = noncat_classes[:self.config.max_classes]
            noncat_result = MacroResult(
                name=name, bbox_area=cell.area(), instances=instances,
                defects_sprinkled=self.config.n_defects,
                records=tuple(engine.simulate_class(fc)
                              for fc in noncat_classes))
        return MacroAnalysis(result=result, noncat_result=noncat_result,
                             classes=tuple(classes))

    def analyze_ladder(self) -> MacroAnalysis:
        engine = LadderFaultEngine(
            process=self.config.process,
            ivdd_window_halfwidth=self._ivdd_halfwidth())
        return self._analyze_with_engine(
            "ladder", ladder_slice_layout(),
            256 // SEGMENTS_PER_COARSE, engine)

    def analyze_clockgen(self) -> MacroAnalysis:
        engine = ClockgenFaultEngine(process=self.config.process)
        return self._analyze_with_engine("clockgen", clockgen_layout(),
                                         1, engine)

    def analyze_biasgen(self) -> MacroAnalysis:
        engine = BiasgenFaultEngine(
            process=self.config.process,
            ivdd_window_halfwidth=self._ivdd_halfwidth())
        cell = biasgen_layout(dft=self.config.dft.bias_line_reorder)
        return self._analyze_with_engine("biasgen", cell, 1, engine)

    def analyze_decoder(self,
                        comparator_yield: float = 0.025
                        ) -> MacroAnalysis:
        """Digital decoder analysis.

        Bridges stand for the short population, stuck-ats for the
        opens; counts are weighted ~95/5 to match the defect mix.  The
        decoder's fault yield is approximated by the comparator's (both
        are dense layouts), via the synthetic ``defects_sprinkled``.
        """
        engine = DecoderFaultEngine()
        bridge_records, stuck_records = engine.run()
        weighted = [replace(r, count=11) for r in bridge_records] + \
            list(stuck_records)
        from ..macrotest.macro import decoder_area
        total_faults = sum(r.count for r in weighted)
        pseudo_defects = max(1, int(total_faults / comparator_yield))
        result = MacroResult(name="decoder", bbox_area=decoder_area(),
                             instances=1,
                             defects_sprinkled=pseudo_defects,
                             records=tuple(weighted))
        return MacroAnalysis(result=result, noncat_result=result,
                             classes=tuple())

    # -- full run -----------------------------------------------------------------

    def run(self, macros: Optional[Sequence[str]] = None,
            progress: Optional[Callable] = None) -> PathResult:
        """Run the path over the requested macros (default: all five)."""
        wanted = list(macros) if macros is not None else [
            "comparator", "ladder", "biasgen", "clockgen", "decoder"]
        analyses: Dict[str, MacroAnalysis] = {}
        for name in wanted:
            if name == "comparator":
                analyses[name] = self.analyze_comparator(progress)
            elif name == "ladder":
                analyses[name] = self.analyze_ladder()
            elif name == "biasgen":
                analyses[name] = self.analyze_biasgen()
            elif name == "clockgen":
                analyses[name] = self.analyze_clockgen()
            elif name == "decoder":
                analyses[name] = self.analyze_decoder()
            else:
                raise ValueError(f"unknown macro {name!r}")
        return PathResult(config=self.config, macros=analyses)


def fast_config(dft: DfTConfig = NO_DFT) -> PathConfig:
    """Reduced-budget configuration for tests and quick benchmarks.

    Controlled by the ``REPRO_FULL`` environment variable: when set, the
    full paper-scale budgets are used instead.
    """
    if os.environ.get("REPRO_FULL"):
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft)
    return PathConfig(n_defects=8000, max_classes=40, dft=dft)
