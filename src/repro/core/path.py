"""The defect-oriented test path (paper Fig. 1), end to end.

For each macro cell: layout -> Monte Carlo defect sprinkling -> fault
extraction -> fault collapsing (-> optional large-campaign magnitude
rescaling) -> circuit-level fault models -> analog fault simulation ->
fault signatures -> sensitisation / propagation -> detection records.
The per-macro results are then area-scaled into global coverage.

Runtime knobs: ``n_defects`` sizes the class-discovery campaign,
``magnitude_defects`` optionally re-sprinkles a larger campaign for
statistically significant class magnitudes (the paper's 25 000 /
10 000 000 split), and ``max_classes`` caps how many classes are
simulated (largest magnitudes first — they dominate the coverage mass).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..adc.ladder import SEGMENTS_PER_COARSE, ladder_slice_layout
from ..adc.process import Process, typical
from ..defects.collapse import FaultClass
from ..defects.statistics import DefectStatistics
from ..faultsim.engine import ComparatorFaultEngine
from ..faultsim.macro_engines import (BiasgenFaultEngine,
                                      ClockgenFaultEngine,
                                      DecoderFaultEngine,
                                      LadderFaultEngine)
from ..faultsim.noncat import derive_noncatastrophic
from ..faultsim.signatures import PHASES
from ..macrotest.coverage import (DetectionRecord, MacroResult,
                                  global_breakdown, macro_breakdown)
from ..macrotest.macro import standard_partition
from ..testgen.dft import DfTConfig, NO_DFT, comparator_layout_for
from ..adc.biasgen import biasgen_layout
from ..adc.clockgen import clockgen_layout


@dataclass(frozen=True)
class PathConfig:
    """Configuration of one full path run.

    Attributes:
        n_defects: class-discovery Monte Carlo budget per macro.
        magnitude_defects: optional larger campaign for magnitudes.
        seed: RNG seed (defect sprinkling is deterministic per seed).
        dft: which DfT measures are applied.
        include_noncat: also derive and simulate non-catastrophic
            faults.
        max_classes: cap on simulated classes per macro (largest
            first); None simulates everything.
        process: corner for the faulty-instance simulations.
        dynamic_test: additionally run the at-speed missing-code test
            during propagation (our extension: catches the 'clock
            value' fault population at no extra tester time).
        dt: transient timestep of the analog fault engines.
        big_probe: comparator above/below input offset (volts).
        small_probe: comparator offset-detection probe (volts).
        corners: good-space corner set (None: the reduced corners).
        warm_start: reuse the good-circuit baseline and warm-start
            faulty Newton solves from it (results identical;
            ``--cold-start`` disables).
        drop: stop a class's stimulus schedule once its signature has
            left the good space (results identical; ``--no-drop``
            disables).
        solver: linear backend for the analog solves
            (:data:`repro.circuit.backend.SOLVERS`; ``--solver``).
            The dense family is bit-identical; ``sparse`` agrees
            within Newton tolerance and scales to full-chip systems.
    """

    n_defects: int = 25000
    magnitude_defects: Optional[int] = None
    seed: int = 1995
    dft: DfTConfig = NO_DFT
    include_noncat: bool = True
    max_classes: Optional[int] = None
    process: Process = field(default_factory=typical)
    statistics: DefectStatistics = field(
        default_factory=DefectStatistics)
    dynamic_test: bool = False
    dt: float = 1e-9
    big_probe: float = 0.1
    small_probe: float = 8e-3
    corners: Optional[Tuple[Process, ...]] = None
    warm_start: bool = True
    drop: bool = True
    solver: str = "auto"

    def to_dict(self) -> Dict:
        """Stable JSON-able form of the run's knobs.

        ``process``, ``statistics`` and ``corners`` are not encoded —
        they revert to their defaults on :meth:`from_dict` — so the
        dictionary stays flat, diffable and version-stable.
        """
        return {
            "n_defects": self.n_defects,
            "magnitude_defects": self.magnitude_defects,
            "seed": self.seed,
            "dft": {"flipflop_redesign": self.dft.flipflop_redesign,
                    "bias_line_reorder": self.dft.bias_line_reorder,
                    "label": self.dft.label},
            "include_noncat": self.include_noncat,
            "max_classes": self.max_classes,
            "dynamic_test": self.dynamic_test,
            "dt": self.dt,
            "big_probe": self.big_probe,
            "small_probe": self.small_probe,
            "warm_start": self.warm_start,
            "drop": self.drop,
            "solver": self.solver,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PathConfig":
        """Inverse of :meth:`to_dict` (defaults fill absent knobs)."""
        dft = data.get("dft") or {}
        magnitude = data.get("magnitude_defects")
        max_classes = data.get("max_classes")
        return cls(
            n_defects=int(data["n_defects"]),
            magnitude_defects=(int(magnitude)
                               if magnitude is not None else None),
            seed=int(data.get("seed", 1995)),
            dft=DfTConfig(
                flipflop_redesign=bool(dft.get("flipflop_redesign",
                                               False)),
                bias_line_reorder=bool(dft.get("bias_line_reorder",
                                               False))),
            include_noncat=bool(data.get("include_noncat", True)),
            max_classes=(int(max_classes)
                         if max_classes is not None else None),
            dynamic_test=bool(data.get("dynamic_test", False)),
            dt=float(data.get("dt", 1e-9)),
            big_probe=float(data.get("big_probe", 0.1)),
            small_probe=float(data.get("small_probe", 8e-3)),
            warm_start=bool(data.get("warm_start", True)),
            drop=bool(data.get("drop", True)),
            solver=str(data.get("solver", "auto")))


@dataclass(frozen=True)
class MacroAnalysis:
    """Everything the path produced for one macro type.

    Attributes:
        result: catastrophic-fault MacroResult (records + weights).
        noncat_result: near-miss MacroResult (None when disabled).
        classes: the collapsed catastrophic fault classes.
    """

    result: MacroResult
    noncat_result: Optional[MacroResult]
    classes: Tuple[FaultClass, ...]

    def to_dict(self) -> Dict:
        """Measurables only, keyed ``cat`` / ``noncat`` (the layout
        :func:`~repro.core.serialize.load_macro_results` reads).  The
        FaultClass list is not serialised: classes are re-derivable
        from the config via the campaign planner."""
        return {
            "cat": self.result.to_dict(),
            "noncat": (self.noncat_result.to_dict()
                       if self.noncat_result else None),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MacroAnalysis":
        """Inverse of :meth:`to_dict` (``classes`` comes back
        empty)."""
        noncat = data.get("noncat")
        return cls(
            result=MacroResult.from_dict(data["cat"]),
            noncat_result=(MacroResult.from_dict(noncat)
                           if noncat else None),
            classes=tuple())


@dataclass(frozen=True)
class PathResult:
    """Output of a full path run over all macros."""

    config: PathConfig
    macros: Dict[str, MacroAnalysis]

    def macro_results(self, noncat: bool = False) -> List[MacroResult]:
        out = []
        for analysis in self.macros.values():
            r = analysis.noncat_result if noncat else analysis.result
            if r is not None and r.total_faults > 0:
                out.append(r)
        return out

    def global_coverage(self, noncat: bool = False):
        return global_breakdown(self.macro_results(noncat))

    def to_dict(self) -> Dict:
        """Stable JSON-able form: config knobs + per-macro
        measurables.  This is the one encoding every persistence path
        (CLI ``--out``, campaign exports, ``BENCH_*.json``) goes
        through."""
        return {
            "config": self.config.to_dict(),
            "macros": {name: analysis.to_dict()
                       for name, analysis in self.macros.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PathResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            config=PathConfig.from_dict(data["config"]),
            macros={name: MacroAnalysis.from_dict(d)
                    for name, d in data["macros"].items()})


class DefectOrientedTestPath:
    """Orchestrates the methodology over the five-macro partition."""

    def __init__(self, config: Optional[PathConfig] = None) -> None:
        self.config = config or PathConfig()
        self._comparator_engine: Optional[ComparatorFaultEngine] = None

    # -- shared pieces -----------------------------------------------------

    def _classes_for(self, cell) -> List[FaultClass]:
        from ..campaign.plan import discover_classes
        return discover_classes(cell, self.config)

    def comparator_engine(self) -> ComparatorFaultEngine:
        """Comparator engine for this config, shared per process.

        The engine (and its compiled good space) lives in the campaign
        task cache, so path instances, serial campaign runs and forked
        pool workers all reuse one compilation per process.
        """
        if self._comparator_engine is None:
            from ..campaign.plan import comparator_spec
            from ..campaign.tasks import get_engine
            self._comparator_engine = get_engine(
                comparator_spec(self.config))
        return self._comparator_engine

    def _ivdd_halfwidth(self) -> float:
        """Chip-level IVdd acceptance half-width from the comparator
        good space (worst phase)."""
        from ..campaign.plan import ivdd_halfwidth
        return ivdd_halfwidth(self.config)

    # -- per-macro analyses ---------------------------------------------------

    def analyze_comparator(self,
                           progress: Optional[Callable] = None
                           ) -> MacroAnalysis:
        cell = comparator_layout_for(self.config.dft)
        classes = self._classes_for(cell)
        engine = self.comparator_engine()

        # the engine satisfies the FaultEngine protocol (it propagates
        # its own signature), so the comparator needs no special-casing
        def records_for(class_list) -> Tuple[DetectionRecord, ...]:
            records = []
            for k, fc in enumerate(class_list):
                records.append(engine.simulate_class(fc))
                if progress is not None:
                    progress("comparator", k + 1, len(class_list))
            return tuple(records)

        result = MacroResult(name="comparator", bbox_area=cell.area(),
                             instances=256,
                             defects_sprinkled=self.config.n_defects,
                             records=records_for(classes))
        noncat_result = None
        if self.config.include_noncat:
            noncat_classes = derive_noncatastrophic(classes)
            if self.config.max_classes is not None:
                noncat_classes = noncat_classes[:self.config.max_classes]
            noncat_result = MacroResult(
                name="comparator", bbox_area=cell.area(), instances=256,
                defects_sprinkled=self.config.n_defects,
                records=records_for(noncat_classes))
        return MacroAnalysis(result=result, noncat_result=noncat_result,
                             classes=tuple(classes))

    def _analyze_with_engine(self, name: str, cell, instances: int,
                             engine) -> MacroAnalysis:
        classes = self._classes_for(cell)
        records = tuple(engine.simulate_class(fc) for fc in classes)
        result = MacroResult(name=name, bbox_area=cell.area(),
                             instances=instances,
                             defects_sprinkled=self.config.n_defects,
                             records=records)
        noncat_result = None
        if self.config.include_noncat:
            noncat_classes = derive_noncatastrophic(classes)
            if self.config.max_classes is not None:
                noncat_classes = noncat_classes[:self.config.max_classes]
            noncat_result = MacroResult(
                name=name, bbox_area=cell.area(), instances=instances,
                defects_sprinkled=self.config.n_defects,
                records=tuple(engine.simulate_class(fc)
                              for fc in noncat_classes))
        return MacroAnalysis(result=result, noncat_result=noncat_result,
                             classes=tuple(classes))

    def analyze_ladder(self) -> MacroAnalysis:
        engine = LadderFaultEngine(
            process=self.config.process,
            ivdd_window_halfwidth=self._ivdd_halfwidth(),
            warm_start=self.config.warm_start, drop=self.config.drop,
            solver=self.config.solver)
        return self._analyze_with_engine(
            "ladder", ladder_slice_layout(),
            256 // SEGMENTS_PER_COARSE, engine)

    def analyze_clockgen(self) -> MacroAnalysis:
        engine = ClockgenFaultEngine(process=self.config.process,
                                     warm_start=self.config.warm_start,
                                     drop=self.config.drop,
                                     solver=self.config.solver)
        return self._analyze_with_engine("clockgen", clockgen_layout(),
                                         1, engine)

    def analyze_biasgen(self) -> MacroAnalysis:
        engine = BiasgenFaultEngine(
            process=self.config.process,
            ivdd_window_halfwidth=self._ivdd_halfwidth(),
            warm_start=self.config.warm_start, drop=self.config.drop,
            solver=self.config.solver)
        cell = biasgen_layout(dft=self.config.dft.bias_line_reorder)
        return self._analyze_with_engine("biasgen", cell, 1, engine)

    def analyze_decoder(self,
                        comparator_yield: float = 0.025
                        ) -> MacroAnalysis:
        """Digital decoder analysis.

        Bridges stand for the short population, stuck-ats for the
        opens; counts are weighted ~95/5 to match the defect mix.  The
        decoder's fault yield is approximated by the comparator's (both
        are dense layouts), via the synthetic ``defects_sprinkled``.
        """
        engine = DecoderFaultEngine()
        bridge_records, stuck_records = engine.run()
        weighted = [replace(r, count=11) for r in bridge_records] + \
            list(stuck_records)
        from ..macrotest.macro import decoder_area
        total_faults = sum(r.count for r in weighted)
        pseudo_defects = max(1, int(total_faults / comparator_yield))
        result = MacroResult(name="decoder", bbox_area=decoder_area(),
                             instances=1,
                             defects_sprinkled=pseudo_defects,
                             records=tuple(weighted))
        return MacroAnalysis(result=result, noncat_result=result,
                             classes=tuple())

    # -- full run -----------------------------------------------------------------

    def run(self, macros: Optional[Sequence[str]] = None,
            progress: Optional[Callable] = None,
            options=None, bus=None) -> PathResult:
        """Run the path over the requested macros (default: all five).

        Execution is delegated to the campaign runner
        (:class:`~repro.campaign.runner.CampaignRunner`): serial and
        in-memory by default, parallel / cached / resumable when
        ``options`` (a
        :class:`~repro.campaign.runner.CampaignOptions`) says so.
        ``progress(macro, done, total)`` is kept for backwards
        compatibility and is fed from the campaign event stream.
        """
        from ..campaign.events import (ClassCompleted, EventBus,
                                       MacroPlanned)
        from ..campaign.runner import CampaignOptions, CampaignRunner

        if options is None:
            options = CampaignOptions(jobs=1)
        if bus is None:
            bus = EventBus()
        if progress is not None:
            totals: Dict[Tuple[str, str], int] = {}
            counts: Dict[Tuple[str, str], int] = {}

            def adapter(event) -> None:
                if isinstance(event, MacroPlanned):
                    totals[(event.macro, "cat")] = event.n_classes
                    totals[(event.macro, "noncat")] = event.n_noncat
                elif isinstance(event, ClassCompleted):
                    key = (event.macro, event.kind)
                    counts[key] = counts.get(key, 0) + 1
                    progress(event.macro, counts[key],
                             totals.get(key, event.total))

            bus.subscribe(adapter)
        runner = CampaignRunner(self.config, options, bus=bus)
        return runner.run(macros).path_result


def fast_config(dft: DfTConfig = NO_DFT) -> PathConfig:
    """Reduced-budget configuration for tests and quick benchmarks.

    Controlled by the ``REPRO_FULL`` environment variable: when set, the
    full paper-scale budgets are used instead.
    """
    if os.environ.get("REPRO_FULL"):
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft)
    return PathConfig(n_defects=8000, max_classes=40, dft=dft)
