"""Declarative HTTP routing shared by every repro service endpoint.

The stdlib ``BaseHTTPRequestHandler`` hands a service nothing but a
method string and a raw path; before this module each handler
distinguished routes with a ladder of exact string compares, which
conflated "no such path" with "right path, wrong verb" and scattered
the error contract across branches.  A :class:`Router` is one dispatch
table instead:

* routes are registered once per server as ``(method, pattern)`` pairs,
  where a pattern segment ``<name>`` captures that path segment into
  the handler's keyword arguments (``/v1/dictionaries/<name>``);
* :meth:`Router.resolve` returns the matched handler or raises
  :class:`RouteNotFound` (404) / :class:`MethodNotAllowed` (405, with
  the allowed verbs for the ``Allow`` header) — the two failure modes
  the old string ladder could not tell apart;
* aliases (the legacy unversioned routes) point at the *same* handler
  entry as their canonical path, so the response bytes cannot drift
  between the old and new names; the router remembers which names are
  deprecated so the HTTP layer can attach a ``Deprecation`` header.

The error *envelope* lives here too: every repro HTTP service answers
failures as ``{"error": {"code": ..., "message": ...}}`` via
:func:`error_envelope`, so clients of the diagnosis service and of the
distributed campaign coordinator parse one shape.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Router", "Route", "RouteNotFound", "MethodNotAllowed",
           "error_envelope"]


def error_envelope(code: str, message: str) -> Dict:
    """The uniform JSON error body: ``{"error": {"code", "message"}}``."""
    return {"error": {"code": str(code), "message": str(message)}}


class RouteNotFound(LookupError):
    """No registered route matches the request path (HTTP 404)."""

    def __init__(self, path: str) -> None:
        super().__init__(f"unknown path {path!r}")
        self.path = path


class MethodNotAllowed(LookupError):
    """The path exists but not under this verb (HTTP 405).

    Attributes:
        allowed: the verbs the path does answer, sorted — the HTTP
            layer puts them in the ``Allow`` response header.
    """

    def __init__(self, method: str, path: str,
                 allowed: Sequence[str]) -> None:
        self.allowed = tuple(sorted(allowed))
        super().__init__(
            f"method {method} not allowed on {path!r} "
            f"(allowed: {', '.join(self.allowed)})")
        self.method = method
        self.path = path


class Route:
    """One resolved route: the handler plus match bookkeeping.

    Attributes:
        handler: the registered callable.
        params: captured ``<name>`` path segments, by name.
        pattern: the pattern the route was registered under.
        deprecated: True when the *matched* name is a deprecated alias
            of another route (drives the ``Deprecation`` header).
        canonical: the canonical pattern (differs from ``pattern``
            only for aliases).
    """

    __slots__ = ("handler", "params", "pattern", "deprecated",
                 "canonical")

    def __init__(self, handler: Callable, params: Dict[str, str],
                 pattern: str, deprecated: bool,
                 canonical: str) -> None:
        self.handler = handler
        self.params = params
        self.pattern = pattern
        self.deprecated = deprecated
        self.canonical = canonical


class _Rule:
    __slots__ = ("method", "segments", "pattern", "handler",
                 "deprecated", "canonical")

    def __init__(self, method: str, pattern: str, handler: Callable,
                 deprecated: bool, canonical: str) -> None:
        self.method = method.upper()
        self.pattern = pattern
        self.segments = _split(pattern)
        self.handler = handler
        self.deprecated = deprecated
        self.canonical = canonical

    def match(self, segments: Sequence[str]
              ) -> Optional[Dict[str, str]]:
        if len(segments) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, segments):
            if want.startswith("<") and want.endswith(">"):
                if not got:
                    return None
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


def _split(path: str) -> Tuple[str, ...]:
    return tuple(s for s in path.strip("/").split("/") if s != "")


class Router:
    """A method+path dispatch table with parameter capture and
    deprecated aliases."""

    def __init__(self) -> None:
        self._rules: List[_Rule] = []

    def add(self, method: str, pattern: str,
            handler: Callable) -> None:
        """Register ``handler`` under ``(method, pattern)``."""
        self._rules.append(_Rule(method, pattern, handler,
                                 deprecated=False, canonical=pattern))

    def alias(self, method: str, pattern: str, canonical: str,
              deprecated: bool = True) -> None:
        """Register ``pattern`` as an alias of the already-registered
        ``(method, canonical)`` route.

        The alias shares the canonical route's handler object, so both
        names produce byte-identical response bodies by construction.
        """
        for rule in self._rules:
            if rule.method == method.upper() and \
                    rule.pattern == canonical:
                self._rules.append(_Rule(
                    method, pattern, rule.handler,
                    deprecated=deprecated, canonical=canonical))
                return
        raise LookupError(
            f"no canonical route {method} {canonical!r} to alias")

    def resolve(self, method: str, path: str) -> Route:
        """Match ``(method, path)`` to a :class:`Route`.

        Raises :class:`RouteNotFound` when no pattern matches the path
        under any verb, :class:`MethodNotAllowed` when the path exists
        but not under this verb.  The query string, if any, is ignored
        (split off before matching).
        """
        clean = path.split("?", 1)[0]
        segments = _split(clean)
        allowed: List[str] = []
        for rule in self._rules:
            params = rule.match(segments)
            if params is None:
                continue
            if rule.method == method.upper():
                return Route(rule.handler, params, rule.pattern,
                             rule.deprecated, rule.canonical)
            allowed.append(rule.method)
        if allowed:
            raise MethodNotAllowed(method, clean, allowed)
        raise RouteNotFound(clean)

    def routes(self) -> List[Tuple[str, str, bool]]:
        """Every registered ``(method, pattern, deprecated)`` triple —
        for docs and ``/v1/health`` introspection."""
        return [(r.method, r.pattern, r.deprecated)
                for r in self._rules]
