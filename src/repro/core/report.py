"""Paper-style table and figure renderers.

Each function turns path results into the rows the paper prints, both as
structured data (for assertions) and as formatted text (for the
benchmark harness output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..defects.collapse import FaultClass, TypeRow, type_table
from ..faultsim.signatures import CurrentMechanism, VoltageSignature
from ..macrotest.coverage import (CoverageBreakdown, MacroResult,
                                  macro_breakdown, mechanism_overlap)

#: paper-facing labels for the voltage signature categories
VOLTAGE_LABELS = {
    VoltageSignature.OUTPUT_STUCK_AT: "Output Stuck At",
    VoltageSignature.OFFSET: "Offset (> 8mV)",
    VoltageSignature.MIXED: "Mixed",
    VoltageSignature.CLOCK_VALUE: "Clock value",
    VoltageSignature.NONE: "No deviations",
}


def render_table1(classes: Sequence[FaultClass]) -> str:
    """Paper Table 1: catastrophic faults and fault classes per type."""
    rows = type_table(list(classes))
    lines = ["fault type             faults   %faults  classes  %classes",
             "-" * 58]
    for row in rows:
        lines.append(f"{row.fault_type:22s} {row.faults:7d} "
                     f"{row.fault_pct:8.2f} {row.classes:8d} "
                     f"{row.class_pct:9.2f}")
    total_f = sum(r.faults for r in rows)
    total_c = sum(r.classes for r in rows)
    lines.append("-" * 58)
    lines.append(f"{'total':22s} {total_f:7d} {100.0:8.2f} "
                 f"{total_c:8d} {100.0:9.2f}")
    return "\n".join(lines)


def voltage_signature_distribution(result: MacroResult
                                   ) -> Dict[VoltageSignature, float]:
    """Fault-weighted voltage-signature distribution (paper Table 2)."""
    totals: Dict[VoltageSignature, float] = {
        sig: 0.0 for sig in VoltageSignature}
    total = result.total_faults
    if total == 0:
        return totals
    for record in result.records:
        sig = record.voltage_signature or VoltageSignature.NONE
        totals[sig] += record.count / total
    return totals


def render_table2(cat: MacroResult,
                  noncat: Optional[MacroResult]) -> str:
    """Paper Table 2: voltage fault signatures of the comparator."""
    cat_dist = voltage_signature_distribution(cat)
    noncat_dist = voltage_signature_distribution(noncat) if noncat \
        else None
    lines = ["fault signature     % cat. faults  % non-cat. faults",
             "-" * 52]
    for sig in (VoltageSignature.OUTPUT_STUCK_AT,
                VoltageSignature.OFFSET, VoltageSignature.MIXED,
                VoltageSignature.CLOCK_VALUE, VoltageSignature.NONE):
        nc = f"{100 * noncat_dist[sig]:8.1f}" if noncat_dist else "   n/a"
        lines.append(f"{VOLTAGE_LABELS[sig]:20s} {100 * cat_dist[sig]:8.1f}"
                     f"      {nc}")
    return "\n".join(lines)


def current_signature_distribution(result: MacroResult
                                   ) -> Dict[str, float]:
    """Fault-weighted current-signature distribution (paper Table 3).

    Percentages overlap (a fault may carry several), so they can sum to
    more than 100 %.
    """
    total = result.total_faults
    out = {"ivdd": 0.0, "iddq": 0.0, "iinput": 0.0, "none": 0.0}
    if total == 0:
        return out
    for record in result.records:
        if CurrentMechanism.IVDD in record.mechanisms:
            out["ivdd"] += record.count / total
        if CurrentMechanism.IDDQ in record.mechanisms:
            out["iddq"] += record.count / total
        if CurrentMechanism.IINPUT in record.mechanisms:
            out["iinput"] += record.count / total
        if not record.mechanisms:
            out["none"] += record.count / total
    return out


def render_table3(cat: MacroResult,
                  noncat: Optional[MacroResult]) -> str:
    """Paper Table 3: current fault signatures of the comparator."""
    cat_dist = current_signature_distribution(cat)
    noncat_dist = current_signature_distribution(noncat) if noncat \
        else None
    labels = {"ivdd": "IVdd", "iddq": "IDDQ", "iinput": "Iinput",
              "none": "No deviations"}
    lines = ["current signature   % cat. faults  % non-cat. faults",
             "-" * 52]
    for key in ("ivdd", "iddq", "iinput", "none"):
        nc = f"{100 * noncat_dist[key]:8.1f}" if noncat_dist else "   n/a"
        lines.append(f"{labels[key]:20s} {100 * cat_dist[key]:8.1f}"
                     f"      {nc}")
    return "\n".join(lines)


def render_fig3(result: MacroResult) -> str:
    """Paper Fig. 3: comparator detectability overlap diagram."""
    overlap = mechanism_overlap(result)
    breakdown = macro_breakdown(result)
    lines = ["detection mechanism combination              % faults",
             "-" * 54]
    for key in sorted(overlap):
        if key.startswith("only:"):
            continue
        lines.append(f"{key:44s} {100 * overlap[key]:8.1f}")
    lines.append("-" * 54)
    for key in ("missing_codes", "ivdd", "iddq", "iinput"):
        lines.append(f"only {key:39s} "
                     f"{100 * overlap.get(f'only:{key}', 0.0):8.1f}")
    lines.append("-" * 54)
    lines.append(f"{'total detected':44s} "
                 f"{100 * breakdown.total:8.1f}")
    return "\n".join(lines)


def render_fig4(cat: CoverageBreakdown,
                noncat: Optional[CoverageBreakdown],
                title: str = "Fig. 4: global detectability") -> str:
    """Paper Fig. 4 (and Fig. 5 with DfT): global detectability."""
    lines = [title,
             "                       catastrophic   non-catastrophic",
             "-" * 56]
    rows = [
        ("voltage detectable", lambda b: b.voltage),
        ("current detectable", lambda b: b.current),
        ("voltage only", lambda b: b.voltage_only),
        ("current only", lambda b: b.current_only),
        ("both", lambda b: b.both),
        ("undetected", lambda b: b.undetected),
        ("TOTAL COVERAGE", lambda b: b.total),
    ]
    for label, fn in rows:
        nc = f"{100 * fn(noncat):10.1f}" if noncat else "     n/a"
        lines.append(f"{label:22s} {100 * fn(cat):10.1f}      {nc}")
    return "\n".join(lines)


def render_macro_current_detectability(
        results: Sequence[MacroResult]) -> str:
    """Per-macro current detectability (paper section 3.3 text)."""
    lines = ["macro         % current detectable   % total detected",
             "-" * 52]
    for m in results:
        b = macro_breakdown(m)
        lines.append(f"{m.name:12s} {100 * b.current:12.1f} "
                     f"{100 * b.total:19.1f}")
    return "\n".join(lines)
