"""The paper's primary contribution: the defect-oriented test path."""

from .advisor import (CATEGORY_GENES, EscapeDiagnosis,
                      classify_escape, diagnose_escapes,
                      recommendations, recommended_gene_flags,
                      render_advice)
from .path import (DefectOrientedTestPath, MacroAnalysis, PathConfig,
                   PathResult, fast_config)
from .options import add_engine_arguments, engine_knobs
from .quality import (QualityReport, chip_fault_rate, defect_level,
                      dppm, poisson_yield, quality_report)
from .serialize import (SerializeError, load_macro_results,
                        load_path_result, save_macro_results,
                        save_path_result)
from .report import (current_signature_distribution, render_fig3,
                     render_fig4, render_macro_current_detectability,
                     render_table1, render_table2, render_table3,
                     voltage_signature_distribution)

__all__ = [
    "DefectOrientedTestPath", "MacroAnalysis", "PathConfig",
    "PathResult", "fast_config", "current_signature_distribution",
    "render_fig3", "render_fig4",
    "render_macro_current_detectability", "render_table1",
    "render_table2", "render_table3",
    "voltage_signature_distribution", "QualityReport",
    "chip_fault_rate", "defect_level", "dppm", "poisson_yield",
    "quality_report", "SerializeError", "load_macro_results",
    "load_path_result", "save_macro_results", "save_path_result",
    "EscapeDiagnosis",
    "CATEGORY_GENES", "classify_escape", "diagnose_escapes",
    "recommendations", "recommended_gene_flags", "render_advice", "add_engine_arguments", "engine_knobs",
]
