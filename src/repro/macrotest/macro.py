"""Macro-cell descriptors: the divide-and-conquer partition.

Paper section 3.1: the ADC is divided into five macro types — 256
comparators, a resistor ladder, a bias generator, a clock generator and
a digital decoder — because a circuit-level simulation of the entire
circuit is not possible.  This module records the partition and each
macro's area/instance bookkeeping used by the global scaling step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..adc.biasgen import biasgen_layout
from ..adc.clockgen import clockgen_layout
from ..adc.comparator import comparator_layout
from ..adc.decoder import build_decoder
from ..adc.ladder import SEGMENTS_PER_COARSE, ladder_slice_layout
from ..layout.cell import LayoutCell

#: decoder area estimate: dense digital layout, um^2 per transistor
DECODER_AREA_PER_TRANSISTOR = 250.0


@dataclass(frozen=True)
class MacroDescriptor:
    """One macro type of the partition.

    Attributes:
        name: macro name.
        instances: how many instances the chip carries.
        layout_factory: builds the macro's layout cell (None for the
            digital decoder, whose area is estimated from gate count).
        area_override: fixed area when no layout exists (um^2).
    """

    name: str
    instances: int
    layout_factory: Optional[Callable[[], LayoutCell]] = None
    area_override: Optional[float] = None

    def area(self) -> float:
        """Bounding-box area of one instance (um^2)."""
        if self.area_override is not None:
            return self.area_override
        if self.layout_factory is None:
            raise ValueError(f"{self.name}: no layout and no area")
        return self.layout_factory().area()


def decoder_area() -> float:
    """Area estimate of the thermometer decoder from its gate count."""
    return build_decoder(8).transistor_count() * \
        DECODER_AREA_PER_TRANSISTOR


def standard_partition(dft: bool = False) -> Dict[str, MacroDescriptor]:
    """The five-macro partition of the case-study ADC."""
    return {
        "comparator": MacroDescriptor(
            name="comparator", instances=256,
            layout_factory=lambda: comparator_layout(dft=dft)),
        "ladder": MacroDescriptor(
            name="ladder", instances=256 // SEGMENTS_PER_COARSE,
            layout_factory=ladder_slice_layout),
        "biasgen": MacroDescriptor(
            name="biasgen", instances=1,
            layout_factory=lambda: biasgen_layout(dft=dft)),
        "clockgen": MacroDescriptor(
            name="clockgen", instances=1,
            layout_factory=clockgen_layout),
        "decoder": MacroDescriptor(
            name="decoder", instances=1,
            area_override=decoder_area()),
    }
