"""Coverage accounting: per-macro detection records -> global figures.

Paper section 3.3: "the fault signature probabilities for macro cells
have to be scaled into global fault signature probabilities.  This
scaling is done on the basis that in a real fabrication process, the
defect density will be approximately equal for all macro cells."

With a uniform defect density D, the expected number of faults in a
macro type is ``n_instances * D * bbox_area * (faults / defects
sprinkled)``; the per-class global probability follows by multiplying
the macro weight by the class's within-macro magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..faultsim.signatures import CurrentMechanism, VoltageSignature


@dataclass(frozen=True)
class DetectionRecord:
    """Detection outcome of one fault class.

    Attributes:
        count: class magnitude (fault count within its macro campaign).
        voltage_detected: the missing-code test catches it.
        mechanisms: current mechanisms that catch it.
        voltage_signature: macro-level voltage signature (None for
            purely digital macros).
        fault_type: defect-simulator fault type label.
        violated_keys: fine-grained (quantity, phase, polarity)
            measurement violations, when the engine recorded them.
        detected_by: first stimulus in the detectability-ordered
            schedule that catches the class (``"current"`` — the
            quiescent measurements on the boundary runs — before
            ``"voltage"`` — the missing-code test); None when
            undetected or when the engine does not track it.
    """

    count: int
    voltage_detected: bool
    mechanisms: FrozenSet[CurrentMechanism]
    voltage_signature: Optional[VoltageSignature] = None
    fault_type: str = "short"
    violated_keys: FrozenSet[Tuple[str, str, str]] = frozenset()
    detected_by: Optional[str] = None

    @property
    def current_detected(self) -> bool:
        return bool(self.mechanisms)

    @property
    def detected(self) -> bool:
        return self.voltage_detected or self.current_detected

    def signature_vector(self):
        """Numeric signature in the stable dictionary feature order.

        Delegates to
        :func:`repro.faultsim.signatures.signature_vector`; see
        :func:`repro.faultsim.signatures.signature_feature_names` for
        the documented ordering.  Returns a float64 0/1 NumPy vector;
        an undetected record maps to all zeros.
        """
        from ..faultsim.signatures import signature_vector
        return signature_vector(self.voltage_detected,
                                self.voltage_signature,
                                self.mechanisms, self.violated_keys)

    def to_dict(self) -> Dict:
        """Stable JSON-able form (the serialisation contract).

        Collections are sorted so equal records always encode to the
        same dictionary — the campaign store hashes this encoding.
        """
        data = {
            "count": self.count,
            "voltage_detected": self.voltage_detected,
            "mechanisms": sorted(m.value for m in self.mechanisms),
            "voltage_signature": (self.voltage_signature.value
                                  if self.voltage_signature else None),
            "fault_type": self.fault_type,
            "violated_keys": sorted(list(k)
                                    for k in self.violated_keys),
        }
        # only encoded when tracked, so records predating the field
        # round-trip to their historical encoding unchanged
        if self.detected_by is not None:
            data["detected_by"] = self.detected_by
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "DetectionRecord":
        """Inverse of :meth:`to_dict`.

        Raises KeyError/ValueError on malformed input; callers wanting
        one exception type use
        :func:`repro.core.serialize.record_from_dict`.
        """
        signature = data.get("voltage_signature")
        return cls(
            count=int(data["count"]),
            voltage_detected=bool(data["voltage_detected"]),
            mechanisms=frozenset(CurrentMechanism(m)
                                 for m in data["mechanisms"]),
            voltage_signature=(VoltageSignature(signature)
                               if signature else None),
            fault_type=data.get("fault_type", "short"),
            violated_keys=frozenset(
                tuple(k) for k in data.get("violated_keys", ())),
            detected_by=data.get("detected_by"))


@dataclass(frozen=True)
class MacroResult:
    """Complete defect-oriented analysis result of one macro type.

    Attributes:
        name: macro name.
        bbox_area: layout bounding-box area of one instance (um^2).
        instances: instance count on the chip.
        defects_sprinkled: Monte Carlo defect count of the campaign.
        records: per-fault-class detection records.
    """

    name: str
    bbox_area: float
    instances: int
    defects_sprinkled: int
    records: Tuple[DetectionRecord, ...]

    @property
    def total_faults(self) -> int:
        return sum(r.count for r in self.records)

    @property
    def fault_yield(self) -> float:
        """Faults per sprinkled defect."""
        if self.defects_sprinkled <= 0:
            raise ValueError("defects_sprinkled must be positive")
        return self.total_faults / self.defects_sprinkled

    @property
    def weight(self) -> float:
        """Unnormalised global weight: expected chip fault count."""
        return self.instances * self.bbox_area * self.fault_yield

    def fraction(self, predicate) -> float:
        """Weighted fraction of this macro's faults satisfying a
        predicate over DetectionRecord."""
        total = self.total_faults
        if total == 0:
            return 0.0
        return sum(r.count for r in self.records if predicate(r)) / total

    def to_dict(self) -> Dict:
        """Stable JSON-able form (the serialisation contract)."""
        return {
            "name": self.name,
            "bbox_area": self.bbox_area,
            "instances": self.instances,
            "defects_sprinkled": self.defects_sprinkled,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MacroResult":
        """Inverse of :meth:`to_dict` (raises KeyError/ValueError on
        malformed input)."""
        return cls(
            name=data["name"],
            bbox_area=float(data["bbox_area"]),
            instances=int(data["instances"]),
            defects_sprinkled=int(data["defects_sprinkled"]),
            records=tuple(DetectionRecord.from_dict(r)
                          for r in data["records"]))


@dataclass(frozen=True)
class CoverageBreakdown:
    """The Venn partition of detection (paper Figs. 3-5).

    All values are fractions of the weighted fault population.
    """

    voltage_only: float
    current_only: float
    both: float
    undetected: float

    @property
    def voltage(self) -> float:
        return self.voltage_only + self.both

    @property
    def current(self) -> float:
        return self.current_only + self.both

    @property
    def total(self) -> float:
        return self.voltage_only + self.current_only + self.both

    def as_percentages(self) -> Dict[str, float]:
        return {
            "voltage_only": 100.0 * self.voltage_only,
            "current_only": 100.0 * self.current_only,
            "both": 100.0 * self.both,
            "undetected": 100.0 * self.undetected,
            "voltage": 100.0 * self.voltage,
            "current": 100.0 * self.current,
            "total": 100.0 * self.total,
        }


def macro_breakdown(result: MacroResult) -> CoverageBreakdown:
    """Detection Venn for one macro."""
    v_only = result.fraction(
        lambda r: r.voltage_detected and not r.current_detected)
    c_only = result.fraction(
        lambda r: r.current_detected and not r.voltage_detected)
    both = result.fraction(
        lambda r: r.voltage_detected and r.current_detected)
    undet = result.fraction(lambda r: not r.detected)
    return CoverageBreakdown(voltage_only=v_only, current_only=c_only,
                             both=both, undetected=undet)


def global_breakdown(results: Sequence[MacroResult]
                     ) -> CoverageBreakdown:
    """Area-and-yield-weighted global detection Venn (paper Fig. 4)."""
    weights = [m.weight for m in results]
    total_w = sum(weights)
    if total_w <= 0:
        raise ValueError("no weighted faults to aggregate")
    v_only = c_only = both = undet = 0.0
    for m, w in zip(results, weights):
        b = macro_breakdown(m)
        v_only += w * b.voltage_only
        c_only += w * b.current_only
        both += w * b.both
        undet += w * b.undetected
    return CoverageBreakdown(voltage_only=v_only / total_w,
                             current_only=c_only / total_w,
                             both=both / total_w,
                             undetected=undet / total_w)


def mechanism_overlap(result: MacroResult) -> Dict[str, float]:
    """Per-mechanism detection overlap for one macro (paper Fig. 3).

    Returns fractions for every combination of {missing code, IVdd,
    IDDQ, Iinput} detection, keyed by a '+'-joined label, plus
    single-mechanism-only entries keyed ``"only:<mech>"``.
    """
    combos: Dict[str, float] = {}
    only: Dict[str, float] = {"missing_codes": 0.0, "ivdd": 0.0,
                              "iddq": 0.0, "iinput": 0.0}
    total = result.total_faults
    if total == 0:
        return {}
    for r in result.records:
        labels = []
        if r.voltage_detected:
            labels.append("missing_codes")
        for mech in (CurrentMechanism.IVDD, CurrentMechanism.IDDQ,
                     CurrentMechanism.IINPUT):
            if mech in r.mechanisms:
                labels.append(mech.value)
        key = "+".join(labels) if labels else "undetected"
        combos[key] = combos.get(key, 0.0) + r.count / total
        if len(labels) == 1:
            only[labels[0]] += r.count / total
    for mech, frac in only.items():
        combos[f"only:{mech}"] = frac
    return combos
