"""Fault-signature sensitisation / propagation (paper Fig. 1, last box).

The macro-level fault signature is injected into the behavioral model of
the affected macro instance(s), and the circuit-edge test — the
missing-code test over the full ADC — decides voltage detectability.

Sensitisation of comparator faults is free (the analog input is a
circuit terminal and the clock/bias lines run as in normal operation),
and the current signatures need no propagation at all because they are
already defined at circuit terminals — the paper calls this out as a
major advantage of current testing.

One subtlety the paper highlights: 72 % of comparator-area faults also
touch nodes of *other* macros (clock/bias distribution lines).  Such
faults disturb every comparator instance at once, so their signature is
injected into the whole bank, not a single instance.
"""

from __future__ import annotations

from typing import Optional, Set

from ..adc.behavioral import (ClockBehavior, ComparatorBehavior,
                              LadderBehavior)
from ..adc.flash import FlashADC, nominal_adc
from ..defects.faults import Fault
from ..faultsim.noncat import NearMissShortFault
from ..faultsim.signatures import (OFFSET_THRESHOLD, SignatureResult,
                                   VoltageSignature)
from ..testgen.detection import missing_code_test

#: nets whose faults disturb the whole comparator bank
SHARED_NETS = frozenset({"phi1", "phi2", "phi3", "vbn1", "vbn2", "vdd",
                         "gnd"})

#: behavioral offset injected for an OFFSET signature: comfortably past
#: the paper's 8 mV threshold (the classifier only certifies > 8 mV)
INJECTED_OFFSET = 2.5 * OFFSET_THRESHOLD

#: erratic band injected for a MIXED signature
INJECTED_MIXED_BAND = 0.02


def fault_shared_nets(fault: Fault) -> Set[str]:
    """Shared distribution nets a fault touches (empty for local
    faults)."""
    nets: Set[str] = set()
    if hasattr(fault, "nets"):
        nets = set(fault.nets)
    elif hasattr(fault, "net"):
        nets = {fault.net}
        if hasattr(fault, "bulk_net"):
            nets.add(fault.bulk_net)
    return nets & SHARED_NETS


def comparator_behavior_for(signature: SignatureResult
                            ) -> ComparatorBehavior:
    """Behavioral comparator model carrying a macro-level signature."""
    v = signature.voltage
    if v == VoltageSignature.OUTPUT_STUCK_AT:
        stuck = signature.measurements["above"].decision
        if not signature.measurements["above"].resolved:
            stuck = False
        return ComparatorBehavior(stuck=stuck)
    if v == VoltageSignature.OFFSET:
        return ComparatorBehavior(
            offset=signature.offset_sign * INJECTED_OFFSET)
    if v == VoltageSignature.MIXED:
        return ComparatorBehavior(mixed_band=INJECTED_MIXED_BAND)
    if v == VoltageSignature.CLOCK_VALUE:
        return ComparatorBehavior(clock_degraded=True)
    return ComparatorBehavior()


def propagate_comparator_fault(signature: SignatureResult, fault: Fault,
                               instance: int = 128,
                               adc: Optional[FlashADC] = None,
                               at_speed: bool = False) -> bool:
    """Voltage detectability of a comparator-macro fault.

    Args:
        signature: macro-level signature from the fault engine.
        fault: the underlying fault (decides single- vs all-instance
            injection via the shared distribution nets).
        instance: which comparator carries a local fault.
        adc: base ADC model (nominal by default).
        at_speed: also run the dynamic (at-speed) missing-code test —
            our extension that catches the 'clock value' population.

    Returns:
        True when the missing-code test fails (fault detected).
    """
    base = adc or nominal_adc()
    behavior = comparator_behavior_for(signature)
    if behavior == ComparatorBehavior():
        return False
    if fault_shared_nets(fault):
        faulty = base
        for k in range(len(base.comparators)):
            faulty = faulty.with_comparator(k, behavior)
    else:
        faulty = base.with_comparator(instance, behavior)
    if missing_code_test(faulty).detected:
        return True
    if at_speed:
        return missing_code_test(faulty, at_speed=True).detected
    return False


def propagate_ladder_fault(faulty_taps, adc: Optional[FlashADC] = None
                           ) -> bool:
    """Voltage detectability of a ladder fault (faulty tap vector)."""
    base = adc or nominal_adc()
    faulty = base.with_ladder(LadderBehavior(taps=faulty_taps))
    return missing_code_test(faulty).detected


def propagate_clock_fault(phase_alive: dict, degraded: bool,
                          adc: Optional[FlashADC] = None) -> bool:
    """Voltage detectability of a clock-generator fault."""
    base = adc or nominal_adc()
    clocks = ClockBehavior(phi1_ok=phase_alive.get("phi1", True),
                           phi2_ok=phase_alive.get("phi2", True),
                           phi3_ok=phase_alive.get("phi3", True),
                           degraded=degraded)
    faulty = base.with_clocks(clocks)
    return missing_code_test(faulty).detected


def propagate_bank_behavior(behavior: ComparatorBehavior,
                            adc: Optional[FlashADC] = None) -> bool:
    """Voltage detectability when every comparator misbehaves the same
    way (bias-generator faults)."""
    base = adc or nominal_adc()
    if behavior == ComparatorBehavior():
        return False
    faulty = base
    for k in range(len(base.comparators)):
        faulty = faulty.with_comparator(k, behavior)
    return missing_code_test(faulty).detected
