"""Divide-and-conquer macro-test framework (Beenker-style)."""

from .coverage import (CoverageBreakdown, DetectionRecord, MacroResult,
                       global_breakdown, macro_breakdown,
                       mechanism_overlap)
from .macro import (DECODER_AREA_PER_TRANSISTOR, MacroDescriptor,
                    decoder_area, standard_partition)
from .propagate import (INJECTED_OFFSET, SHARED_NETS,
                        comparator_behavior_for, fault_shared_nets,
                        propagate_bank_behavior, propagate_clock_fault,
                        propagate_comparator_fault,
                        propagate_ladder_fault)

__all__ = [
    "CoverageBreakdown", "DetectionRecord", "MacroResult",
    "global_breakdown", "macro_breakdown", "mechanism_overlap",
    "DECODER_AREA_PER_TRANSISTOR", "MacroDescriptor", "decoder_area",
    "standard_partition", "INJECTED_OFFSET", "SHARED_NETS",
    "comparator_behavior_for", "fault_shared_nets",
    "propagate_bank_behavior", "propagate_clock_fault",
    "propagate_comparator_fault", "propagate_ladder_fault",
]
