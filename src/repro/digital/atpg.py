"""Random-greedy test generation for stuck-at faults (ATPG).

A pragmatic test generator for the gate-level substrate: draw candidate
vectors, fault-simulate with fault dropping, and keep every vector that
detects something new.  A final reverse-greedy compaction pass removes
vectors made redundant by later ones.

This exists for the decoder-macro analysis: in functional mode the
decoder only ever sees the 2^n thermometer codes, and the interesting
question (an ablation in the benchmark suite) is how much stuck-at
coverage those functional vectors leave on the table compared to
unconstrained test access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .faults import StuckAtFault, all_stuck_at_faults, detects_stuck_at
from .netlist import LogicNetlist


@dataclass(frozen=True)
class TestSet:
    """Result of a test-generation run.

    Attributes:
        vectors: the selected test vectors.
        coverage: stuck-at coverage achieved on the fault universe.
        undetected: faults no candidate vector detected.
        candidates_tried: how many random candidates were drawn.
    """

    __test__ = False  # not a pytest class, despite the name

    vectors: Tuple[Dict[str, bool], ...]
    coverage: float
    undetected: Tuple[StuckAtFault, ...]
    candidates_tried: int


def fault_simulate(netlist: LogicNetlist,
                   vectors: Sequence[Dict[str, bool]],
                   faults: Optional[Sequence[StuckAtFault]] = None
                   ) -> Dict[StuckAtFault, Optional[int]]:
    """Fault simulation with fault dropping.

    Returns:
        fault -> index of the first detecting vector (None if escaped).
    """
    faults = list(faults if faults is not None
                  else all_stuck_at_faults(netlist))
    result: Dict[StuckAtFault, Optional[int]] = {f: None for f in faults}
    remaining: Set[StuckAtFault] = set(faults)
    for index, vector in enumerate(vectors):
        if not remaining:
            break
        values = netlist.evaluate(vector)
        for fault in list(remaining):
            # a fault is excitable only if the good value differs
            if values.get(fault.net) == fault.value:
                continue
            if detects_stuck_at(netlist, fault, vector):
                result[fault] = index
                remaining.discard(fault)
    return result


def generate_tests(netlist: LogicNetlist,
                   faults: Optional[Sequence[StuckAtFault]] = None,
                   max_candidates: int = 256,
                   target_coverage: float = 1.0,
                   seed: int = 0,
                   seed_vectors: Optional[Sequence[Dict[str, bool]]]
                   = None,
                   rng: Optional[np.random.Generator] = None
                   ) -> TestSet:
    """Random-greedy ATPG with fault dropping.

    Args:
        max_candidates: candidate-vector budget.
        target_coverage: stop early once reached.
        seed_vectors: candidates tried first — e.g. a block's
            functional vectors, which random patterns often cannot
            reproduce (a thermometer decoder's monotone inputs).
        rng: explicit generator; *seed* is ignored when given.
    """
    if not 0.0 < target_coverage <= 1.0:
        raise ValueError("target_coverage must be in (0, 1]")
    faults = list(faults if faults is not None
                  else all_stuck_at_faults(netlist))
    rng = rng if rng is not None else np.random.default_rng(seed)
    inputs = list(netlist.primary_inputs)
    remaining: Set[StuckAtFault] = set(faults)
    selected: List[Dict[str, bool]] = []
    tried = 0

    # seeds first, then the all-zero/all-one corners, then random
    def candidates() -> Iterable[Dict[str, bool]]:
        for vector in seed_vectors or ():
            yield dict(vector)
        yield {i: False for i in inputs}
        yield {i: True for i in inputs}
        while True:
            bits = rng.random(len(inputs)) < 0.5
            yield dict(zip(inputs, (bool(b) for b in bits)))

    for vector in candidates():
        if tried >= max_candidates or not remaining:
            break
        tried += 1
        values = netlist.evaluate(vector)
        newly = [f for f in remaining
                 if values.get(f.net) != f.value and
                 detects_stuck_at(netlist, f, vector)]
        if newly:
            selected.append(vector)
            remaining.difference_update(newly)
        covered = 1.0 - len(remaining) / len(faults)
        if covered >= target_coverage:
            break

    coverage = 1.0 - len(remaining) / len(faults) if faults else 1.0
    return TestSet(vectors=tuple(selected), coverage=coverage,
                   undetected=tuple(sorted(remaining, key=str)),
                   candidates_tried=tried)


def compact_tests(netlist: LogicNetlist,
                  vectors: Sequence[Dict[str, bool]],
                  faults: Optional[Sequence[StuckAtFault]] = None
                  ) -> List[Dict[str, bool]]:
    """Reverse-greedy compaction: drop vectors that cost no coverage."""
    faults = list(faults if faults is not None
                  else all_stuck_at_faults(netlist))
    baseline = sum(1 for d in fault_simulate(netlist, vectors,
                                             faults).values()
                   if d is not None)
    kept = list(vectors)
    for index in range(len(kept) - 1, -1, -1):
        trial = kept[:index] + kept[index + 1:]
        detected = sum(1 for d in fault_simulate(netlist, trial,
                                                 faults).values()
                       if d is not None)
        if detected == baseline:
            kept = trial
    return kept
