"""Gate-level digital substrate (decoder macro analysis).

Public API: :class:`LogicNetlist`, the gate :data:`LIBRARY`, stuck-at and
bridging fault models with logic/IDDQ detectability.
"""

from .atpg import TestSet, compact_tests, fault_simulate, generate_tests
from .faults import (BridgingFault, StuckAtFault, all_stuck_at_faults,
                     detects_stuck_at, iddq_bridge_coverage,
                     iddq_detects_bridge, logic_detects_bridge,
                     neighbouring_bridges, stuck_at_coverage)
from .gates import LIBRARY, GateType, gate_type
from .netlist import Gate, LogicError, LogicNetlist

__all__ = [
    "TestSet", "compact_tests", "fault_simulate", "generate_tests",
    "BridgingFault", "StuckAtFault", "all_stuck_at_faults",
    "detects_stuck_at", "iddq_bridge_coverage", "iddq_detects_bridge",
    "logic_detects_bridge", "neighbouring_bridges", "stuck_at_coverage",
    "LIBRARY", "GateType", "gate_type", "Gate", "LogicError",
    "LogicNetlist",
]
