"""Digital fault models: stuck-at and bridging faults with IDDQ.

The paper's decoder macro is digital, so its defect-oriented analysis uses
the classic digital machinery: stuck-at faults for voltage (logic)
detection and bridging faults for IDDQ detection.  A bridging fault is
IDDQ-detectable by any vector that drives the two bridged nets to opposite
values — the defining observation of IDDQ testing (the quiescent current
of a static CMOS circuit is otherwise negligible).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .netlist import LogicNetlist


@dataclass(frozen=True)
class StuckAtFault:
    """Net stuck at a constant value."""

    net: str
    value: bool

    def __str__(self) -> str:
        return f"{self.net}/SA{int(self.value)}"


@dataclass(frozen=True)
class BridgingFault:
    """Resistive bridge between two nets (wired behaviour irrelevant for
    IDDQ; logic behaviour approximated as wired-AND)."""

    net_a: str
    net_b: str

    def __str__(self) -> str:
        return f"bridge({self.net_a},{self.net_b})"


def all_stuck_at_faults(netlist: LogicNetlist) -> List[StuckAtFault]:
    """Both stuck-at polarities on every net."""
    faults = []
    for net in sorted(netlist.nets()):
        faults.append(StuckAtFault(net, False))
        faults.append(StuckAtFault(net, True))
    return faults


def detects_stuck_at(netlist: LogicNetlist, fault: StuckAtFault,
                     vector: Dict[str, bool]) -> bool:
    """True if *vector* produces a primary-output difference."""
    good = netlist.outputs(vector)
    bad = netlist.outputs(vector, forced_nets={fault.net: fault.value})
    return good != bad


def stuck_at_coverage(netlist: LogicNetlist,
                      vectors: Iterable[Dict[str, bool]],
                      faults: Optional[Sequence[StuckAtFault]] = None
                      ) -> Tuple[float, List[StuckAtFault]]:
    """Fault coverage of a vector set.

    Returns:
        ``(coverage_fraction, undetected_faults)``.
    """
    faults = list(faults if faults is not None
                  else all_stuck_at_faults(netlist))
    vectors = list(vectors)
    undetected = []
    for fault in faults:
        if not any(detects_stuck_at(netlist, fault, v) for v in vectors):
            undetected.append(fault)
    covered = len(faults) - len(undetected)
    coverage = covered / len(faults) if faults else 1.0
    return coverage, undetected


def iddq_detects_bridge(netlist: LogicNetlist, fault: BridgingFault,
                        vector: Dict[str, bool]) -> bool:
    """A vector IDDQ-detects a bridge iff it drives the nets opposite."""
    values = netlist.evaluate(vector)
    return values[fault.net_a] != values[fault.net_b]


def logic_detects_bridge(netlist: LogicNetlist, fault: BridgingFault,
                         vector: Dict[str, bool]) -> bool:
    """Wired-AND approximation for logic detection of a bridge."""
    good = netlist.outputs(vector)
    values = netlist.evaluate(vector)
    wired = values[fault.net_a] and values[fault.net_b]
    bad = netlist.outputs(vector, forced_nets={fault.net_a: wired,
                                               fault.net_b: wired})
    return good != bad


def iddq_bridge_coverage(netlist: LogicNetlist,
                         vectors: Iterable[Dict[str, bool]],
                         faults: Sequence[BridgingFault]
                         ) -> Tuple[float, List[BridgingFault]]:
    """IDDQ coverage of bridging faults for a vector set."""
    vectors = list(vectors)
    undetected = []
    for fault in faults:
        if not any(iddq_detects_bridge(netlist, fault, v) for v in vectors):
            undetected.append(fault)
    covered = len(faults) - len(undetected)
    coverage = covered / len(faults) if faults else 1.0
    return coverage, undetected


def neighbouring_bridges(netlist: LogicNetlist,
                         max_pairs: Optional[int] = None
                         ) -> List[BridgingFault]:
    """Plausible bridge list: nets sharing a gate (schematic adjacency).

    Layout-accurate bridges come from the defect simulator; this is the
    schematic-level fallback used for quick digital-only analyses.
    """
    pairs = set()
    for g in netlist.gates.values():
        nets = list(g.inputs) + [g.output]
        for a, b in itertools.combinations(sorted(set(nets)), 2):
            pairs.add((a, b))
    bridges = [BridgingFault(a, b) for a, b in sorted(pairs)]
    if max_pairs is not None:
        bridges = bridges[:max_pairs]
    return bridges
