"""Gate-level netlist with levelised evaluation.

The digital decoder macro of the Flash ADC is combinational
(thermometer -> binary); we levelise once and evaluate vectors in
topological order.  Sequential elements (the comparator flipflops) live in
the analog domain, so the digital substrate stays purely combinational
plus an optional output register abstraction at the behavioural level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .gates import GateType, gate_type


class LogicError(Exception):
    """Raised for malformed gate-level netlists."""


@dataclass
class Gate:
    """One gate instance.

    Attributes:
        name: unique instance name.
        gtype: the :class:`GateType`.
        inputs: driving net names, in gate-input order.
        output: driven net name.
    """

    name: str
    gtype: GateType
    inputs: List[str]
    output: str


class LogicNetlist:
    """A combinational gate-level netlist.

    Nets are strings; primary inputs are declared explicitly, every other
    net must be driven by exactly one gate.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self._driver: Dict[str, str] = {}
        self._order: Optional[List[str]] = None

    # -- construction ------------------------------------------------------

    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net in self._driver:
            raise LogicError(f"net {net!r} already driven by a gate")
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)
        self._order = None

    def add_output(self, net: str) -> None:
        """Declare a primary output net (may also feed other gates)."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    def add_gate(self, name: str, type_name: str, inputs: Sequence[str],
                 output: str) -> Gate:
        """Add a gate instance.

        Raises:
            LogicError: duplicate instance name or multiply-driven net.
        """
        if name in self.gates:
            raise LogicError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise LogicError(f"net {output!r} driven by both "
                             f"{self._driver[output]!r} and {name!r}")
        if output in self.primary_inputs:
            raise LogicError(f"net {output!r} is a primary input")
        gt = gate_type(type_name)
        if len(inputs) != gt.arity:
            raise LogicError(f"{name}: {type_name} needs {gt.arity} inputs")
        gate = Gate(name=name, gtype=gt, inputs=list(inputs), output=output)
        self.gates[name] = gate
        self._driver[output] = name
        self._order = None
        return gate

    # -- analysis ------------------------------------------------------------

    def nets(self) -> Set[str]:
        """All nets referenced by the netlist."""
        result = set(self.primary_inputs)
        for g in self.gates.values():
            result.update(g.inputs)
            result.add(g.output)
        return result

    def transistor_count(self) -> int:
        """Total CMOS transistor estimate."""
        return sum(g.gtype.transistors for g in self.gates.values())

    def levelize(self) -> List[str]:
        """Topological gate ordering (cached).

        Raises:
            LogicError: on combinational loops or undriven nets.
        """
        if self._order is not None:
            return self._order
        known: Set[str] = set(self.primary_inputs)
        remaining = dict(self.gates)
        order: List[str] = []
        while remaining:
            ready = [name for name, g in remaining.items()
                     if all(i in known for i in g.inputs)]
            if not ready:
                undriven = {i for g in remaining.values() for i in g.inputs
                            if i not in known and i not in self._driver}
                if undriven:
                    raise LogicError(f"undriven nets: {sorted(undriven)}")
                raise LogicError(
                    f"combinational loop among {sorted(remaining)}")
            for name in ready:
                order.append(name)
                known.add(remaining.pop(name).output)
        self._order = order
        return order

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, input_values: Dict[str, bool],
                 forced_nets: Optional[Dict[str, bool]] = None
                 ) -> Dict[str, bool]:
        """Evaluate all nets for one input vector.

        Args:
            input_values: value per primary input (all must be present).
            forced_nets: optional overrides applied after each gate
                evaluates (used for stuck-at fault injection).

        Returns:
            Dict of every net's value.
        """
        missing = [i for i in self.primary_inputs if i not in input_values]
        if missing:
            raise LogicError(f"missing input values for {missing}")
        forced = forced_nets or {}
        values: Dict[str, bool] = {}
        for net in self.primary_inputs:
            values[net] = forced.get(net, bool(input_values[net]))
        for gname in self.levelize():
            g = self.gates[gname]
            out = g.gtype.evaluate([values[i] for i in g.inputs])
            values[g.output] = forced.get(g.output, out)
        return values

    def outputs(self, input_values: Dict[str, bool],
                forced_nets: Optional[Dict[str, bool]] = None
                ) -> Dict[str, bool]:
        """Primary-output values for one input vector."""
        values = self.evaluate(input_values, forced_nets)
        return {net: values[net] for net in self.primary_outputs}
