"""Gate library for the gate-level substrate.

Each gate type is a named boolean function plus a transistor-count
estimate (used for area scaling of the digital decoder macro in the
global coverage compilation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


@dataclass(frozen=True)
class GateType:
    """A combinational gate type.

    Attributes:
        name: type name (``"NAND2"`` ...).
        arity: number of inputs.
        func: boolean function of the input tuple.
        transistors: CMOS transistor count (for area estimates).
    """

    name: str
    arity: int
    func: Callable[[Tuple[bool, ...]], bool]
    transistors: int

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Evaluate the gate; validates arity."""
        if len(inputs) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} inputs, "
                f"got {len(inputs)}")
        return self.func(tuple(bool(v) for v in inputs))


def _make_library() -> Dict[str, GateType]:
    lib = {}

    def add(name, arity, func, transistors):
        lib[name] = GateType(name, arity, func, transistors)

    add("BUF", 1, lambda v: v[0], 4)
    add("INV", 1, lambda v: not v[0], 2)
    add("AND2", 2, lambda v: v[0] and v[1], 6)
    add("AND3", 3, lambda v: all(v), 8)
    add("OR2", 2, lambda v: v[0] or v[1], 6)
    add("OR3", 3, lambda v: any(v), 8)
    add("NAND2", 2, lambda v: not (v[0] and v[1]), 4)
    add("NAND3", 3, lambda v: not all(v), 6)
    add("NOR2", 2, lambda v: not (v[0] or v[1]), 4)
    add("NOR3", 3, lambda v: not any(v), 6)
    add("XOR2", 2, lambda v: v[0] != v[1], 8)
    add("XNOR2", 2, lambda v: v[0] == v[1], 8)
    add("MUX2", 3, lambda v: v[1] if v[2] else v[0], 12)
    add("AOI21", 3, lambda v: not ((v[0] and v[1]) or v[2]), 6)
    return lib


LIBRARY: Dict[str, GateType] = _make_library()


def gate_type(name: str) -> GateType:
    """Look up a gate type by name.

    Raises:
        KeyError: for unknown gate names, listing the known library.
    """
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown gate type {name!r}; known: "
                       f"{sorted(LIBRARY)}")
