"""Process layer stack for a 1-um-class CMOS process (circa 1994).

Layer electrical properties feed the circuit-level fault models: the
resistance of an extra-material bridge depends on the layer's sheet
resistance (the paper: 0.2 ohm for metal shorts, higher for polysilicon
and diffusion; the exact poly/diffusion values are garbled in the source
text, so we use representative sheet-resistance-derived values and record
them in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Layer:
    """A conducting (or cut) layout layer.

    Attributes:
        name: canonical layer name.
        conductor: True for wiring layers that extra material can bridge.
        short_resistance: resistance of an extra-material bridge on this
            layer (ohms).
        min_width, min_space: design rules in um (drive the synthesiser).
    """

    name: str
    conductor: bool
    short_resistance: float
    min_width: float
    min_space: float


# Conductors.  Short resistances: metal 0.2 ohm (paper), polysilicon 50
# ohm and diffusion 100 ohm (paper values garbled; chosen from typical
# sheet resistances: ~25-50 ohm/sq poly, ~50-100 ohm/sq diffusion).
METAL1 = Layer("metal1", True, 0.2, min_width=1.2, min_space=1.2)
METAL2 = Layer("metal2", True, 0.2, min_width=1.4, min_space=1.4)
POLY = Layer("poly", True, 50.0, min_width=1.0, min_space=1.2)
NDIFF = Layer("ndiff", True, 100.0, min_width=1.6, min_space=1.6)
PDIFF = Layer("pdiff", True, 100.0, min_width=1.6, min_space=1.6)

# Cut layers.
CONTACT = Layer("contact", False, 2.0, min_width=1.0, min_space=1.2)
VIA = Layer("via", False, 2.0, min_width=1.0, min_space=1.2)

# Derived / marker layers (not conductors by themselves).
GATE = Layer("gate", False, 0.0, min_width=1.0, min_space=1.2)
WELL = Layer("nwell", False, 0.0, min_width=4.0, min_space=4.0)

LAYERS: Dict[str, Layer] = {
    layer.name: layer
    for layer in (METAL1, METAL2, POLY, NDIFF, PDIFF, CONTACT, VIA, GATE,
                  WELL)
}

#: layers an extra-material spot defect can occur on
EXTRA_MATERIAL_LAYERS: Tuple[str, ...] = (
    "metal1", "metal2", "poly", "ndiff", "pdiff")

#: layers a missing-material spot defect can occur on
MISSING_MATERIAL_LAYERS: Tuple[str, ...] = (
    "metal1", "metal2", "poly", "ndiff", "pdiff", "contact", "via")

#: which conducting layers a contact/via cut connects
CUT_CONNECTS: Dict[str, Tuple[str, ...]] = {
    "contact": ("metal1", "poly", "ndiff", "pdiff"),
    "via": ("metal1", "metal2"),
}

#: fault-model resistances (ohms) for pinhole mechanisms (paper values)
PINHOLE_RESISTANCE = 2000.0
EXTRA_CONTACT_RESISTANCE = 2.0
#: drain-source resistance of a "shorted device" (paper value garbled;
#: a punched-through / poly-bridged channel is a few hundred ohms)
SHORTED_DEVICE_RESISTANCE = 1000.0
#: near-miss (non-catastrophic) short model: 500 ohm in parallel with 1 fF
NEAR_MISS_RESISTANCE = 500.0
NEAR_MISS_CAPACITANCE = 1e-15


def layer(name: str) -> Layer:
    """Look up a layer by name.

    Raises:
        KeyError: unknown layer, message lists the stack.
    """
    try:
        return LAYERS[name]
    except KeyError:
        raise KeyError(f"unknown layer {name!r}; known: {sorted(LAYERS)}")
