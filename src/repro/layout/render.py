"""Layout rendering and statistics.

ASCII rendering of layout cells (for documentation, debugging and the
examples) plus per-cell statistics reports.  Layers are drawn bottom-up
with one character each, so upper layers overprint lower ones — crude,
but it makes routing order and adjacency (the things that drive the
bridging-fault statistics) visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .cell import LayoutCell
from .geometry import Rect

#: draw order (bottom first) and glyph per layer
LAYER_GLYPHS = [
    ("nwell", "w"),
    ("ndiff", "n"),
    ("pdiff", "p"),
    ("poly", "|"),
    ("gate", "G"),
    ("contact", "x"),
    ("metal1", "-"),
    ("via", "o"),
    ("metal2", "="),
]


def render_cell(cell: LayoutCell, width: int = 100,
                layers: Optional[Sequence[str]] = None) -> str:
    """ASCII art of a layout cell.

    Args:
        width: output width in characters; height follows the aspect
            ratio (capped at 60 rows).
        layers: subset of layers to draw (default: all).
    """
    bbox = cell.bbox()
    if bbox.width <= 0 or bbox.height <= 0:
        raise ValueError("cell has no extent")
    height = max(4, min(60, int(round(width * bbox.height /
                                      bbox.width * 0.5))))
    grid = [[" "] * width for _ in range(height)]
    wanted = set(layers) if layers is not None else None

    def to_col(x: float) -> int:
        frac = (x - bbox.x0) / bbox.width
        return min(width - 1, max(0, int(frac * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - bbox.y0) / bbox.height
        return min(height - 1, max(0, int((1.0 - frac) * (height - 1))))

    for layer, glyph in LAYER_GLYPHS:
        if wanted is not None and layer not in wanted:
            continue
        for shape in cell.shapes_on(layer):
            c0, c1 = to_col(shape.rect.x0), to_col(shape.rect.x1)
            r1, r0 = to_row(shape.rect.y0), to_row(shape.rect.y1)
            for r in range(r0, r1 + 1):
                for c in range(c0, c1 + 1):
                    grid[r][c] = glyph
    header = (f"{cell.name}: {bbox.width:.0f} x {bbox.height:.0f} um, "
              f"{len(cell.shapes)} shapes")
    body = "\n".join("".join(row) for row in grid)
    legend = "  ".join(f"{g}={l}" for l, g in LAYER_GLYPHS
                       if wanted is None or l in wanted)
    return f"{header}\n{body}\n[{legend}]"


@dataclass(frozen=True)
class CellStatistics:
    """Summary numbers for one layout cell.

    Attributes:
        name: cell name.
        area: bounding-box area (um^2).
        shape_count: number of shapes.
        device_count: number of devices.
        net_count: number of distinct nets.
        layer_area: drawn area per layer (um^2).
        wire_length: total length of wiring shapes per layer (um).
    """

    name: str
    area: float
    shape_count: int
    device_count: int
    net_count: int
    layer_area: Dict[str, float]
    wire_length: Dict[str, float]


def cell_statistics(cell: LayoutCell) -> CellStatistics:
    """Compute layout statistics for a cell."""
    layer_area: Dict[str, float] = {}
    wire_length: Dict[str, float] = {}
    for shape in cell.shapes:
        layer_area[shape.layer] = layer_area.get(shape.layer, 0.0) + \
            shape.rect.area
        if shape.purpose == "wire":
            length = max(shape.rect.width, shape.rect.height)
            wire_length[shape.layer] = \
                wire_length.get(shape.layer, 0.0) + length
    return CellStatistics(
        name=cell.name, area=cell.area(), shape_count=len(cell.shapes),
        device_count=len(cell.devices), net_count=len(cell.nets()),
        layer_area=layer_area, wire_length=wire_length)


def statistics_report(cells: Sequence[LayoutCell]) -> str:
    """Tabular statistics over several cells."""
    lines = [f"{'cell':16s} {'area um^2':>10s} {'shapes':>7s} "
             f"{'devices':>8s} {'nets':>5s} {'m1 wire um':>11s}"]
    for cell in cells:
        stats = cell_statistics(cell)
        lines.append(f"{stats.name:16s} {stats.area:10.0f} "
                     f"{stats.shape_count:7d} {stats.device_count:8d} "
                     f"{stats.net_count:5d} "
                     f"{stats.wire_length.get('metal1', 0.0):11.0f}")
    return "\n".join(lines)
