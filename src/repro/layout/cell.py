"""Layout cell: net- and device-tagged shapes.

A :class:`LayoutCell` is the defect simulator's world model: every shape
knows its layer, the net it implements and (optionally) the device it
belongs to, so a spot defect can be translated directly into a
circuit-level fault (which nets are bridged, which wire is cut, which
transistor's gate oxide is punctured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .geometry import Rect, bounding_box
from .layers import layer as lookup_layer


@dataclass(frozen=True)
class Shape:
    """One rectangle of layout.

    Attributes:
        rect: geometry in um.
        layer: layer name (must exist in the layer stack).
        net: electrical net the shape implements.
        device: owning device name, or None for routing.
        purpose: ``"wire"``, ``"gate"``, ``"sd"`` (source/drain
            diffusion), ``"cut"`` (contact/via), ``"plate"``
            (capacitor/resistor body).
    """

    rect: Rect
    layer: str
    net: str
    device: Optional[str] = None
    purpose: str = "wire"

    def __post_init__(self) -> None:
        lookup_layer(self.layer)  # validates


@dataclass(frozen=True)
class DeviceInfo:
    """Electrical identity of a layout device.

    Attributes:
        name: netlist element name.
        kind: ``"mosfet"``, ``"resistor"`` or ``"capacitor"``.
        terminals: terminal nets in netlist order (mosfet: d, g, s, b).
        polarity: ``"n"``/``"p"`` for mosfets, "" otherwise.
        gate_rect: the gate region (mosfets only).
    """

    name: str
    kind: str
    terminals: Tuple[str, ...]
    polarity: str = ""
    gate_rect: Optional[Rect] = None


class LayoutCell:
    """Shapes plus device metadata for one macro cell."""

    def __init__(self, name: str, bulk_nets: Optional[Dict[str, str]] = None
                 ) -> None:
        self.name = name
        self.shapes: List[Shape] = []
        self.devices: Dict[str, DeviceInfo] = {}
        #: substrate/well net per diffusion layer (junction pinhole target)
        self.bulk_nets: Dict[str, str] = dict(
            bulk_nets or {"ndiff": "gnd", "pdiff": "vdd"})
        #: nets that physically traverse the cell (clock/bias/supply
        #: distribution) — faults on them disturb other macros too
        self.global_nets: List[str] = []

    # -- construction -------------------------------------------------------

    def add_shape(self, shape: Shape) -> Shape:
        self.shapes.append(shape)
        return shape

    def add_rect(self, rect: Rect, layer: str, net: str,
                 device: Optional[str] = None,
                 purpose: str = "wire") -> Shape:
        """Convenience wrapper building and adding a :class:`Shape`."""
        return self.add_shape(Shape(rect=rect, layer=layer, net=net,
                                    device=device, purpose=purpose))

    def add_device(self, info: DeviceInfo) -> DeviceInfo:
        if info.name in self.devices:
            raise ValueError(f"duplicate device {info.name!r}")
        self.devices[info.name] = info
        return info

    # -- queries -------------------------------------------------------------

    def bbox(self) -> Rect:
        """Cell bounding box.

        Raises:
            ValueError: for an empty cell.
        """
        return bounding_box(s.rect for s in self.shapes)

    def area(self) -> float:
        """Cell area (bounding-box area, the defect-density measure)."""
        return self.bbox().area

    def shapes_on(self, layer: str) -> List[Shape]:
        """Shapes on a given layer."""
        return [s for s in self.shapes if s.layer == layer]

    def layer_area(self, layer: str) -> float:
        """Total drawn area on a layer (for pinhole statistics)."""
        return sum(s.rect.area for s in self.shapes_on(layer))

    def nets(self) -> List[str]:
        """All nets with at least one shape, sorted."""
        return sorted({s.net for s in self.shapes})

    def shapes_of_net(self, net: str) -> List[Shape]:
        return [s for s in self.shapes if s.net == net]

    def gate_shapes(self) -> List[Shape]:
        """All transistor gate regions."""
        return [s for s in self.shapes if s.purpose == "gate"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LayoutCell({self.name!r}, {len(self.shapes)} shapes, "
                f"{len(self.devices)} devices)")
