"""Layout substrate: geometry, layer stack, cells, extraction, synthesis.

Public API: :class:`Rect`, :class:`Disk`, :class:`Shape`,
:class:`LayoutCell`, :class:`DeviceInfo`, :func:`synthesize`,
:func:`verify_cell`, :func:`net_partition_without`.
"""

from .cell import DeviceInfo, LayoutCell, Shape
from .extract import (UnionFind, connected_components, extract_nets,
                      net_partition_without, verify_cell)
from .geometry import (Disk, Rect, bounding_box, disk_cuts_rect,
                       disk_intersects_rect, total_area)
from .drc import (DrcViolation, check_spacing, check_widths, drc_report,
                  rect_distance)
from .index import SpatialIndex
from .render import cell_statistics, render_cell, statistics_report
from .layers import (CUT_CONNECTS, EXTRA_CONTACT_RESISTANCE,
                     EXTRA_MATERIAL_LAYERS, LAYERS,
                     MISSING_MATERIAL_LAYERS, NEAR_MISS_CAPACITANCE,
                     NEAR_MISS_RESISTANCE, PINHOLE_RESISTANCE,
                     SHORTED_DEVICE_RESISTANCE, Layer, layer)
from .synth import SynthOptions, synthesize

__all__ = [
    "DeviceInfo", "LayoutCell", "Shape", "UnionFind",
    "connected_components", "extract_nets", "net_partition_without",
    "verify_cell", "Disk", "Rect", "bounding_box", "disk_cuts_rect",
    "disk_intersects_rect", "total_area", "CUT_CONNECTS",
    "EXTRA_CONTACT_RESISTANCE", "EXTRA_MATERIAL_LAYERS", "LAYERS",
    "MISSING_MATERIAL_LAYERS", "NEAR_MISS_CAPACITANCE",
    "NEAR_MISS_RESISTANCE", "PINHOLE_RESISTANCE",
    "SHORTED_DEVICE_RESISTANCE", "Layer", "layer", "SynthOptions",
    "synthesize", "SpatialIndex", "cell_statistics", "render_cell",
    "statistics_report", "DrcViolation", "check_spacing",
    "check_widths", "drc_report", "rect_distance",
]
