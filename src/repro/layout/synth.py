"""Layout synthesis: analog netlist -> defect-analyzable layout cell.

The paper analyses production Philips layouts, which we do not have, so
each macro's layout is synthesised from its transistor-level netlist with
a deterministic row-and-channel style:

* devices (MOSFETs, resistors, capacitors) are placed left-to-right in a
  device row;
* every net gets a horizontal metal1 routing track above the row; *global*
  nets (supplies, clock and bias distribution) get full-width tracks in a
  caller-controlled order — the order matters because adjacent tracks
  dominate the bridging-fault statistics, which is precisely the paper's
  DfT lever ("exchange some bias lines");
* terminals connect to their tracks with vertical metal2 stubs and vias.

The result reproduces the structural properties the methodology depends
on: long parallel distribution lines (most shorts), contacts and gate
regions (pinholes), and wires whose cut produces genuine net splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.elements import Capacitor, Resistor
from ..circuit.mosfet import Mosfet
from ..circuit.netlist import Circuit
from .cell import DeviceInfo, LayoutCell, Shape
from .geometry import Rect
from .layers import METAL1, METAL2

# geometry constants (um)
DEVICE_ROW_Y0 = 4.0
DEVICE_PITCH_MARGIN = 4.0
TRACK_WIDTH = 1.2
TRACK_PITCH = 3.0
STUB_WIDTH = 1.4
VIA_SIZE = 1.0
CONTACT_SIZE = 1.0
MAX_DIFF_HEIGHT = 10.0
MIN_DIFF_HEIGHT = 2.0
POLY_EXTENSION = 2.0


@dataclass
class SynthOptions:
    """Synthesis knobs.

    Attributes:
        global_nets: nets routed as full-width tracks, in track order
            (bottom-most first).  Order is the DfT lever for bias lines.
        ports: nets exposed at the cell boundary (get port anchors).
        scale: multiplies all device sizes (area knob).
    """

    global_nets: Sequence[str] = field(default_factory=list)
    ports: Sequence[str] = field(default_factory=list)
    scale: float = 1.0


def synthesize(circuit: Circuit, options: Optional[SynthOptions] = None
               ) -> LayoutCell:
    """Generate a :class:`LayoutCell` for an analog netlist.

    Only physical devices (MOSFETs, resistors, capacitors) are drawn;
    sources are external stimuli.  Every drawn net is routed; the caller
    should declare supply/clock/bias nets as global.
    """
    options = options or SynthOptions()
    cell = LayoutCell(circuit.title or "cell")
    placer = _Placer(cell, options)
    for element in circuit.elements:
        if isinstance(element, Mosfet):
            placer.place_mosfet(element)
        elif isinstance(element, Resistor):
            placer.place_resistor(element)
        elif isinstance(element, Capacitor):
            placer.place_capacitor(element)
    placer.route()
    cell.global_nets = list(options.global_nets)
    return cell


@dataclass
class _Terminal:
    """A device terminal's metal1 landing patch awaiting routing."""

    net: str
    x: float
    y: float
    device: str


class _Placer:
    """Stateful placement/routing helper for :func:`synthesize`."""

    def __init__(self, cell: LayoutCell, options: SynthOptions) -> None:
        self.cell = cell
        self.options = options
        self.cursor = 2.0
        self.row_top = DEVICE_ROW_Y0
        self.terminals: List[_Terminal] = []
        self.terminal_nets: Dict[str, List[_Terminal]] = {}

    # -- device drawing ------------------------------------------------------

    def _um(self, metres: float) -> float:
        return metres * 1e6 * self.options.scale

    def _add_terminal(self, net: str, x: float, y: float,
                      device: str) -> None:
        term = _Terminal(net=net, x=x, y=y, device=device)
        self.terminals.append(term)
        self.terminal_nets.setdefault(net, []).append(term)

    def _contact_with_patch(self, x: float, y: float, net: str,
                            device: str, bottom_layer: str) -> None:
        """Contact cut plus metal1 landing patch centred at (x, y)."""
        half = CONTACT_SIZE / 2.0
        self.cell.add_rect(Rect(x - half, y - half, x + half, y + half),
                           "contact", net, device=device, purpose="cut")
        m_half = CONTACT_SIZE / 2.0 + 0.4
        self.cell.add_rect(Rect(x - m_half, y - m_half, x + m_half,
                                y + m_half),
                           "metal1", net, device=device)
        self._add_terminal(net, x, y + m_half, device)

    def place_mosfet(self, m: Mosfet) -> None:
        """Draw one MOSFET: split diffusion, poly gate, S/D/G contacts."""
        w_um = max(MIN_DIFF_HEIGHT, min(self._um(m.w), MAX_DIFF_HEIGHT))
        l_um = max(1.0, self._um(m.l))
        d_net, g_net, s_net, _b_net = m.nodes
        diff_layer = "ndiff" if m.polarity == "n" else "pdiff"

        sd_len = 3.0  # source/drain diffusion length per side
        x0 = self.cursor
        y0 = DEVICE_ROW_Y0
        y1 = y0 + w_um
        xg0 = x0 + sd_len
        xg1 = xg0 + l_um
        x1 = xg1 + sd_len

        self.cell.add_rect(Rect(x0, y0, xg0, y1), diff_layer, s_net,
                           device=m.name, purpose="sd")
        self.cell.add_rect(Rect(xg1, y0, x1, y1), diff_layer, d_net,
                           device=m.name, purpose="sd")
        gate_rect = Rect(xg0, y0, xg1, y1)
        self.cell.add_rect(gate_rect, "gate", g_net, device=m.name,
                           purpose="gate")
        # poly gate strip extending above the diffusion for the contact
        poly_top = y1 + POLY_EXTENSION
        self.cell.add_rect(Rect(xg0, y0 - 1.0, xg1, poly_top), "poly",
                           g_net, device=m.name)

        self._contact_with_patch(x0 + 1.0, (y0 + y1) / 2.0, s_net,
                                 m.name, diff_layer)
        self._contact_with_patch(x1 - 1.0, (y0 + y1) / 2.0, d_net,
                                 m.name, diff_layer)
        gx = (xg0 + xg1) / 2.0
        self._contact_with_patch(gx, poly_top - 0.6, g_net, m.name, "poly")

        self.row_top = max(self.row_top, poly_top + 1.0)
        self.cursor = x1 + DEVICE_PITCH_MARGIN
        self.cell.add_device(DeviceInfo(
            name=m.name, kind="mosfet", terminals=tuple(m.nodes),
            polarity=m.polarity, gate_rect=gate_rect))

    def place_resistor(self, r: Resistor) -> None:
        """Draw a polysilicon resistor as two half-bodies plus contacts.

        Each half carries its terminal's net; the halves abut in the
        middle, which is electrically the resistive body (excluded from
        LVS verification via the ``plate`` purpose).
        """
        a_net, b_net = r.nodes
        length = min(24.0, max(6.0, r.resistance / 250.0))
        height = 1.6
        x0 = self.cursor
        y0 = DEVICE_ROW_Y0 + 1.0
        xm = x0 + length / 2.0
        x1 = x0 + length
        self.cell.add_rect(Rect(x0, y0, xm, y0 + height), "poly", a_net,
                           device=r.name, purpose="plate")
        self.cell.add_rect(Rect(xm, y0, x1, y0 + height), "poly", b_net,
                           device=r.name, purpose="plate")
        yc = y0 + height / 2.0
        self._contact_with_patch(x0 + 0.8, yc, a_net, r.name, "poly")
        self._contact_with_patch(x1 - 0.8, yc, b_net, r.name, "poly")
        self.row_top = max(self.row_top, y0 + height + 1.0)
        self.cursor = x1 + DEVICE_PITCH_MARGIN
        self.cell.add_device(DeviceInfo(
            name=r.name, kind="resistor", terminals=tuple(r.nodes)))

    def place_capacitor(self, c: Capacitor) -> None:
        """Draw a metal1-over-poly capacitor (thick-oxide dielectric)."""
        a_net, b_net = c.nodes
        side = min(16.0, max(4.0, (c.capacitance / 1e-15) ** 0.5))
        x0 = self.cursor
        y0 = DEVICE_ROW_Y0 + 1.0
        bottom = Rect(x0, y0, x0 + side, y0 + side)
        top = Rect(x0 + 0.6, y0 + 0.6, x0 + side - 0.6, y0 + side - 0.6)
        self.cell.add_rect(bottom, "poly", b_net, device=c.name,
                           purpose="plate")
        self.cell.add_rect(top, "metal1", a_net, device=c.name,
                           purpose="plate")
        # bottom plate contact sticks out of the top plate's shadow
        self._contact_with_patch(x0 + side + 0.8, y0 + side / 2.0, b_net,
                                 c.name, "poly")
        self.cell.add_rect(Rect(x0 + side, y0 + side / 2.0 - 0.8,
                                x0 + side + 1.6, y0 + side / 2.0 + 0.8),
                           "poly", b_net, device=c.name, purpose="plate")
        # top plate terminal directly on the metal1 plate
        self._add_terminal(a_net, x0 + side / 2.0, y0 + side - 0.6, c.name)
        self.row_top = max(self.row_top, y0 + side + 1.0)
        self.cursor = x0 + side + 1.6 + DEVICE_PITCH_MARGIN
        self.cell.add_device(DeviceInfo(
            name=c.name, kind="capacitor", terminals=tuple(c.nodes)))

    # -- routing ----------------------------------------------------------------

    def route(self) -> None:
        """Assign tracks and draw metal1 tracks + metal2 stubs + vias."""
        cell_width = max(self.cursor, 10.0)
        track_y0 = self.row_top + 2.0

        order: List[str] = []
        for net in self.options.global_nets:
            if net not in order:
                order.append(net)
        for net in sorted(self.terminal_nets):
            if net not in order:
                order.append(net)

        track_y: Dict[str, float] = {}
        for k, net in enumerate(order):
            track_y[net] = track_y0 + k * TRACK_PITCH

        for net in order:
            y = track_y[net]
            terms = self.terminal_nets.get(net, [])
            if net in self.options.global_nets:
                x_lo, x_hi = 0.0, cell_width
            elif terms:
                x_lo = min(t.x for t in terms) - 2.0
                x_hi = max(t.x for t in terms) + 2.0
            else:
                continue
            self.cell.add_rect(Rect(x_lo, y, x_hi, y + TRACK_WIDTH),
                               "metal1", net)
            if net in self.options.ports:
                anchor = f"port:{net}"
                self.cell.add_rect(
                    Rect(x_lo, y, x_lo + 1.5, y + TRACK_WIDTH), "metal1",
                    net, device=anchor)
                if anchor not in self.cell.devices:
                    self.cell.add_device(DeviceInfo(
                        name=anchor, kind="port", terminals=(net,)))

        for term in self.terminals:
            y_track = track_y[term.net]
            self._draw_stub(term, y_track)

    def _draw_stub(self, term: _Terminal, y_track: float) -> None:
        """Vertical metal2 stub with vias from a terminal to its track."""
        half = STUB_WIDTH / 2.0
        y_top = y_track + TRACK_WIDTH / 2.0
        self.cell.add_rect(
            Rect(term.x - half, term.y - 1.0, term.x + half, y_top + half),
            "metal2", term.net, device=term.device)
        v = VIA_SIZE / 2.0
        self.cell.add_rect(
            Rect(term.x - v, term.y - 1.0, term.x + v, term.y),
            "via", term.net, device=term.device, purpose="cut")
        self.cell.add_rect(
            Rect(term.x - v, y_top - v, term.x + v, y_top + v),
            "via", term.net, device=term.device, purpose="cut")
