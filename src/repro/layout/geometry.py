"""Planar geometry primitives for layout and spot defects.

All coordinates are in micrometres.  Spot defects are modelled as disks
(the standard VLASIC abstraction); layout features are axis-aligned
rectangles.  The two predicates that drive fault extraction are:

* :func:`disk_intersects_rect` — an extra-material defect *bridges* every
  feature it touches;
* :func:`disk_cuts_rect` — a missing-material defect *opens* a wire only
  if it spans the wire's full width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle with x0 <= x1, y0 <= y1."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"malformed rect {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles overlap (shared edges count)."""
        return not (self.x1 < other.x0 or other.x1 < self.x0 or
                    self.y1 < other.y0 or other.y1 < self.y0)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap rectangle, or None when disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 < x0 or y1 < y0:
            return None
        return Rect(x0, y0, x1, y1)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by *margin* on every side."""
        return Rect(self.x0 - margin, self.y0 - margin,
                    self.x1 + margin, self.y1 + margin)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(min(self.x0, other.x0), min(self.y0, other.y0),
                    max(self.x1, other.x1), max(self.y1, other.y1))


@dataclass(frozen=True)
class Disk:
    """A circular spot defect."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("defect radius must be positive")

    @property
    def diameter(self) -> float:
        return 2.0 * self.radius


def disk_intersects_rect(disk: Disk, rect: Rect) -> bool:
    """True if the disk and rectangle share any area."""
    nx = min(max(disk.cx, rect.x0), rect.x1)
    ny = min(max(disk.cy, rect.y0), rect.y1)
    dx = disk.cx - nx
    dy = disk.cy - ny
    return dx * dx + dy * dy <= disk.radius * disk.radius


def disk_cuts_rect(disk: Disk, rect: Rect) -> bool:
    """True if the disk severs the rectangle across its narrow dimension.

    A missing-material defect breaks a wire only when it spans the full
    width; we test whether the disk's chord across the wire covers the
    wire's cross-section.  The wire's long axis is taken from its aspect
    ratio; square-ish features (contacts, vias) are cut whenever the disk
    covers their centre and diameter exceeds their smaller side.
    """
    if not disk_intersects_rect(disk, rect):
        return False
    if rect.width >= rect.height:
        # horizontal wire: must cover [y0, y1] at some x within the wire
        span = rect.height
        offset = _chord_coverage(disk.cy, disk.radius, rect.y0, rect.y1)
        across = offset
        along_ok = rect.x0 - disk.radius <= disk.cx <= rect.x1 + disk.radius
    else:
        span = rect.width
        across = _chord_coverage(disk.cx, disk.radius, rect.x0, rect.x1)
        along_ok = rect.y0 - disk.radius <= disk.cy <= rect.y1 + disk.radius
    return across and along_ok and disk.diameter >= span


def _chord_coverage(centre: float, radius: float, lo: float,
                    hi: float) -> bool:
    """Does [centre - r, centre + r] cover [lo, hi]?"""
    return centre - radius <= lo and centre + radius >= hi


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a non-empty rectangle collection."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box of empty collection")
    box = rects[0]
    for r in rects[1:]:
        box = box.union_bbox(r)
    return box


def total_area(rects: Iterable[Rect]) -> float:
    """Sum of rectangle areas (overlaps counted twice — adequate for the
    sparse, mostly non-overlapping shapes our synthesiser emits)."""
    return sum(r.area for r in rects)
