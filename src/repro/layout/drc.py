"""Design-rule checking (width and spacing).

Checks every shape against its layer's minimum width and every
different-net same-layer pair against the minimum spacing, using the
spatial index so large cells stay fast.

Note on the synthesised macros: they are width-clean by construction,
but the stick-style router places vertical stubs at device-terminal
pitch, which violates metal spacing in places a production router would
spread out.  That is a deliberate trade — what matters for defect
statistics is *adjacency*, and tighter-than-real spacing only errs
toward more bridging exposure, never less.  The checker exists so the
trade is measured, not silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cell import LayoutCell, Shape
from .geometry import Disk, Rect
from .index import SpatialIndex
from .layers import LAYERS


@dataclass(frozen=True)
class DrcViolation:
    """One design-rule violation.

    Attributes:
        kind: ``"width"`` or ``"spacing"``.
        layer: layer the rule applies to.
        measured: offending dimension (um).
        required: the rule value (um).
        nets: nets involved (one for width, two for spacing).
    """

    kind: str
    layer: str
    measured: float
    required: float
    nets: Tuple[str, ...]

    def __str__(self) -> str:
        return (f"{self.kind}@{self.layer}: {self.measured:.2f} < "
                f"{self.required:.2f} um ({', '.join(self.nets)})")


def rect_distance(a: Rect, b: Rect) -> float:
    """Shortest distance between two rectangles (0 when they touch)."""
    dx = max(0.0, max(a.x0, b.x0) - min(a.x1, b.x1))
    dy = max(0.0, max(a.y0, b.y0) - min(a.y1, b.y1))
    return math.hypot(dx, dy)


def check_widths(cell: LayoutCell) -> List[DrcViolation]:
    """Minimum-width violations across all shapes."""
    violations = []
    for shape in cell.shapes:
        rule = LAYERS[shape.layer].min_width
        measured = min(shape.rect.width, shape.rect.height)
        if measured < rule - 1e-9:
            violations.append(DrcViolation(
                kind="width", layer=shape.layer, measured=measured,
                required=rule, nets=(shape.net,)))
    return violations


def check_spacing(cell: LayoutCell,
                  index: Optional[SpatialIndex] = None,
                  layers: Optional[Tuple[str, ...]] = None
                  ) -> List[DrcViolation]:
    """Minimum-spacing violations between different-net shapes."""
    index = index or SpatialIndex(cell)
    violations = []
    seen = set()
    for shape in cell.shapes:
        if layers is not None and shape.layer not in layers:
            continue
        rule = LAYERS[shape.layer].min_space
        cx, cy = shape.rect.center
        reach = max(shape.rect.width, shape.rect.height) / 2.0 + rule
        for other in index.candidates_for_disk(shape.layer,
                                               Disk(cx, cy, reach)):
            if other is shape or other.net == shape.net:
                continue
            pair = (min(id(shape), id(other)),
                    max(id(shape), id(other)))
            if pair in seen:
                continue
            seen.add(pair)
            measured = rect_distance(shape.rect, other.rect)
            if measured < rule - 1e-9:
                violations.append(DrcViolation(
                    kind="spacing", layer=shape.layer,
                    measured=measured, required=rule,
                    nets=tuple(sorted({shape.net, other.net}))))
    return violations


def drc_report(cell: LayoutCell) -> str:
    """Summary DRC report for a cell."""
    widths = check_widths(cell)
    spacings = check_spacing(cell)
    by_layer: Dict[Tuple[str, str], int] = {}
    for v in widths + spacings:
        by_layer[(v.kind, v.layer)] = by_layer.get((v.kind, v.layer),
                                                   0) + 1
    lines = [f"DRC report for {cell.name}: "
             f"{len(widths)} width, {len(spacings)} spacing violations"]
    for (kind, layer), count in sorted(by_layer.items()):
        lines.append(f"  {kind:8s} {layer:8s} x{count}")
    return "\n".join(lines)
