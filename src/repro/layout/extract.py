"""Connectivity extraction over layout shapes.

Two uses:

1. **Layout verification** — after synthesis, check that the shapes of
   each net form one electrically connected component and that no two
   nets touch (the synthesiser must produce LVS-clean layout, otherwise
   defect analysis would report phantom faults).
2. **Open-fault analysis** — when a missing-material defect cuts a shape,
   re-extract that net without the cut shape and report how the net's
   terminal attachments partition into disconnected groups.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .cell import LayoutCell, Shape
from .index import ShapeGrid
from .layers import CUT_CONNECTS


class UnionFind:
    """Classic disjoint-set with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = defaultdict(list)
        for k in range(len(self.parent)):
            out[self.find(k)].append(k)
        return dict(out)


def _shapes_connect(a: Shape, b: Shape) -> bool:
    """Electrical connection between two overlapping shapes."""
    if not a.rect.intersects(b.rect):
        return False
    if a.layer == b.layer and a.layer not in CUT_CONNECTS:
        return True
    # cut layers connect the layers they are allowed to connect
    for cut, conductors in CUT_CONNECTS.items():
        if a.layer == cut and b.layer in conductors:
            return True
        if b.layer == cut and a.layer in conductors:
            return True
    # poly over diffusion is a gate (a capacitor, not a connection), and
    # unrelated layer overlaps (metal1 over poly without contact) are
    # isolated by oxide.
    return False


def _layer_connect_matrix(layers: Sequence[str]) -> np.ndarray:
    """Boolean matrix over layer ids: can shapes on (la, lb) connect?

    Mirrors the layer rules of :func:`_shapes_connect` — same
    non-cut layer, or a cut layer against one of its conductors.
    """
    ids = {layer: k for k, layer in enumerate(layers)}
    matrix = np.zeros((len(layers), len(layers)), dtype=bool)
    for layer, k in ids.items():
        if layer not in CUT_CONNECTS:
            matrix[k, k] = True
    for cut, conductors in CUT_CONNECTS.items():
        if cut not in ids:
            continue
        for conductor in conductors:
            if conductor in ids:
                matrix[ids[cut], ids[conductor]] = True
                matrix[ids[conductor], ids[cut]] = True
    return matrix


def connected_components(shapes: Sequence[Shape]) -> List[Set[int]]:
    """Group shape indices into electrically connected components.

    A uniform bucket grid (:class:`~repro.layout.index.ShapeGrid`)
    narrows the pair candidates, and the rect-intersection plus
    layer-connection predicates run vectorised per bucket — identical
    results to the former all-pairs :func:`_shapes_connect` scan
    without its O(n^2) cost.
    """
    n = len(shapes)
    uf = UnionFind(n)
    if n > 1:
        x0 = np.array([s.rect.x0 for s in shapes])
        y0 = np.array([s.rect.y0 for s in shapes])
        x1 = np.array([s.rect.x1 for s in shapes])
        y1 = np.array([s.rect.y1 for s in shapes])
        layers = sorted({s.layer for s in shapes})
        layer_ids = {layer: k for k, layer in enumerate(layers)}
        lay = np.array([layer_ids[s.layer] for s in shapes])
        connect = _layer_connect_matrix(layers)
        for members in ShapeGrid(shapes).candidate_groups():
            idx = np.asarray(members)
            bx0, by0 = x0[idx], y0[idx]
            bx1, by1 = x1[idx], y1[idx]
            # Rect.intersects with shared edges counting, all pairs
            touch = ~((bx1[:, None] < bx0[None, :])
                      | (bx1[None, :] < bx0[:, None])
                      | (by1[:, None] < by0[None, :])
                      | (by1[None, :] < by0[:, None]))
            blay = lay[idx]
            touch &= connect[blay[:, None], blay[None, :]]
            for i, j in zip(*np.nonzero(np.triu(touch, 1))):
                uf.union(int(idx[i]), int(idx[j]))
    return [set(members) for members in uf.groups().values()]


def extract_nets(cell: LayoutCell) -> List[Set[int]]:
    """Connected components over all shapes of the cell."""
    return connected_components(cell.shapes)


def verify_cell(cell: LayoutCell) -> List[str]:
    """LVS-style checks; returns a list of human-readable violations.

    Checks that every net's shapes are fully connected and that no
    component mixes nets (i.e. no unintended bridges in the drawn
    layout).  Gate markers and device plates are excluded: a gate region
    overlaps poly and diffusion by construction, and a resistor's two
    half-bodies abut (they are the resistive path itself).
    """
    violations: List[str] = []
    shapes = [s for s in cell.shapes if s.purpose not in ("gate", "plate")]
    components = connected_components(shapes)
    comp_of_shape: Dict[int, int] = {}
    for ci, members in enumerate(components):
        for m in members:
            comp_of_shape[m] = ci

    nets_in_comp: Dict[int, Set[str]] = defaultdict(set)
    comps_of_net: Dict[str, Set[int]] = defaultdict(set)
    for idx, shape in enumerate(shapes):
        ci = comp_of_shape[idx]
        nets_in_comp[ci].add(shape.net)
        comps_of_net[shape.net].add(ci)

    for ci, nets in sorted(nets_in_comp.items()):
        if len(nets) > 1:
            violations.append(
                f"short in drawn layout: component {ci} carries nets "
                f"{sorted(nets)}")
    for net, comps in sorted(comps_of_net.items()):
        if len(comps) > 1:
            violations.append(
                f"open in drawn layout: net {net!r} split into "
                f"{len(comps)} islands")
    return violations


def net_partition_without(cell: LayoutCell, net: str,
                          removed: Iterable[Shape]
                          ) -> List[FrozenSet[str]]:
    """Partition of a net's device terminals after removing shapes.

    Used for open-fault analysis: remove the defect-cut shape(s) from the
    net, recompute connectivity among the remaining shapes, and group the
    net's *terminal attachments* (device names + terminal indices) by
    island.

    Returns:
        A list of frozensets of attachment labels ``"device:tindex"``.
        Length 1 means the net survived (redundant routing); length >= 2
        is a true open.
    """
    removed_ids = {id(s) for s in removed}
    remaining = [s for s in cell.shapes_of_net(net)
                 if id(s) not in removed_ids and s.purpose != "gate"]
    components = connected_components(remaining)

    # attachment points: where does each device terminal touch the net?
    attachments: List[Tuple[str, int]] = []  # (label, shape index)
    labels: List[str] = []
    for dev in cell.devices.values():
        for t_index, t_net in enumerate(dev.terminals):
            if t_net != net:
                continue
            if dev.kind == "mosfet" and t_index == 3:
                # bulk connects through the substrate/well, not drawn
                # wiring: it cannot be opened by a missing-material spot
                continue
            label = f"{dev.name}:{t_index}"
            anchor = _attachment_shape(remaining, dev.name)
            labels.append(label)
            attachments.append((label, anchor))

    groups: Dict[int, Set[str]] = defaultdict(set)
    orphans: Set[str] = set()
    comp_of_shape = {}
    for ci, members in enumerate(components):
        for m in members:
            comp_of_shape[m] = ci
    for label, anchor in attachments:
        if anchor is None:
            orphans.add(label)
        else:
            groups[comp_of_shape[anchor]].add(label)
    partition = [frozenset(g) for g in groups.values()]
    for orphan in sorted(orphans):
        partition.append(frozenset([orphan]))
    return partition


def _attachment_shape(shapes: Sequence[Shape], device: str
                      ) -> Optional[int]:
    """Index of a device-owned shape in *shapes* (its terminal anchor)."""
    for idx, s in enumerate(shapes):
        if s.device == device:
            return idx
    return None
