"""Uniform-grid spatial index over layout shapes.

Defect analysis asks, millions of times per campaign, "which shapes on
layer L does this disk touch?"  A per-layer bucket grid answers that in
near-constant time instead of scanning every shape.  Results are
identical to the linear scan (the index only *narrows candidates*; the
exact geometric predicates still decide).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from .cell import LayoutCell, Shape
from .geometry import Disk, Rect

#: default grid pitch in um — about one routing-track pitch group
DEFAULT_BUCKET = 16.0


class SpatialIndex:
    """Per-layer uniform grid over a cell's shapes."""

    def __init__(self, cell: LayoutCell,
                 bucket: float = DEFAULT_BUCKET) -> None:
        if bucket <= 0:
            raise ValueError("bucket size must be positive")
        self.cell = cell
        self.bucket = float(bucket)
        self._grid: Dict[str, Dict[Tuple[int, int], List[Shape]]] = \
            defaultdict(lambda: defaultdict(list))
        for shape in cell.shapes:
            for key in self._keys_for_rect(shape.rect):
                self._grid[shape.layer][key].append(shape)

    # -- key helpers --------------------------------------------------------

    def _keys_for_rect(self, rect: Rect) -> Iterable[Tuple[int, int]]:
        b = self.bucket
        ix0, ix1 = int(rect.x0 // b), int(rect.x1 // b)
        iy0, iy1 = int(rect.y0 // b), int(rect.y1 // b)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                yield (ix, iy)

    def _keys_for_disk(self, disk: Disk) -> Iterable[Tuple[int, int]]:
        r = disk.radius
        return self._keys_for_rect(Rect(disk.cx - r, disk.cy - r,
                                        disk.cx + r, disk.cy + r))

    # -- queries -------------------------------------------------------------

    def candidates_for_disk(self, layer: str, disk: Disk) -> List[Shape]:
        """Shapes on *layer* whose buckets the disk's bbox overlaps.

        A superset of the true hit set; deduplicated, in insertion
        order.
        """
        layer_grid = self._grid.get(layer)
        if not layer_grid:
            return []
        seen = set()
        out: List[Shape] = []
        for key in self._keys_for_disk(disk):
            for shape in layer_grid.get(key, ()):
                if id(shape) not in seen:
                    seen.add(id(shape))
                    out.append(shape)
        return out

    def candidates_at_point(self, layer: str, x: float,
                            y: float) -> List[Shape]:
        """Shapes on *layer* in the bucket containing (x, y)."""
        layer_grid = self._grid.get(layer)
        if not layer_grid:
            return []
        key = (int(x // self.bucket), int(y // self.bucket))
        return list(layer_grid.get(key, ()))

    def bucket_count(self, layer: str) -> int:
        """Number of occupied buckets on a layer (diagnostics)."""
        return len(self._grid.get(layer, ()))


class ShapeGrid:
    """Layer-agnostic uniform grid over an arbitrary shape sequence.

    Connectivity extraction needs candidate *pairs* across layers (cuts
    connect conductors on different layers), so unlike
    :class:`SpatialIndex` the grid is not partitioned by layer: two
    shapes can only touch if their bounding boxes share a bucket, and
    every intersecting pair shares at least one bucket (the overlap
    region lies in a cell both bboxes cover).
    """

    def __init__(self, shapes: Sequence[Shape],
                 bucket: float = DEFAULT_BUCKET) -> None:
        if bucket <= 0:
            raise ValueError("bucket size must be positive")
        self.bucket = float(bucket)
        self._grid: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        b = self.bucket
        for idx, shape in enumerate(shapes):
            rect = shape.rect
            ix0, ix1 = int(rect.x0 // b), int(rect.x1 // b)
            iy0, iy1 = int(rect.y0 // b), int(rect.y1 // b)
            for ix in range(ix0, ix1 + 1):
                for iy in range(iy0, iy1 + 1):
                    self._grid[(ix, iy)].append(idx)

    def candidate_groups(self) -> Iterable[List[int]]:
        """Index groups that share a bucket (candidate-pair sources).

        Buckets holding a single shape yield nothing; a pair spanning
        several shared buckets appears in each of them (callers must be
        idempotent, e.g. union-find merges).
        """
        for members in self._grid.values():
            if len(members) > 1:
                yield members
