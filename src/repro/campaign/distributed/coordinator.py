"""The campaign coordinator: shard queue, merge, HTTP fan-in.

One coordinator owns one campaign.  It plans the campaign exactly as
a single-host :class:`~repro.campaign.runner.CampaignRunner` would
(same plans, same tasks, same fingerprint), resolves what the journal
and store already know, partitions the remainder into content-keyed
shards and serves them to workers over stdlib HTTP.

Shard lifecycle::

    pending --claim--> leased --report--> done
       ^                  |
       +---lease expiry---+   (retries += 1; too many -> degraded)

All timing is on the coordinator's injected monotonic clock — a
worker's clock never enters the protocol, so clock skew cannot expire
or immortalise a lease.  ``/report`` is idempotent per shard: the
first report merges, every later one (a reclaimed worker finishing
late, a retried HTTP call) is acknowledged and ignored — safe because
shard results are deterministic, so duplicates are byte-identical by
construction.

Every merged class is journaled (crash safety: a restarted
coordinator with ``--resume`` adopts the merged journal and only
re-dispatches the remainder), stored (re-run economy: remote results
are adopted into the coordinator's content-addressed store) and
emitted as a :class:`~repro.campaign.events.ClassCompleted` event
(live metrics).  The final result is assembled in plan order, so it
is byte-identical to a single-host run with the same seed.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...core.path import PathResult
from ...core.router import error_envelope
from ...macrotest.coverage import DetectionRecord
from ..events import (CampaignFinished, CampaignStarted, ClassCompleted,
                      DistributedMetricsCollector, EventBus,
                      ShardClaimed, ShardCompleted, ShardReclaimed)
from ..journal import CampaignJournal, JournalEntry
from ..runner import (CampaignOptions, CampaignResult, CampaignRunner,
                      PreparedCampaign)
from ..tasks import ClassTask, degraded_record
from .partition import Shard, partition_tasks
from .protocol import (CampaignDescriptor, ProtocolError, ReportEntry,
                       ShardLease, decode_entries)

#: default shard lease in seconds; workers heartbeat at lease / 3
DEFAULT_LEASE = 30.0

#: how many expired leases a shard survives before its unfinished
#: classes degrade (the campaign finishes; it does not hang forever
#: on a shard no worker can complete)
MAX_SHARD_RETRIES = 3

#: suggested worker poll interval when no shard is claimable
RETRY_AFTER = 0.2


class _ShardState:
    """Coordinator-side lifecycle of one shard."""

    __slots__ = ("shard", "status", "worker", "expiry", "claimed_at",
                 "retries")

    def __init__(self, shard: Shard) -> None:
        self.shard = shard
        self.status = "pending"  # pending | leased | done
        self.worker: Optional[str] = None
        self.expiry = 0.0
        self.claimed_at = 0.0
        self.retries = 0


class Coordinator:
    """Plans, shards, serves and merges one distributed campaign.

    Usage::

        coordinator = Coordinator(config, options, lease=30.0)
        url = coordinator.start()        # plans + binds the server
        ... point `python -m repro worker <url>` at it ...
        result = coordinator.wait()      # blocks until merged

    or, localhost multi-worker mode in one call::

        result = Coordinator(config, options).run(workers=3)

    The coordinator itself never simulates a fault class (the decoder
    logic pass at assembly is the one exception, mirroring the
    single-host runner).
    """

    def __init__(self, config=None,
                 options: Optional[CampaignOptions] = None,
                 bus: Optional[EventBus] = None,
                 macros: Optional[Sequence[str]] = None,
                 shard_size: Optional[int] = None,
                 n_shards: Optional[int] = None,
                 lease: float = DEFAULT_LEASE,
                 max_shard_retries: int = MAX_SHARD_RETRIES,
                 host: str = "127.0.0.1", port: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.runner = CampaignRunner(config, options, bus=bus)
        self.config = self.runner.config
        self.options = self.runner.options
        self.bus = self.runner.bus
        self.collector = self.runner.collector
        self.distributed = DistributedMetricsCollector(clock=clock)
        self.bus.subscribe(self.distributed)
        self.macros = macros
        self.shard_size = shard_size
        self.n_shards = n_shards
        self.lease = float(lease)
        self.max_shard_retries = max_shard_retries
        self.host = host
        self.port = port
        self._clock = clock
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._prepared: Optional[PreparedCampaign] = None
        self._shards: Dict[str, _ShardState] = {}
        self._queue: List[str] = []  # pending shard ids, heaviest first
        self._results: Dict[str, DetectionRecord] = {}
        self._journal: Optional[CampaignJournal] = None
        self._server: Optional["CoordinatorServer"] = None
        self._server_thread: Optional[threading.Thread] = None
        self._workers_seen: set = set()

    # -- planning ----------------------------------------------------------

    def prepare(self) -> PreparedCampaign:
        """Plan, resolve journal/store, partition the rest into shards.

        Idempotent; called implicitly by :meth:`start`.
        """
        with self._lock:
            if self._prepared is not None:
                return self._prepared
            prepared = self.runner.prepare(self.macros, jobs=1)
            self._prepared = prepared
            if prepared.store is not None:
                prepared.store.sweep_tmp()

            cache_dir = self.options.resolved_cache_dir()
            adopted: Dict[str, JournalEntry] = {}
            if cache_dir is not None:
                self._journal = CampaignJournal(
                    cache_dir / "journals" /
                    f"{prepared.fingerprint[:16]}.jsonl")
                if self.options.resume:
                    entries = self._journal.load(prepared.fingerprint)
                    for task in prepared.tasks:
                        entry = entries.get(task.task_id)
                        if entry is not None:
                            adopted[task.task_id] = entry
                self._journal.open(
                    prepared.fingerprint,
                    fresh=not (self.options.resume and adopted))

            self.bus.emit(CampaignStarted(
                macros=tuple(p.name for p in prepared.plans) +
                (("decoder",) if "decoder" in prepared.wanted else ()),
                total_tasks=len(prepared.tasks), jobs=0,
                resumed=len(adopted),
                total_weight=sum(t.fault_class.count
                                 for t in prepared.tasks)))

            # resolve journal + store before sharding anything
            to_shard: List[ClassTask] = []
            for task in prepared.tasks:
                entry = adopted.get(task.task_id)
                if entry is not None:
                    record = replace(entry.record,
                                     count=task.fault_class.count)
                    self._complete(task, record, "journal",
                                   error=entry.error
                                   if entry.degraded else None)
                    continue
                if prepared.store is not None:
                    cached = prepared.store.get(
                        task.store_key, count=task.fault_class.count)
                    if cached is not None:
                        self._complete(task, cached, "cache")
                        continue
                to_shard.append(task)

            for shard in partition_tasks(to_shard,
                                         shard_size=self.shard_size,
                                         n_shards=self.n_shards):
                self._shards[shard.id] = _ShardState(shard)
                self._queue.append(shard.id)
            self.distributed.set_totals(
                len(self._shards),
                sum(s.shard.weight for s in self._shards.values()))
            if not self._shards:
                self._done.set()
            return prepared

    def descriptor(self) -> CampaignDescriptor:
        prepared = self.prepare()
        return CampaignDescriptor(
            fingerprint=prepared.fingerprint,
            config=self.config.to_dict(),
            macros=tuple(prepared.wanted),
            store_version=self.options.store_version,
            lease=self.lease)

    # -- merge -------------------------------------------------------------

    def _complete(self, task: ClassTask, record: DetectionRecord,
                  source: str, wall: float = 0.0,
                  error: Optional[str] = None) -> None:
        """Fold one finished class into the campaign (lock held)."""
        self._results[task.task_id] = record
        is_degraded = error is not None
        if self._journal is not None and source != "journal":
            self._journal.append(JournalEntry(
                task_id=task.task_id, record=record,
                degraded=is_degraded, error=error, source=source))
        store = self._prepared.store if self._prepared else None
        if store is not None and source == "remote" and \
                not is_degraded:
            store.put(task.store_key, record,
                      meta={"task_id": task.task_id,
                            "macro": task.macro})
        self.bus.emit(ClassCompleted(
            macro=task.macro, kind=task.kind, index=task.index,
            source=source, wall=wall, degraded=is_degraded,
            error=error, done=len(self._results),
            total=len(self._prepared.tasks) if self._prepared else 0,
            weight=task.fault_class.count))

    def _reclaim_expired(self) -> None:
        """Requeue (or degrade) shards whose lease ran out."""
        now = self._clock()
        for state in self._shards.values():
            if state.status != "leased" or state.expiry > now:
                continue
            state.retries += 1
            worker = state.worker or ""
            state.worker = None
            self.bus.emit(ShardReclaimed(
                shard_id=state.shard.id, worker=worker,
                retries=state.retries, lease=self.lease))
            if state.retries > self.max_shard_retries:
                # the shard keeps killing its workers: degrade its
                # unfinished classes so the campaign finishes
                tasks = self._prepared.tasks_by_id
                for task_id in state.shard.task_ids:
                    if task_id in self._results:
                        continue
                    task = tasks[task_id]
                    self._complete(
                        task, degraded_record(task.fault_class),
                        "remote",
                        error=f"shard {state.shard.id[:16]} exceeded "
                              f"{self.max_shard_retries} lease "
                              f"retries")
                state.status = "done"
                self._check_done()
            else:
                state.status = "pending"
                self._queue.append(state.shard.id)

    def _check_done(self) -> None:
        if all(s.status == "done" for s in self._shards.values()):
            self._done.set()

    # -- protocol operations (called by the HTTP layer) --------------------

    def claim(self, worker: str) -> Dict:
        with self._lock:
            self._workers_seen.add(worker)
            self._reclaim_expired()
            if self._done.is_set():
                return {"shard": None, "done": True}
            # heaviest pending shard first (queue order preserves the
            # partitioner's dispatch order; reclaimed shards rejoin at
            # the back)
            while self._queue:
                state = self._shards[self._queue.pop(0)]
                if state.status != "pending":
                    continue
                now = self._clock()
                state.status = "leased"
                state.worker = worker
                state.claimed_at = now
                state.expiry = now + self.lease
                self.bus.emit(ShardClaimed(
                    shard_id=state.shard.id, worker=worker,
                    n_tasks=state.shard.n_tasks,
                    weight=state.shard.weight,
                    retries=state.retries))
                return {"shard": ShardLease.from_shard(
                    state.shard, self.lease,
                    retries=state.retries).to_dict(),
                    "done": False}
            return {"shard": None, "done": self._done.is_set(),
                    "retry_after": RETRY_AFTER}

    def report(self, worker: str, shard_id: str,
               entries: Sequence[ReportEntry]) -> Dict:
        with self._lock:
            self._workers_seen.add(worker)
            state = self._shards.get(shard_id)
            if state is None:
                raise ProtocolError(f"unknown shard {shard_id!r}")
            if state.status == "done":
                self.bus.emit(ShardCompleted(
                    shard_id=shard_id, worker=worker,
                    n_tasks=state.shard.n_tasks,
                    weight=state.shard.weight, duplicate=True))
                return {"accepted": True, "duplicate": True}

            by_id = {e.task_id: e for e in entries}
            missing = [task_id for task_id in state.shard.task_ids
                       if task_id not in by_id and
                       task_id not in self._results]
            if missing:
                # a partial report is a failed report: requeue whole
                if state.status == "leased":
                    state.status = "pending"
                    state.worker = None
                    state.retries += 1
                    self._queue.append(shard_id)
                return {"accepted": False, "duplicate": False,
                        "missing": missing}

            tasks = self._prepared.tasks_by_id
            merged = 0
            for task_id in state.shard.task_ids:
                if task_id in self._results:
                    continue
                entry = by_id[task_id]
                task = tasks[task_id]
                record = replace(entry.record,
                                 count=task.fault_class.count)
                source = entry.source if entry.source == "cache" \
                    else "remote"
                self._complete(task, record, source, wall=entry.wall,
                               error=entry.error if entry.degraded
                               else None)
                merged += 1
            wall = self._clock() - state.claimed_at \
                if state.claimed_at else 0.0
            state.status = "done"
            state.worker = None
            self.bus.emit(ShardCompleted(
                shard_id=shard_id, worker=worker, n_tasks=merged,
                weight=state.shard.weight, wall=wall))
            self._check_done()
            return {"accepted": True, "duplicate": False}

    def heartbeat(self, worker: str, shard_id: str) -> Dict:
        with self._lock:
            self._reclaim_expired()
            state = self._shards.get(shard_id)
            if state is None:
                raise ProtocolError(f"unknown shard {shard_id!r}")
            if state.status == "done":
                return {"ok": False, "done": True}
            if state.status == "leased" and state.worker == worker:
                state.expiry = self._clock() + self.lease
                return {"ok": True, "lease": self.lease}
            return {"ok": False, "reclaimed": True}

    def health(self) -> Dict:
        with self._lock:
            counts = {"pending": 0, "leased": 0, "done": 0}
            for state in self._shards.values():
                counts[state.status] += 1
            return {
                "status": "ok",
                "fingerprint": self._prepared.fingerprint
                if self._prepared else "",
                "shards": counts,
                "workers": sorted(self._workers_seen),
                "done": self._done.is_set(),
            }

    def metrics(self) -> Dict:
        jobs = max(1, len(self._workers_seen))
        return {
            "campaign": self.collector.snapshot(jobs=jobs).as_dict(),
            "distributed": self.distributed.snapshot().as_dict(),
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator is not serving")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> str:
        """Plan the campaign and start serving; returns the URL."""
        self.prepare()
        if self._server is None:
            self._server = CoordinatorServer((self.host, self.port),
                                             self)
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="campaign-coordinator", daemon=True)
            self._server_thread.start()
        return self.url

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
                self._server_thread = None

    def wait(self, timeout: Optional[float] = None) -> CampaignResult:
        """Block until every shard is merged, then assemble.

        Raises :class:`TimeoutError` if the campaign has not finished
        within ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"distributed campaign incomplete after {timeout}s "
                f"({self.health()['shards']})")
        with self._lock:
            prepared = self._prepared
            try:
                analyses = self.runner._assemble(
                    prepared.wanted, prepared.plans, self._results)
            finally:
                if self._journal is not None:
                    self._journal.close()
        metrics = self.collector.snapshot(
            jobs=max(1, len(self._workers_seen)))
        self.bus.emit(CampaignFinished(metrics=metrics))
        return CampaignResult(
            path_result=PathResult(config=self.config,
                                   macros=analyses),
            metrics=metrics, fingerprint=prepared.fingerprint)

    def run(self, workers: int = 0, worker_mode: str = "process",
            worker_jobs: int = 1,
            timeout: Optional[float] = None) -> CampaignResult:
        """Localhost multi-worker mode: serve, spawn, wait, stop.

        With ``workers=0`` the coordinator only serves — point
        external ``python -m repro worker <url>`` processes at it.
        """
        from .worker import LocalWorkerPool
        url = self.start()
        pool = None
        if workers > 0:
            pool = LocalWorkerPool(
                url, workers, mode=worker_mode, jobs=worker_jobs,
                cache_dir=self.options.resolved_cache_dir())
            pool.start()
        try:
            return self.wait(timeout)
        finally:
            if pool is not None:
                pool.join(timeout=10.0)
            self.stop()


class CoordinatorServer(ThreadingHTTPServer):
    """HTTP fan-in bound to one :class:`Coordinator`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 coordinator: Coordinator) -> None:
        super().__init__(address, _Handler)
        self.coordinator = coordinator


class _Handler(BaseHTTPRequestHandler):
    server: CoordinatorServer

    #: quiet by default; the CLI flips this on with --verbose
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 — stdlib contract
        coordinator = self.server.coordinator
        if self.path == "/health":
            self._reply(200, coordinator.health())
        elif self.path == "/metrics":
            self._reply(200, coordinator.metrics())
        elif self.path == "/campaign":
            self._reply(200, coordinator.descriptor().to_dict())
        else:
            # same JSON error envelope as the diagnosis service:
            # {"error": {"code", "message"}}
            self._reply(404, error_envelope(
                "not_found", f"unknown path {self.path!r}"))

    def do_POST(self) -> None:  # noqa: N802 — stdlib contract
        coordinator = self.server.coordinator
        try:
            if self.path == "/claim":
                payload = self._body()
                worker = str(payload.get("worker") or "")
                if not worker:
                    raise ProtocolError("'worker' is required")
                self._reply(200, coordinator.claim(worker))
            elif self.path == "/report":
                payload = self._body()
                worker = str(payload.get("worker") or "")
                shard = str(payload.get("shard_id") or "")
                if not worker or not shard:
                    raise ProtocolError(
                        "'worker' and 'shard_id' are required")
                entries = decode_entries(payload)
                self._reply(200, coordinator.report(worker, shard,
                                                    entries))
            elif self.path == "/heartbeat":
                payload = self._body()
                worker = str(payload.get("worker") or "")
                shard = str(payload.get("shard_id") or "")
                if not worker or not shard:
                    raise ProtocolError(
                        "'worker' and 'shard_id' are required")
                self._reply(200, coordinator.heartbeat(worker, shard))
            else:
                self._reply(404, error_envelope(
                    "not_found", f"unknown path {self.path!r}"))
        except ProtocolError as exc:
            self._reply(400, error_envelope("bad_request", str(exc)))
