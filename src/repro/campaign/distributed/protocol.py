"""Wire format of the coordinator/worker protocol.

Plain JSON over stdlib HTTP, mirroring the diagnosis server's style:
typed payload classes with ``to_dict`` / ``from_dict``, strict
decoding (a malformed payload raises :class:`ProtocolError`, which
the HTTP layer maps to 400), and an explicit
:data:`PROTOCOL_VERSION` so incompatible coordinator/worker pairs
fail loudly instead of corrupting a campaign.

Nothing in the protocol carries a worker-side timestamp: all lease
and heartbeat timing lives on the coordinator's monotonic clock, so
worker clock skew cannot expire (or immortalise) a lease.

Endpoints (see :mod:`~repro.campaign.distributed.coordinator`):

* ``GET /campaign`` — the :class:`CampaignDescriptor`: everything a
  worker needs to rebuild the identical task list (config, macros,
  store version) plus the fingerprint it must reproduce.
* ``POST /claim`` — body ``{"worker": id}``; answers a
  :class:`ShardLease` under ``"shard"`` (or ``null`` with ``"done"``
  / ``"retry_after"`` when nothing is claimable right now).
* ``POST /report`` — body ``{"worker", "shard_id", "entries":
  [ReportEntry...]}``; idempotent per shard.
* ``POST /heartbeat`` — body ``{"worker", "shard_id"}``; extends the
  lease from the coordinator's clock.
* ``GET /health`` / ``GET /metrics`` — liveness and the aggregated
  dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.path import PathConfig
from ...core.serialize import (SerializeError, record_from_dict,
                               record_to_dict)
from ...macrotest.coverage import DetectionRecord
from .partition import Shard

#: bump on any incompatible change to the wire format
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or incompatible protocol payload (HTTP 400)."""


def _require(data: Dict, key: str):
    if not isinstance(data, dict) or key not in data:
        raise ProtocolError(f"payload is missing {key!r}")
    return data[key]


@dataclass(frozen=True)
class CampaignDescriptor:
    """What a worker needs to join a campaign.

    Attributes:
        fingerprint: the coordinator's campaign fingerprint; a worker
            that plans a different one (code or config drift) must
            refuse to claim.
        config: the :class:`~repro.core.path.PathConfig` knobs, in
            ``to_dict`` form.
        macros: validated macro list the coordinator planned.
        store_version: results-store version tag (content keys match
            only when this matches).
        lease: shard lease duration in seconds.
        protocol: wire-format version.
    """

    fingerprint: str
    config: Dict
    macros: Tuple[str, ...]
    store_version: str
    lease: float
    protocol: int = PROTOCOL_VERSION

    def to_dict(self) -> Dict:
        return {
            "protocol": self.protocol,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "macros": list(self.macros),
            "store_version": self.store_version,
            "lease": self.lease,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignDescriptor":
        protocol = _require(data, "protocol")
        if protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {protocol!r} != "
                f"{PROTOCOL_VERSION} (coordinator and worker are "
                f"running different code)")
        config = _require(data, "config")
        if not isinstance(config, dict):
            raise ProtocolError("'config' must be an object")
        try:
            PathConfig.from_dict(config)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad campaign config: {exc}") from exc
        macros = _require(data, "macros")
        if not isinstance(macros, list) or \
                not all(isinstance(m, str) for m in macros):
            raise ProtocolError("'macros' must be a list of names")
        return cls(fingerprint=str(_require(data, "fingerprint")),
                   config=config, macros=tuple(macros),
                   store_version=str(_require(data, "store_version")),
                   lease=float(_require(data, "lease")),
                   protocol=int(protocol))

    def path_config(self) -> PathConfig:
        return PathConfig.from_dict(self.config)


@dataclass(frozen=True)
class ShardLease:
    """One leased shard as it crosses the wire.

    Attributes:
        shard_id: the shard's content key.
        index: dispatch position (heaviest shard first).
        task_ids: member task ids (the worker selects these out of
            its own re-planned task list).
        weight: summed class magnitudes.
        lease: lease duration in seconds (heartbeat before it runs
            out).
        retries: how many leases on this shard expired before this
            one.
    """

    shard_id: str
    index: int
    task_ids: Tuple[str, ...]
    weight: int
    lease: float
    retries: int = 0

    def to_dict(self) -> Dict:
        return {
            "shard_id": self.shard_id,
            "index": self.index,
            "task_ids": list(self.task_ids),
            "weight": self.weight,
            "lease": self.lease,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardLease":
        task_ids = _require(data, "task_ids")
        if not isinstance(task_ids, list) or not task_ids or \
                not all(isinstance(t, str) for t in task_ids):
            raise ProtocolError(
                "'task_ids' must be a non-empty list of ids")
        return cls(shard_id=str(_require(data, "shard_id")),
                   index=int(data.get("index", 0)),
                   task_ids=tuple(task_ids),
                   weight=int(data.get("weight", 0)),
                   lease=float(data.get("lease", 0.0)),
                   retries=int(data.get("retries", 0)))

    @classmethod
    def from_shard(cls, shard: Shard, lease: float,
                   retries: int = 0) -> "ShardLease":
        return cls(shard_id=shard.id, index=shard.index,
                   task_ids=shard.task_ids, weight=shard.weight,
                   lease=lease, retries=retries)


@dataclass(frozen=True)
class ReportEntry:
    """One completed fault class inside a ``/report`` body.

    Attributes:
        task_id: the class's campaign task id.
        record: the detection record.
        degraded: the class exhausted its retries on the worker and
            carries a pessimistic record.
        error: the attached error text for degraded entries.
        wall: worker-side simulation seconds (informational — never
            used for lease timing).
        source: ``"remote"`` (computed on the worker) or ``"cache"``
            (served from the worker's store).
    """

    task_id: str
    record: DetectionRecord
    degraded: bool = False
    error: Optional[str] = None
    wall: float = 0.0
    source: str = "remote"

    def to_dict(self) -> Dict:
        return {
            "task_id": self.task_id,
            "record": record_to_dict(self.record),
            "degraded": self.degraded,
            "error": self.error,
            "wall": self.wall,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ReportEntry":
        try:
            record = record_from_dict(_require(data, "record"))
        except (SerializeError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"bad record for task "
                f"{data.get('task_id')!r}: {exc}") from exc
        error = data.get("error")
        return cls(task_id=str(_require(data, "task_id")),
                   record=record,
                   degraded=bool(data.get("degraded", False)),
                   error=str(error) if error is not None else None,
                   wall=float(data.get("wall", 0.0)),
                   source=str(data.get("source", "remote")))


def decode_entries(data: Dict) -> List[ReportEntry]:
    """Decode a ``/report`` body's entry list, strictly."""
    entries = _require(data, "entries")
    if not isinstance(entries, list):
        raise ProtocolError("'entries' must be a list")
    return [ReportEntry.from_dict(entry) for entry in entries]
