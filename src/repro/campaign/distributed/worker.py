"""The campaign worker: claim, simulate, report, repeat.

A worker joins a campaign knowing only the coordinator's URL.  It
downloads the :class:`~.protocol.CampaignDescriptor`, re-plans the
campaign locally from the shipped config through the unchanged
:class:`~repro.campaign.runner.CampaignRunner` and refuses to claim
anything unless its own fingerprint reproduces the coordinator's —
config or code drift between hosts fails loudly before any
simulation runs.

Each leased shard then runs through ``CampaignRunner.execute`` —
the exact retry/degrade machinery of a single-host campaign — with
store cache hits resolved first, an optional local shard journal for
crash safety (compacted before the results ship), and a heartbeat
thread extending the lease at a third of its duration.  Reports are
sent even when the lease was lost meanwhile: ``/report`` is
idempotent, so a late result is acknowledged and dropped rather than
double-merged.

Timing discipline: the worker never sends a timestamp.  Lease expiry
lives entirely on the coordinator's monotonic clock, so worker clock
skew cannot corrupt the lease protocol.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..journal import CampaignJournal, JournalEntry
from ..runner import CampaignOptions, CampaignRunner, PreparedCampaign
from ..tasks import ClassTask
from .protocol import (CampaignDescriptor, ProtocolError, ReportEntry,
                       ShardLease)

#: connect/read timeout for protocol calls, seconds
HTTP_TIMEOUT = 30.0

#: transient-error retries per protocol call
HTTP_RETRIES = 3

#: fallback poll interval when the coordinator has nothing claimable
#: and suggests no retry_after
POLL_INTERVAL = 0.2

_worker_serial = itertools.count(1)


class WorkerError(RuntimeError):
    """The worker cannot (or must not) continue this campaign."""


def default_worker_id() -> str:
    """Host- and process-unique worker id (threads get a serial)."""
    return (f"{socket.gethostname()}-{os.getpid()}"
            f"-{next(_worker_serial)}")


def _http_json(url: str, payload: Optional[Dict] = None,
               timeout: float = HTTP_TIMEOUT,
               retries: int = HTTP_RETRIES) -> Dict:
    """One JSON round trip with transient-error retries.

    4xx answers raise :class:`WorkerError` immediately (the request
    is wrong; retrying cannot fix it); connection failures and 5xx
    back off and retry.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    last_error: Optional[str] = None
    for attempt in range(1 + max(0, retries)):
        if attempt:
            time.sleep(min(2.0, 0.2 * (2 ** (attempt - 1))))
        request = urllib.request.Request(url, data=data,
                                         headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = ""
            try:
                body = exc.read().decode("utf-8", "replace")
            except OSError:
                pass
            if 400 <= exc.code < 500:
                raise WorkerError(
                    f"{url} answered {exc.code}: {body}") from exc
            last_error = f"{url} answered {exc.code}: {body}"
        except (urllib.error.URLError, OSError,
                json.JSONDecodeError) as exc:
            last_error = f"{url} failed: {exc}"
    raise WorkerError(last_error or f"{url} failed")


class Worker:
    """One worker process/thread bound to one coordinator.

    Args:
        url: coordinator base URL (``http://host:port``).
        worker_id: stable id used in leases and the dashboard;
            generated when omitted.
        jobs: process-pool width for each shard's execution (1 =
            in-process serial, the localhost-pool default).
        cache_dir: optional local cache root; enables the worker-side
            results store (cache hits are reported with source
            ``"cache"``) and the per-shard crash-safety journal.
        bus: optional event bus for worker-side reporting.
    """

    def __init__(self, url: str, worker_id: Optional[str] = None,
                 jobs: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None,
                 bus=None) -> None:
        self.url = url.rstrip("/")
        self.worker_id = worker_id or default_worker_id()
        self.jobs = max(1, jobs)
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else None
        self.bus = bus
        self.descriptor: Optional[CampaignDescriptor] = None
        self.prepared: Optional[PreparedCampaign] = None
        self.runner: Optional[CampaignRunner] = None
        self.stats = {"shards": 0, "tasks": 0, "computed": 0,
                      "cached": 0, "degraded": 0}

    # -- joining -----------------------------------------------------------

    def join_campaign(self) -> CampaignDescriptor:
        """Fetch the descriptor, re-plan, verify the fingerprint.

        Idempotent; called implicitly by :meth:`run`.
        """
        if self.descriptor is not None:
            return self.descriptor
        try:
            descriptor = CampaignDescriptor.from_dict(
                _http_json(f"{self.url}/campaign"))
        except ProtocolError as exc:
            raise WorkerError(f"bad campaign descriptor: {exc}") \
                from exc
        options = CampaignOptions(
            jobs=self.jobs, cache_dir=self.cache_dir, resume=False,
            store_version=descriptor.store_version)
        self.runner = CampaignRunner(descriptor.path_config(),
                                     options, bus=self.bus)
        self.prepared = self.runner.prepare(descriptor.macros,
                                            jobs=self.jobs)
        if self.prepared.fingerprint != descriptor.fingerprint:
            raise WorkerError(
                f"fingerprint mismatch: coordinator campaign "
                f"{descriptor.fingerprint[:16]} != local plan "
                f"{self.prepared.fingerprint[:16]} (config or code "
                f"drift between hosts; refusing to simulate)")
        self.descriptor = descriptor
        return descriptor

    # -- shard execution ---------------------------------------------------

    def _shard_tasks(self, lease: ShardLease) -> List[ClassTask]:
        tasks_by_id = self.prepared.tasks_by_id
        missing = [t for t in lease.task_ids if t not in tasks_by_id]
        if missing:
            # impossible after the fingerprint check, so treat it as
            # the drift it would be
            raise WorkerError(
                f"lease {lease.shard_id[:16]} names unknown tasks "
                f"{missing[:3]}")
        return [tasks_by_id[t] for t in lease.task_ids]

    def _shard_journal(self, lease: ShardLease
                       ) -> Optional[CampaignJournal]:
        if self.cache_dir is None:
            return None
        return CampaignJournal(
            self.cache_dir / "journals" /
            f"shard-{lease.shard_id[:16]}.jsonl")

    def execute_shard(self, lease: ShardLease) -> List[ReportEntry]:
        """Run one shard through the single-host execution machinery.

        Resolution order mirrors the runner: local shard journal (a
        crashed predecessor's partial work), then the results store,
        then simulation via ``CampaignRunner.execute`` (retry and
        degrade semantics included).  Every completion is journaled
        immediately, so a worker killed mid-shard loses only the
        class in flight.
        """
        tasks = self._shard_tasks(lease)
        fingerprint = self.descriptor.fingerprint
        journal = self._shard_journal(lease)
        adopted: Dict[str, JournalEntry] = {}
        if journal is not None:
            entries = journal.load(fingerprint)
            adopted = {t.task_id: entries[t.task_id] for t in tasks
                       if t.task_id in entries}
            journal.open(fingerprint, fresh=not adopted)

        collected: Dict[str, ReportEntry] = {}

        def complete(task: ClassTask, record, source: str,
                     wall: float = 0.0,
                     error: Optional[str] = None,
                     retried: bool = False) -> None:
            degraded = error is not None
            entry = ReportEntry(
                task_id=task.task_id, record=record,
                degraded=degraded, error=error, wall=wall,
                source="cache" if source == "cache" else "remote")
            collected[task.task_id] = entry
            self.stats["tasks"] += 1
            self.stats["degraded"] += degraded
            if source == "cache":
                self.stats["cached"] += 1
            elif source == "computed":
                self.stats["computed"] += 1
            if journal is not None and source != "journal":
                journal.append(JournalEntry(
                    task_id=task.task_id, record=record,
                    degraded=degraded, error=error, source=source))
            store = self.prepared.store
            if store is not None and source == "computed" and \
                    not degraded:
                store.put(task.store_key, record,
                          meta={"task_id": task.task_id,
                                "macro": task.macro,
                                "worker": self.worker_id})

        try:
            to_run: List[ClassTask] = []
            for task in tasks:
                entry = adopted.get(task.task_id)
                if entry is not None:
                    record = replace(entry.record,
                                     count=task.fault_class.count)
                    complete(task, record, "journal",
                             error=entry.error
                             if entry.degraded else None)
                    continue
                store = self.prepared.store
                if store is not None:
                    cached = store.get(task.store_key,
                                       count=task.fault_class.count)
                    if cached is not None:
                        complete(task, cached, "cache")
                        continue
                to_run.append(task)
            self.runner.execute(to_run, complete, jobs=self.jobs,
                                baselines=self.prepared.baselines)
            if journal is not None:
                # dedup retried classes so the shipped report and any
                # crash-recovery adoption read one line per class
                journal.compact()
        finally:
            if journal is not None:
                journal.close()
        return [collected[t.task_id] for t in tasks]

    # -- protocol loop -----------------------------------------------------

    def _claim(self) -> Dict:
        return _http_json(f"{self.url}/claim",
                          {"worker": self.worker_id})

    def _report(self, lease: ShardLease,
                entries: Sequence[ReportEntry]) -> Dict:
        return _http_json(
            f"{self.url}/report",
            {"worker": self.worker_id, "shard_id": lease.shard_id,
             "entries": [e.to_dict() for e in entries]})

    def _heartbeat_loop(self, lease: ShardLease,
                        stop: threading.Event) -> None:
        interval = max(0.05, (lease.lease or
                              self.descriptor.lease) / 3.0)
        while not stop.wait(interval):
            try:
                answer = _http_json(
                    f"{self.url}/heartbeat",
                    {"worker": self.worker_id,
                     "shard_id": lease.shard_id}, retries=0)
            except WorkerError:
                continue  # transient; the lease may still be alive
            if not answer.get("ok"):
                # reclaimed or already done — keep simulating and
                # report anyway (idempotent), but stop heartbeating
                return

    def run_shard(self, lease: ShardLease) -> Dict:
        """Execute one lease end to end and report it."""
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(lease, stop),
            name=f"heartbeat-{lease.shard_id[:8]}", daemon=True)
        heartbeat.start()
        try:
            entries = self.execute_shard(lease)
        finally:
            stop.set()
        heartbeat.join(timeout=1.0)
        answer = self._report(lease, entries)
        if not answer.get("accepted"):
            raise WorkerError(
                f"coordinator rejected shard "
                f"{lease.shard_id[:16]}: {answer}")
        self.stats["shards"] += 1
        if journal := self._shard_journal(lease):
            # the merge is durable on the coordinator; drop the local
            # crash-safety journal
            try:
                journal.path.unlink()
            except OSError:
                pass
        return answer

    def run(self) -> Dict:
        """Claim-execute-report until the campaign is done.

        Returns the worker's accounting dict (shards, tasks,
        computed, cached, degraded).
        """
        self.join_campaign()
        while True:
            answer = self._claim()
            shard = answer.get("shard")
            if shard is None:
                if answer.get("done"):
                    return dict(self.stats)
                time.sleep(float(answer.get("retry_after") or
                                 POLL_INTERVAL))
                continue
            try:
                lease = ShardLease.from_dict(shard)
            except ProtocolError as exc:
                raise WorkerError(f"bad lease: {exc}") from exc
            self.run_shard(lease)


def run_worker(url: str, worker_id: Optional[str] = None,
               jobs: int = 1,
               cache_dir: Optional[Union[str, Path]] = None) -> Dict:
    """Module-level worker entry point.

    Picklable by design: this is what ``python -m repro worker`` and
    the spawn-based :class:`LocalWorkerPool` both invoke.
    """
    return Worker(url, worker_id=worker_id, jobs=jobs,
                  cache_dir=cache_dir).run()


class LocalWorkerPool:
    """N workers against one coordinator on this host.

    ``mode="process"`` spawns real processes (true parallelism — the
    CI benchmark and ``campaign --coordinator --workers N``);
    ``mode="thread"`` runs workers as threads in this process, which
    is what protocol tests want: monkeypatched simulation stubs stay
    visible and failures surface as ordinary exceptions.
    """

    def __init__(self, url: str, n: int, mode: str = "process",
                 jobs: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None,
                 worker_prefix: str = "worker") -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.url = url
        self.n = max(1, n)
        self.mode = mode
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None \
            else None
        self.worker_prefix = worker_prefix
        self._members: List = []
        self._errors: List[BaseException] = []

    def _thread_main(self, worker_id: str) -> None:
        try:
            run_worker(self.url, worker_id=worker_id, jobs=self.jobs,
                       cache_dir=self.cache_dir)
        except BaseException as exc:  # surfaced by join()
            self._errors.append(exc)

    def start(self) -> None:
        for k in range(self.n):
            worker_id = f"{self.worker_prefix}-{k}"
            if self.mode == "thread":
                member = threading.Thread(
                    target=self._thread_main, args=(worker_id,),
                    name=worker_id, daemon=True)
            else:
                import multiprocessing
                context = multiprocessing.get_context("spawn")
                member = context.Process(
                    target=run_worker, name=worker_id,
                    args=(self.url,),
                    kwargs={"worker_id": worker_id,
                            "jobs": self.jobs,
                            "cache_dir": self.cache_dir},
                    daemon=True)
            self._members.append(member)
            member.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker; re-raise the first thread error."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for member in self._members:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            member.join(remaining)
        if self._errors:
            raise self._errors[0]

    def terminate(self) -> None:
        for member in self._members:
            if hasattr(member, "terminate") and member.is_alive():
                member.terminate()
