"""The work partitioner: campaign tasks -> deterministic shards.

A shard is the distributed campaign's unit of dispatch — a handful of
fault classes leased to one worker as a batch, small enough that
dynamic claiming load-balances across unequal hosts and a lost lease
costs little, large enough that the per-shard HTTP round trip is
noise.

Shards are *content-keyed*: a shard's id is a digest over its member
tasks' (task id, content key) pairs, so the same campaign partitioned
on any host yields the same shards with the same ids — what makes
duplicate reports idempotent and coordinator restarts safe.

Partitioning is likelihood-ordered twice over: tasks are distributed
heaviest-first onto the lightest shard (greedy LPT balancing by class
magnitude), and the resulting shards are dispatched heaviest first,
so the weighted-coverage figure converges early exactly as it does on
a single host.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..plan import likelihood_order
from ..tasks import ClassTask

#: default shard granularity: tasks per shard before balancing.  Small
#: enough that 3 workers see ~2+ shards each on even a toy campaign.
DEFAULT_SHARD_SIZE = 4


def shard_id(tasks: Sequence[ClassTask]) -> str:
    """Content key of one shard: digest over ordered member keys."""
    payload = json.dumps([[t.task_id, t.store_key] for t in tasks],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Shard:
    """One dispatchable batch of fault-class tasks.

    Attributes:
        id: content key (digest over member task ids + store keys).
        index: position in the heaviest-first dispatch order.
        task_ids: member task ids, in within-shard simulation order.
        weight: summed class magnitudes (defect likelihood).
    """

    id: str
    index: int
    task_ids: Tuple[str, ...]
    weight: int

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)


def partition_tasks(tasks: Sequence[ClassTask],
                    shard_size: Optional[int] = None,
                    n_shards: Optional[int] = None) -> List[Shard]:
    """Split tasks into balanced, deterministic, content-keyed shards.

    ``shard_size`` sets the granularity (default
    :data:`DEFAULT_SHARD_SIZE`); ``n_shards`` pins the shard count
    instead.  Tasks are placed heaviest-first onto the currently
    lightest shard (ties broken by shard position, so the layout is
    deterministic), then shards are ordered heaviest first.

    The same task list always partitions identically — shard ids are
    digests of member content keys, so they change exactly when the
    campaign's work changes.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if n_shards is None:
        size = shard_size if shard_size is not None \
            else DEFAULT_SHARD_SIZE
        n_shards = max(1, -(-len(tasks) // max(1, size)))
    n_shards = max(1, min(n_shards, len(tasks)))

    ordered = likelihood_order(tasks)
    buckets: List[List[ClassTask]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for task in ordered:
        lightest = min(range(n_shards),
                       key=lambda k: (loads[k], len(buckets[k]), k))
        buckets[lightest].append(task)
        loads[lightest] += task.fault_class.count

    filled = [(bucket, load) for bucket, load
              in zip(buckets, loads) if bucket]
    filled.sort(key=lambda pair: (-pair[1], pair[0][0].task_id))
    return [Shard(id=shard_id(bucket), index=index,
                  task_ids=tuple(t.task_id for t in bucket),
                  weight=load)
            for index, (bucket, load) in enumerate(filled)]


def shards_by_id(shards: Sequence[Shard]) -> Dict[str, Shard]:
    return {shard.id: shard for shard in shards}
