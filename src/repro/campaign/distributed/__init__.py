"""Distributed campaign fabric: coordinator/worker sharding.

Scales a fault campaign past one host's process pool by splitting the
planned fault classes into deterministic, content-keyed *shards* and
leasing them to workers over a stdlib-HTTP protocol:

* :mod:`~repro.campaign.distributed.partition` — the work
  partitioner: likelihood-ordered, weight-balanced shards whose ids
  are digests of their member content keys;
* :mod:`~repro.campaign.distributed.protocol` — the wire format
  (campaign descriptor, shard lease, report entries) shared by both
  sides;
* :mod:`~repro.campaign.distributed.coordinator` — the
  :class:`~repro.campaign.distributed.coordinator.Coordinator`: plans
  the campaign once, serves ``/claim`` / ``/report`` / ``/heartbeat``
  / ``/health`` / ``/metrics`` / ``/campaign``, reclaims expired
  leases, merges shard results into the crash-safe campaign journal
  and assembles the final :class:`~repro.core.path.PathResult`;
* :mod:`~repro.campaign.distributed.worker` — the
  :class:`~repro.campaign.distributed.worker.Worker` loop: re-plans
  the campaign from the shipped config (verified by fingerprint),
  leases shards, runs them through the unchanged
  :class:`~repro.campaign.runner.CampaignRunner` execution machinery
  and streams per-class results back; plus
  :class:`~repro.campaign.distributed.worker.LocalWorkerPool` for the
  localhost multi-worker mode tests and CI exercise.

The merge contract: a distributed campaign with the same config and
seed produces detection records byte-identical to a single-host run —
results are pure functions of (fault class, engine spec), and the
coordinator assembles them in plan order regardless of which worker
computed what, when, or how many times.

See ``docs/DISTRIBUTED.md`` for the operational guide.
"""

from .coordinator import Coordinator, CoordinatorServer
from .partition import Shard, partition_tasks, shard_id
from .protocol import (PROTOCOL_VERSION, CampaignDescriptor,
                       ProtocolError, ReportEntry, ShardLease)
from .worker import LocalWorkerPool, Worker, WorkerError, run_worker

__all__ = [
    "Coordinator", "CoordinatorServer",
    "Shard", "partition_tasks", "shard_id",
    "PROTOCOL_VERSION", "CampaignDescriptor", "ProtocolError",
    "ReportEntry", "ShardLease",
    "LocalWorkerPool", "Worker", "WorkerError", "run_worker",
]
