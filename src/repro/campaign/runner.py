"""The campaign runner: parallel, resumable fault-class execution.

``CampaignRunner`` turns a :class:`~repro.core.path.PathConfig` into a
:class:`~repro.core.path.PathResult` by

1. planning (serial): class discovery per macro
   (:mod:`repro.campaign.plan`);
2. baselining: each macro's fault-free circuit is computed once (or
   loaded from the store's baseline cache) and shared with every
   worker, so no fault class ever pays for a good-circuit simulation;
3. resolving: already-finished classes are adopted from the resume
   journal, then from the content-addressed results store;
4. dispatching: everything left — ordered most-likely class first, so
   weighted coverage converges early — fans out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``jobs=1`` runs
   in-process, same code path, no pool overhead);
5. recording: every completion is journaled (crash safety), stored
   (re-run economy) and emitted as an event (live metrics).

Failure contract: a class whose simulation raises — including worker
death taking the whole pool down — is retried once, then recorded as a
*degraded* (counted undetected) result with the error attached.  A
campaign finishes; it does not abort.

Results are assembled in plan order, so the output is bit-identical at
any ``jobs`` value and across resumes.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.path import (MacroAnalysis, PathConfig, PathResult)
from ..macrotest.coverage import DetectionRecord, MacroResult
from .events import (CampaignFinished, CampaignStarted, ClassCompleted,
                     EventBus, MacroPlanned, MetricsCollector)
from .journal import CampaignJournal, JournalEntry
from .plan import (ANALOG_MACROS, MacroPlan, comparator_spec,
                   likelihood_order, plan_macro, validate_macros)
from .store import (STORE_VERSION, ResultsStore, baseline_key,
                    content_key)
from .tasks import (ClassTask, TaskOutcome, adopt_baselines,
                    degraded_record, get_engine, run_task)

#: default on-disk location for store + journal when resuming without
#: an explicit --cache-dir
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class CampaignOptions:
    """How a campaign executes (orthogonal to *what* it simulates).

    Attributes:
        jobs: worker processes; None means ``os.cpu_count()``.
        cache_dir: root for the results store and journal; None
            disables both (pure in-memory run).
        resume: adopt finished classes from a matching journal
            instead of re-simulating them.
        retries: extra attempts per failing class before degrading.
        store_version: results-store version tag (bump to invalidate).
    """

    jobs: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    retries: int = 1
    store_version: str = STORE_VERSION

    def resolved_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, self.jobs)
        return max(1, os.cpu_count() or 1)

    def resolved_cache_dir(self) -> Optional[Path]:
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        if self.resume:
            return Path(DEFAULT_CACHE_DIR)
        return None


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: the path result plus its accounting.

    Attributes:
        path_result: the assembled per-macro analyses.
        metrics: campaign accounting snapshot.
        fingerprint: the campaign identity digest (see
            :meth:`CampaignRunner.fingerprint`) — what dictionary
            builds key their store blobs by.  Empty for results not
            produced by a runner.
    """

    path_result: PathResult
    metrics: "object"  # CampaignMetrics (kept loose for serialization)
    fingerprint: str = ""


@dataclass
class _Pending:
    task: ClassTask
    attempts: int = 0
    first_error: Optional[str] = None


@dataclass
class PreparedCampaign:
    """A planned campaign, ready to dispatch (or to shard).

    Everything :meth:`CampaignRunner.run` needs before execution, and
    everything the distributed coordinator/worker pair needs to agree
    on the same work: the validated macro list, per-macro plans, the
    ordered task list, the campaign fingerprint, the (optional) store
    and the resolved good-circuit baselines.

    Planning is deterministic in the config, so two hosts preparing
    the same config produce the same fingerprint — the distributed
    protocol's consistency check.
    """

    wanted: List[str]
    plans: List[MacroPlan]
    tasks: List[ClassTask]
    fingerprint: str
    store: Optional[ResultsStore]
    baselines: Dict[str, Dict]

    @property
    def tasks_by_id(self) -> Dict[str, ClassTask]:
        return {t.task_id: t for t in self.tasks}


class CampaignRunner:
    """Executes a campaign described by a PathConfig."""

    def __init__(self, config: Optional[PathConfig] = None,
                 options: Optional[CampaignOptions] = None,
                 bus: Optional[EventBus] = None) -> None:
        self.config = config or PathConfig()
        self.options = options or CampaignOptions()
        self.bus = bus or EventBus()
        self.collector = MetricsCollector()
        self.bus.subscribe(self.collector)

    # -- plan / identity ---------------------------------------------------

    def _plan(self, wanted: Sequence[str]) -> List[MacroPlan]:
        plans = []
        for name in wanted:
            if name not in ANALOG_MACROS:
                continue
            plan = plan_macro(name, self.config)
            plans.append(plan)
            self.bus.emit(MacroPlanned(
                macro=name, n_classes=len(plan.classes),
                n_noncat=len(plan.noncat_classes)))
        return plans

    def _tasks(self, plans: Sequence[MacroPlan]) -> List[ClassTask]:
        tasks = []
        for plan in plans:
            for kind, classes in (("cat", plan.classes),
                                  ("noncat", plan.noncat_classes)):
                for index, fc in enumerate(classes):
                    key = content_key(
                        fc, plan.spec,
                        version=self.options.store_version)
                    tasks.append(ClassTask(
                        task_id=f"{plan.name}:{kind}:{index}",
                        macro=plan.name, kind=kind, index=index,
                        fault_class=fc, spec=plan.spec,
                        store_key=key))
        return tasks

    @staticmethod
    def fingerprint(tasks: Sequence[ClassTask]) -> str:
        """Campaign identity: digest over the ordered task keys.

        Two campaigns share a fingerprint exactly when they would
        simulate the same classes against the same engines with the
        same code version — the resume-safety criterion.
        """
        payload = json.dumps([[t.task_id, t.store_key] for t in tasks],
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- baselines ---------------------------------------------------------

    def _preload_comparator_baseline(
            self, store: Optional[ResultsStore]) -> Dict[str, Dict]:
        """Adopt a stored comparator baseline before planning runs.

        Planning derives the chip IVdd window from the comparator good
        space, so a cache hit here saves that corner sweep too.  With
        ``--cold-start`` (``config.warm_start`` False) nothing is
        reused and every good circuit is re-simulated.
        """
        if store is None or not self.config.warm_start:
            return {}
        spec = comparator_spec(self.config)
        payload = store.get_blob(
            baseline_key(spec, version=self.options.store_version))
        if payload is None:
            # undo the miss: _resolve_baselines will compute and
            # account for it once the plan exists
            store.baseline_misses -= 1
            return {}
        # registry keys use the default-version digest — what
        # get_engine computes when it looks a spec's baseline up
        baselines = {baseline_key(spec): payload}
        adopt_baselines(baselines)
        return baselines

    def _resolve_baselines(self, plans: Sequence[MacroPlan],
                           store: Optional[ResultsStore],
                           found: Dict[str, Dict]) -> Dict[str, Dict]:
        """Load-or-compute every planned macro's good-circuit baseline.

        Computed baselines are persisted as store blobs (keyed by the
        normalised spec) so ``--resume`` and repeat campaigns start
        warm; all of them are adopted into this process's engine
        registry and later shipped to pool workers.  Disabled by
        ``--cold-start``.
        """
        if not self.config.warm_start:
            return {}
        baselines = dict(found)
        computed = 0
        for plan in plans:
            reg_key = baseline_key(plan.spec)
            if reg_key in baselines:
                continue
            key = baseline_key(plan.spec,
                               version=self.options.store_version)
            payload = store.get_blob(key) if store is not None else None
            if payload is None:
                payload = get_engine(plan.spec).export_baseline() \
                    .to_dict()
                computed += 1
                if store is not None:
                    store.put_blob(key, payload)
            baselines[reg_key] = payload
        hits = store.baseline_hits if store is not None else 0
        misses = (store.baseline_misses if store is not None
                  else computed)
        self.collector.add_baseline_counts(hits, misses)
        adopt_baselines(baselines)
        return baselines

    # -- execution ---------------------------------------------------------

    def prepare(self, macros: Optional[Sequence[str]] = None,
                jobs: Optional[int] = None) -> PreparedCampaign:
        """Plan the campaign without executing anything.

        The serial front half of :meth:`run` — validation, store
        construction, baseline adoption, per-macro planning, task
        derivation, fingerprinting — packaged so the distributed
        coordinator (to shard the task list) and workers (to rebuild
        the identical task list from the shipped config) share it with
        the single-host path.
        """
        wanted = validate_macros(macros)
        if jobs is None:
            jobs = self.options.resolved_jobs()
        cache_dir = self.options.resolved_cache_dir()

        store: Optional[ResultsStore] = None
        if cache_dir is not None:
            store = ResultsStore(cache_dir,
                                 version=self.options.store_version)

        # a stored comparator baseline saves the good-space sweep that
        # planning itself triggers (the ladder / biasgen IVdd window is
        # derived from it), so it is adopted before planning starts
        baselines = self._preload_comparator_baseline(store)

        plans = self._plan(wanted)
        # in-process serial runs without a store gain nothing from the
        # baseline stage (the engine cache already computes each good
        # circuit once), so only pools and stored campaigns pay for it
        if store is not None or jobs > 1:
            baselines = self._resolve_baselines(plans, store, baselines)
        tasks = self._tasks(plans)
        return PreparedCampaign(
            wanted=wanted, plans=plans, tasks=tasks,
            fingerprint=self.fingerprint(tasks), store=store,
            baselines=baselines)

    def run(self, macros: Optional[Sequence[str]] = None
            ) -> CampaignResult:
        jobs = self.options.resolved_jobs()
        cache_dir = self.options.resolved_cache_dir()
        prepared = self.prepare(macros, jobs=jobs)
        wanted, plans = prepared.wanted, prepared.plans
        tasks, store = prepared.tasks, prepared.store
        baselines, fingerprint = prepared.baselines, \
            prepared.fingerprint

        journal: Optional[CampaignJournal] = None
        if cache_dir is not None:
            # one journal per campaign identity: concurrent or
            # back-to-back campaigns with different configs sharing a
            # cache dir never clobber each other's checkpoints
            journal = CampaignJournal(
                Path(cache_dir) / "journals" /
                f"{fingerprint[:16]}.jsonl")

        results: Dict[str, DetectionRecord] = {}
        degraded: Dict[str, str] = {}

        # 1. resume from the journal
        adopted: Dict[str, JournalEntry] = {}
        if journal is not None and self.options.resume:
            entries = journal.load(fingerprint)
            for task in tasks:
                entry = entries.get(task.task_id)
                if entry is not None:
                    adopted[task.task_id] = entry
        if journal is not None:
            journal.open(fingerprint,
                         fresh=not (self.options.resume and adopted))

        self.bus.emit(CampaignStarted(
            macros=tuple(p.name for p in plans) +
            (("decoder",) if "decoder" in wanted else ()),
            total_tasks=len(tasks), jobs=jobs, resumed=len(adopted),
            total_weight=sum(t.fault_class.count for t in tasks)))

        done = 0
        total = len(tasks)

        def complete(task: ClassTask, record: DetectionRecord,
                     source: str, wall: float = 0.0,
                     error: Optional[str] = None,
                     retried: bool = False) -> None:
            nonlocal done
            done += 1
            results[task.task_id] = record
            is_degraded = error is not None
            if is_degraded:
                degraded[task.task_id] = error
            if journal is not None and source != "journal":
                journal.append(JournalEntry(
                    task_id=task.task_id, record=record,
                    degraded=is_degraded, error=error, source=source))
            if store is not None and source == "computed" and \
                    not is_degraded:
                store.put(task.store_key, record,
                          meta={"task_id": task.task_id,
                                "macro": task.macro})
            self.bus.emit(ClassCompleted(
                macro=task.macro, kind=task.kind, index=task.index,
                source=source, wall=wall, degraded=is_degraded,
                error=error, retried=retried, done=done, total=total,
                weight=task.fault_class.count))

        # 2. resolve journal + store before dispatching
        to_run: List[_Pending] = []
        for task in tasks:
            entry = adopted.get(task.task_id)
            if entry is not None:
                record = replace(entry.record,
                                 count=task.fault_class.count)
                complete(task, record, "journal", error=entry.error
                         if entry.degraded else None)
                continue
            if store is not None:
                cached = store.get(task.store_key,
                                   count=task.fault_class.count)
                if cached is not None:
                    complete(task, cached, "cache")
                    continue
            to_run.append(_Pending(task=task))

        # 3. dispatch, most-likely class first (results are assembled
        # by task id, so ordering never changes the output)
        try:
            self.execute([p.task for p in to_run], complete,
                         jobs=jobs, baselines=baselines)
            # 4. decoder runs whole in the parent (one logic pass)
            analyses = self._assemble(wanted, plans, results)
        finally:
            if journal is not None:
                journal.close()

        metrics = self.collector.snapshot(jobs=jobs)
        self.bus.emit(CampaignFinished(metrics=metrics))
        return CampaignResult(
            path_result=PathResult(config=self.config, macros=analyses),
            metrics=metrics, fingerprint=fingerprint)

    def execute(self, tasks: Sequence[ClassTask], complete,
                jobs: Optional[int] = None,
                baselines: Optional[Dict[str, Dict]] = None) -> None:
        """Run tasks through the retry/degrade contract.

        The execution back half shared by :meth:`run` and the
        distributed worker: tasks are dispatched most-likely class
        first (serial in-process at ``jobs=1``, over a process pool
        otherwise) and every completion — simulated, retried or
        degraded — is delivered through ``complete(task, record,
        source, wall=..., error=..., retried=...)``.
        """
        if not tasks:
            return
        if jobs is None:
            jobs = self.options.resolved_jobs()
        to_run = [_Pending(task=t)
                  for t in likelihood_order(list(tasks))]
        if jobs == 1:
            self._run_serial(to_run, complete)
        else:
            self._run_pool(to_run, complete, jobs, baselines)

    def _handle_outcome(self, pending: _Pending, outcome: TaskOutcome,
                        complete) -> bool:
        """Process one attempt; returns True when the task is done."""
        pending.attempts += 1
        if outcome.convergence_failure:
            self.collector.add_convergence_failures(1)
        if outcome.solver_phases:
            self.collector.add_solver_timings(outcome.solver_phases)
        if outcome.ok:
            complete(pending.task, outcome.record, "computed",
                     wall=outcome.wall,
                     retried=pending.attempts > 1)
            return True
        pending.first_error = pending.first_error or outcome.error
        if pending.attempts > self.options.retries:
            complete(pending.task,
                     degraded_record(pending.task.fault_class),
                     "computed", wall=outcome.wall,
                     error=outcome.error or pending.first_error,
                     retried=pending.attempts > 1)
            return True
        return False

    def _run_serial(self, to_run: List[_Pending], complete) -> None:
        for pending in to_run:
            while True:
                outcome = run_task(pending.task)
                if self._handle_outcome(pending, outcome, complete):
                    break

    def _run_pool(self, to_run: List[_Pending], complete,
                  jobs: int,
                  baselines: Optional[Dict[str, Dict]] = None) -> None:
        """Fan out over a process pool, surviving worker death.

        Every worker is initialised with the campaign's macro
        baselines, so engines built in workers adopt the fault-free
        results instead of re-simulating them (works under spawn as
        well as fork).

        A ``BrokenProcessPool`` (a worker was OOM-killed or segfaulted)
        charges an attempt to every in-flight task and restarts the
        pool; tasks that exhaust their retries degrade as usual.
        """
        remaining = {p.task.task_id: p for p in to_run}
        pool_restarts = 0
        while remaining:
            executor = ProcessPoolExecutor(
                max_workers=jobs, initializer=adopt_baselines,
                initargs=(baselines or {},))
            futures: Dict[Future, _Pending] = {
                executor.submit(run_task, p.task): p
                for p in remaining.values()}
            try:
                while futures:
                    finished, _ = wait(list(futures),
                                       return_when=FIRST_COMPLETED)
                    for future in finished:
                        pending = futures.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:  # unpicklable, etc.
                            outcome = TaskOutcome(
                                task_id=pending.task.task_id,
                                error=f"{type(exc).__name__}: {exc}",
                                error_type=type(exc).__name__)
                        if self._handle_outcome(pending, outcome,
                                                complete):
                            remaining.pop(pending.task.task_id, None)
                        else:
                            futures[executor.submit(
                                run_task, pending.task)] = pending
            except BrokenProcessPool:
                pool_restarts += 1
                for pending in futures.values():
                    if self._handle_outcome(
                            pending,
                            TaskOutcome(task_id=pending.task.task_id,
                                        error="worker process died "
                                              "(broken pool)",
                                        error_type="BrokenProcessPool"),
                            complete):
                        remaining.pop(pending.task.task_id, None)
                executor.shutdown(wait=False, cancel_futures=True)
                if pool_restarts > len(to_run):
                    for pending in list(remaining.values()):
                        complete(pending.task,
                                 degraded_record(pending.task.fault_class),
                                 "computed",
                                 error="process pool kept dying")
                        remaining.pop(pending.task.task_id, None)
                continue
            else:
                executor.shutdown(wait=True)

    # -- assembly ----------------------------------------------------------

    def _assemble(self, wanted: Sequence[str],
                  plans: Sequence[MacroPlan],
                  results: Dict[str, DetectionRecord]
                  ) -> Dict[str, MacroAnalysis]:
        by_name = {p.name: p for p in plans}
        analyses: Dict[str, MacroAnalysis] = {}
        for name in wanted:
            if name == "decoder":
                analyses[name] = self._analyze_decoder()
                continue
            plan = by_name[name]

            def records(kind: str, classes) -> Tuple[DetectionRecord,
                                                     ...]:
                return tuple(results[f"{plan.name}:{kind}:{k}"]
                             for k in range(len(classes)))

            result = MacroResult(
                name=plan.name, bbox_area=plan.bbox_area,
                instances=plan.instances,
                defects_sprinkled=plan.defects_sprinkled,
                records=records("cat", plan.classes))
            noncat_result = None
            if self.config.include_noncat:
                noncat_result = MacroResult(
                    name=plan.name, bbox_area=plan.bbox_area,
                    instances=plan.instances,
                    defects_sprinkled=plan.defects_sprinkled,
                    records=records("noncat", plan.noncat_classes))
            analyses[name] = MacroAnalysis(
                result=result, noncat_result=noncat_result,
                classes=plan.classes)
        return analyses

    def _analyze_decoder(self) -> MacroAnalysis:
        from ..core.path import DefectOrientedTestPath
        return DefectOrientedTestPath(self.config).analyze_decoder()
