"""Pure, picklable per-class simulation tasks.

:func:`simulate_class` is the unit of work a campaign dispatches: one
collapsed fault class plus an :class:`EngineSpec` in, one
:class:`~repro.macrotest.coverage.DetectionRecord` out.  It holds no
references to the planner or runner, so a
``concurrent.futures.ProcessPoolExecutor`` can ship it to worker
processes; the (expensive, good-space-compiling) engines are built
lazily and cached per worker process keyed by their spec.

:func:`run_task` wraps it with the campaign's failure contract: any
exception — a :class:`~repro.circuit.dc.ConvergenceError` escaping an
engine, a bad fault model, a crashed solver — is captured into the
returned :class:`TaskOutcome` instead of propagating, so one sick
class can never take the campaign down.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..adc.process import Process, typical
from ..circuit.batch import clear_kernel_cache
from ..circuit.dc import ConvergenceError
from ..defects.collapse import FaultClass
from ..faultsim.engine import ComparatorFaultEngine, EngineConfig
from ..faultsim.macro_engines import (BiasgenFaultEngine,
                                      ClockgenFaultEngine,
                                      LadderFaultEngine)
from ..macrotest.coverage import DetectionRecord

#: macros whose classes are dispatched as pool tasks (the digital
#: decoder is analysed whole in the parent — it is one cheap logic
#: pass, not thousands of analog transients)
ANALOG_MACROS = ("comparator", "ladder", "biasgen", "clockgen")


@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to rebuild a macro's fault engine anywhere.

    Attributes:
        macro: one of :data:`ANALOG_MACROS`.
        process: corner the faulty instances are evaluated at.
        dft_flipflop: comparator flipflop-redesign DfT variant.
        dynamic_test: run the at-speed missing-code test during
            comparator propagation.
        ivdd_window_halfwidth: chip-level IVdd acceptance half-width
            (ladder / biasgen engines; derived from the comparator
            good space by the planner).
        dt: transient timestep of the comparator / clockgen / biasgen
            engines.
        big_probe: comparator above/below input offset (volts).
        small_probe: comparator offset-detection probe (volts).
        corners: good-space corner set (None: the reduced corners).
        warm_start: seed faulty Newton solves from the good-circuit
            baseline (results identical; performance knob only —
            excluded from content keys).
        drop: stop a class's stimulus schedule once its signature has
            left the good space (results identical; performance knob
            only — excluded from content keys).
        solver: linear backend (:data:`repro.circuit.backend.SOLVERS`).
            ``auto``/``dense``/``dense-batched`` are bit-identical and
            share content keys; ``sparse`` trades bit identity for
            wall-clock and keys separately.
    """

    macro: str
    process: Process = field(default_factory=typical)
    dft_flipflop: bool = False
    dynamic_test: bool = False
    ivdd_window_halfwidth: float = 0.0
    dt: float = 1e-9
    big_probe: float = 0.1
    small_probe: float = 8e-3
    corners: Optional[Tuple[Process, ...]] = None
    warm_start: bool = True
    drop: bool = True
    solver: str = "auto"


def build_engine(spec: EngineSpec):
    """Construct the fault engine described by a spec.

    Every engine satisfies the :class:`~repro.faultsim.FaultEngine`
    protocol, so callers dispatch classes without per-macro cases.
    """
    if spec.macro == "comparator":
        return ComparatorFaultEngine(EngineConfig(
            dft=spec.dft_flipflop, process=spec.process,
            dynamic_test=spec.dynamic_test, dt=spec.dt,
            big_probe=spec.big_probe, small_probe=spec.small_probe,
            corners=spec.corners, warm_start=spec.warm_start,
            drop=spec.drop, solver=spec.solver))
    if spec.macro == "ladder":
        return LadderFaultEngine(
            process=spec.process,
            corners=list(spec.corners) if spec.corners else
            _default_corners(),
            ivdd_window_halfwidth=spec.ivdd_window_halfwidth,
            warm_start=spec.warm_start, drop=spec.drop,
            solver=spec.solver)
    if spec.macro == "clockgen":
        return ClockgenFaultEngine(process=spec.process, dt=spec.dt,
                                   warm_start=spec.warm_start,
                                   drop=spec.drop, solver=spec.solver)
    if spec.macro == "biasgen":
        return BiasgenFaultEngine(
            process=spec.process, dt=spec.dt,
            ivdd_window_halfwidth=spec.ivdd_window_halfwidth,
            warm_start=spec.warm_start, drop=spec.drop,
            solver=spec.solver)
    raise ValueError(f"no engine for macro {spec.macro!r}")


def _default_corners():
    from ..adc.process import reduced_corners
    return reduced_corners()


#: per-process engine cache — workers compile each good space once
_ENGINES: Dict[EngineSpec, object] = {}

#: per-process good-circuit baselines, baseline key (the store's
#: normalised-spec digest) -> payload dict.  Keyed by the full spec
#: digest, not the macro name, so a baseline can only ever reach an
#: engine whose spec it was computed for — a DfT comparator never
#: adopts the standard comparator's good space.  Installed by
#: :func:`adopt_baselines` (the runner's pool initializer ships them
#: to every worker); engines built afterwards adopt them instead of
#: re-simulating the fault-free circuit.
_BASELINES: Dict[str, Dict] = {}


def _baseline_for(spec: EngineSpec):
    if not _BASELINES:
        return None
    from .store import baseline_key
    return _BASELINES.get(baseline_key(spec))


def adopt_baselines(payloads: Dict[str, Dict]) -> None:
    """Install spec-keyed baselines for this process's future engines.

    Picklable (plain dicts), so it doubles as a
    ``ProcessPoolExecutor`` initializer argument.  Engines already in
    the cache are updated in place when they support adoption.
    """
    _BASELINES.update(payloads or {})
    for spec, engine in _ENGINES.items():
        payload = _baseline_for(spec)
        if payload is not None and hasattr(engine, "adopt_baseline"):
            engine.adopt_baseline(payload)


def get_engine(spec: EngineSpec):
    """Engine for a spec, cached per process.

    A freshly built engine adopts the process's baseline for its spec
    (when one was installed), skipping the good-circuit simulation.
    """
    engine = _ENGINES.get(spec)
    if engine is None:
        engine = build_engine(spec)
        payload = _baseline_for(spec)
        if payload is not None and hasattr(engine, "adopt_baseline"):
            engine.adopt_baseline(payload)
        _ENGINES[spec] = engine
    return engine


def clear_engine_cache() -> None:
    """Drop cached engines, baselines and kernel buffers (tests /
    memory pressure)."""
    _ENGINES.clear()
    _BASELINES.clear()
    clear_kernel_cache()


def simulate_class(fault_class: FaultClass,
                   spec: EngineSpec) -> DetectionRecord:
    """Simulate one fault class: the campaign's pure unit of work.

    Deterministic in its arguments, independent of global state (apart
    from the per-process engine cache, which only memoises), and
    picklable end to end.  Every engine implements the
    :class:`~repro.faultsim.FaultEngine` protocol, so no macro needs a
    special case here — the comparator engine propagates its own
    signature to the missing-code verdict.
    """
    return get_engine(spec).simulate_class(fault_class)


@dataclass(frozen=True)
class ClassTask:
    """One dispatchable simulation.

    Attributes:
        task_id: stable identity, ``"<macro>:<kind>:<index>"``.
        macro: macro name.
        kind: ``"cat"`` or ``"noncat"``.
        index: class index within (macro, kind).
        fault_class: the class to simulate.
        spec: engine specification.
        store_key: content hash for the results store (empty when no
            store is configured).
    """

    task_id: str
    macro: str
    kind: str
    index: int
    fault_class: FaultClass
    spec: EngineSpec
    store_key: str = ""


@dataclass(frozen=True)
class TaskOutcome:
    """What came back from one attempt at a task.

    Attributes:
        task_id: the task's identity.
        record: the detection record (None when the attempt failed).
        error: captured traceback text of a failed attempt.
        error_type: exception class name of a failed attempt.
        wall: attempt wall time in seconds.
        solver_phases: per-phase solver wall time (assemble / factor /
            solve / convergence_check seconds) accumulated during this
            attempt, for the campaign metrics.
    """

    task_id: str
    record: Optional[DetectionRecord] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    wall: float = 0.0
    solver_phases: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.record is not None

    @property
    def convergence_failure(self) -> bool:
        return self.error_type == ConvergenceError.__name__


def run_task(task: ClassTask) -> TaskOutcome:
    """Execute one task, trapping any failure into the outcome."""
    from ..circuit import backend as _backend
    started = time.perf_counter()
    _backend.reset_timings()
    try:
        record = simulate_class(task.fault_class, task.spec)
    except BaseException as exc:  # noqa: BLE001 — the contract
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return TaskOutcome(task_id=task.task_id,
                           error=traceback.format_exc(),
                           error_type=type(exc).__name__,
                           wall=time.perf_counter() - started,
                           solver_phases=_backend.snapshot_timings())
    return TaskOutcome(task_id=task.task_id, record=record,
                       wall=time.perf_counter() - started,
                       solver_phases=_backend.snapshot_timings())


def degraded_record(fault_class: FaultClass) -> DetectionRecord:
    """Pessimistic record for a class that failed twice.

    The class is counted as undetected — degrading coverage rather
    than inflating it — so a sick simulation can only make the
    reported test look worse, never better.
    """
    return DetectionRecord(count=fault_class.count,
                           voltage_detected=False,
                           mechanisms=frozenset(),
                           fault_type=fault_class.fault_type)
