"""Campaign planning: config -> per-macro class lists + engine specs.

Planning is the serial front half of the defect-oriented path — layout,
Monte Carlo sprinkling, fault extraction, collapsing, optional
magnitude rescaling — everything that must happen before fault-class
simulations can fan out.  It is deterministic in the
:class:`~repro.core.path.PathConfig` (the sprinkler is seeded), which
is what makes campaign fingerprints and content-addressed result keys
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..adc.biasgen import biasgen_layout
from ..adc.clockgen import clockgen_layout
from ..adc.ladder import SEGMENTS_PER_COARSE, ladder_slice_layout
from ..core.path import PathConfig
from ..defects.analyze import analyze_defects
from ..defects.collapse import FaultClass, collapse, rescale_magnitudes
from ..defects.sprinkle import sprinkle
from ..faultsim.noncat import derive_noncatastrophic
from ..testgen.dft import comparator_layout_for
from .tasks import ANALOG_MACROS, EngineSpec, get_engine

#: all macros a campaign can cover (analog pool tasks + the digital
#: decoder, which is analysed whole in the parent process)
ALL_MACROS = ANALOG_MACROS + ("decoder",)


@dataclass(frozen=True)
class MacroPlan:
    """One analog macro's share of a campaign.

    Attributes:
        name: macro name.
        bbox_area: layout bounding-box area of one instance.
        instances: chip instance count.
        defects_sprinkled: Monte Carlo budget of the discovery
            campaign.
        classes: collapsed catastrophic fault classes, in simulation
            order.
        noncat_classes: derived near-miss classes (empty when
            disabled).
        spec: engine spec every class of this macro is simulated
            against.
    """

    name: str
    bbox_area: float
    instances: int
    defects_sprinkled: int
    classes: Tuple[FaultClass, ...]
    noncat_classes: Tuple[FaultClass, ...]
    spec: EngineSpec

    @property
    def n_tasks(self) -> int:
        return len(self.classes) + len(self.noncat_classes)


def discover_classes(cell, config: PathConfig) -> List[FaultClass]:
    """Sprinkle, extract, collapse (and optionally rescale) one cell."""
    defects = sprinkle(cell, config.n_defects, stats=config.statistics,
                       seed=config.seed)
    classes = collapse(analyze_defects(cell, defects))
    if config.magnitude_defects and \
            config.magnitude_defects > config.n_defects:
        large_faults = analyze_defects(
            cell, sprinkle(cell, config.magnitude_defects,
                           stats=config.statistics,
                           seed=config.seed + 1))
        classes = rescale_magnitudes(classes, collapse(large_faults))
    if config.max_classes is not None:
        classes = classes[:config.max_classes]
    return classes


def comparator_spec(config: PathConfig) -> EngineSpec:
    return EngineSpec(macro="comparator", process=config.process,
                      dft_flipflop=config.dft.flipflop_redesign,
                      dynamic_test=config.dynamic_test,
                      dt=config.dt, big_probe=config.big_probe,
                      small_probe=config.small_probe,
                      corners=config.corners,
                      warm_start=config.warm_start, drop=config.drop,
                      solver=config.solver)


def ivdd_halfwidth(config: PathConfig) -> float:
    """Chip-level IVdd acceptance half-width from the comparator good
    space (worst phase).  Compiled once per process via the engine
    cache; workers forked from the parent inherit it for free."""
    engine = get_engine(comparator_spec(config))
    gs = engine.good_space()
    return max((w.hi - w.lo) / 2.0
               for key, w in gs.windows.items() if key[0] == "ivdd")


def _noncat(classes: Sequence[FaultClass],
            config: PathConfig) -> Tuple[FaultClass, ...]:
    if not config.include_noncat:
        return tuple()
    noncat = derive_noncatastrophic(list(classes))
    if config.max_classes is not None:
        noncat = noncat[:config.max_classes]
    return tuple(noncat)


def plan_macro(name: str, config: PathConfig) -> MacroPlan:
    """Plan one analog macro: cell, classes and engine spec."""
    if name == "comparator":
        cell = comparator_layout_for(config.dft)
        instances = 256
        spec = comparator_spec(config)
    elif name == "ladder":
        cell = ladder_slice_layout()
        instances = 256 // SEGMENTS_PER_COARSE
        spec = EngineSpec(macro="ladder", process=config.process,
                          ivdd_window_halfwidth=ivdd_halfwidth(config),
                          corners=config.corners,
                          warm_start=config.warm_start,
                          drop=config.drop, solver=config.solver)
    elif name == "clockgen":
        cell = clockgen_layout()
        instances = 1
        spec = EngineSpec(macro="clockgen", process=config.process,
                          dt=config.dt,
                          warm_start=config.warm_start,
                          drop=config.drop, solver=config.solver)
    elif name == "biasgen":
        cell = biasgen_layout(dft=config.dft.bias_line_reorder)
        instances = 1
        spec = EngineSpec(macro="biasgen", process=config.process,
                          dt=config.dt,
                          ivdd_window_halfwidth=ivdd_halfwidth(config),
                          warm_start=config.warm_start,
                          drop=config.drop, solver=config.solver)
    else:
        raise ValueError(f"unknown analog macro {name!r}")
    classes = tuple(discover_classes(cell, config))
    return MacroPlan(name=name, bbox_area=cell.area(),
                     instances=instances,
                     defects_sprinkled=config.n_defects,
                     classes=classes,
                     noncat_classes=_noncat(classes, config),
                     spec=spec)


def likelihood_order(tasks: Sequence) -> List:
    """Dispatch order: most-likely (largest) fault classes first.

    A class's ``count`` is its within-macro fault magnitude — the
    paper's defect-likelihood weight — so simulating heavy classes
    first makes the weighted-coverage figure converge early and the
    weighted ETA meaningful.  Ties keep the deterministic task-id
    order; results are assembled by task id, so dispatch order never
    changes campaign output.
    """
    return sorted(tasks,
                  key=lambda t: (-t.fault_class.count, t.task_id))


def validate_macros(macros: Optional[Sequence[str]]) -> List[str]:
    """Requested macro list -> validated ordered list (default: all)."""
    wanted = list(macros) if macros is not None else list(ALL_MACROS)
    for name in wanted:
        if name not in ALL_MACROS:
            raise ValueError(f"unknown macro {name!r}")
    return wanted
