"""Structured campaign events and live metrics.

The runner emits typed events on an :class:`EventBus`; subscribers —
the CLI's :class:`ConsoleReporter`, the benchmark harness, tests —
consume them without touching the runner.  A :class:`MetricsCollector`
subscriber aggregates the stream into a :class:`CampaignMetrics`
snapshot (per-class wall time, cache-hit rate, convergence failures,
ETA) that the CLI prints and the benchmarks persist as JSON.

All subscriber dispatch happens under a lock, so reporters that write
to a shared stream never interleave lines even when pool callbacks
fire from multiple threads.  A subscriber that raises is logged and
skipped for that event — one sick reporter can never take the
campaign loop down with it.
"""

from __future__ import annotations

import logging
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO, Tuple

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CampaignEvent:
    """Base class of all campaign events."""


@dataclass(frozen=True)
class CampaignStarted(CampaignEvent):
    """The runner resolved its plan and is about to dispatch.

    Attributes:
        macros: macro names in the plan.
        total_tasks: fault-class simulations the campaign owns.
        jobs: worker processes (1 = in-process serial).
        resumed: journal entries adopted from a previous run.
        total_weight: summed fault-class magnitudes (defect
            likelihood) across the plan; 0 when not tracked.
    """

    macros: Tuple[str, ...]
    total_tasks: int
    jobs: int
    resumed: int = 0
    total_weight: int = 0


@dataclass(frozen=True)
class MacroPlanned(CampaignEvent):
    """Class discovery finished for one macro."""

    macro: str
    n_classes: int
    n_noncat: int


@dataclass(frozen=True)
class ClassCompleted(CampaignEvent):
    """One fault-class simulation finished (from any source).

    Attributes:
        macro: macro the class belongs to.
        kind: ``"cat"`` or ``"noncat"``.
        index: class index within (macro, kind).
        source: ``"computed"``, ``"cache"`` or ``"journal"``.
        wall: simulation wall time in seconds (0 for cache/journal).
        degraded: the class failed twice and carries a pessimistic
            record instead of a simulated one.
        error: the attached error message for degraded results.
        retried: the class was retried before succeeding or degrading.
        done: campaign-wide completion count including this event.
        total: campaign-wide task count.
        weight: the class's magnitude (defect likelihood); 0 when not
            tracked.
    """

    macro: str
    kind: str
    index: int
    source: str
    wall: float = 0.0
    degraded: bool = False
    error: Optional[str] = None
    retried: bool = False
    done: int = 0
    total: int = 0
    weight: int = 0


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """The campaign completed; carries the final metrics snapshot."""

    metrics: "CampaignMetrics"


@dataclass(frozen=True)
class ShardClaimed(CampaignEvent):
    """A worker leased one shard from the coordinator.

    Attributes:
        shard_id: the shard's content key.
        worker: the claiming worker's id.
        n_tasks: fault classes in the shard.
        weight: summed class magnitudes in the shard.
        retries: how many times the shard was reclaimed before this
            claim (0 on first dispatch).
    """

    shard_id: str
    worker: str
    n_tasks: int
    weight: int
    retries: int = 0


@dataclass(frozen=True)
class ShardCompleted(CampaignEvent):
    """A shard's results were merged into the campaign.

    Attributes:
        shard_id: the shard's content key.
        worker: the reporting worker's id.
        n_tasks: fault classes merged from the report.
        weight: summed class magnitudes in the shard.
        wall: coordinator-observed lease-to-report seconds.
        duplicate: the shard was already done when this report
            arrived (idempotent merge; nothing changed).
    """

    shard_id: str
    worker: str
    n_tasks: int
    weight: int
    wall: float = 0.0
    duplicate: bool = False


@dataclass(frozen=True)
class ShardReclaimed(CampaignEvent):
    """A shard's lease expired and it went back into the queue.

    Attributes:
        shard_id: the shard's content key.
        worker: the worker that held the expired lease.
        retries: reclaim count including this one.
        lease: the lease duration that expired, in seconds.
    """

    shard_id: str
    worker: str
    retries: int
    lease: float = 0.0


@dataclass(frozen=True)
class DictionaryBuilt(CampaignEvent):
    """A fault dictionary finished compiling (or loaded from cache).

    Attributes:
        classes: dictionary entries (detectable fault classes).
        undetected: classes with all-zero signatures, excluded from
            the dictionary but reported in its meta.
        macros: macros contributing entries.
        features: signature-vector width.
        source: ``"computed"`` (compiled this run) or ``"cache"``
            (served from the store's ``dictionaries/`` blobs).
        wall: build wall time in seconds.
    """

    classes: int
    undetected: int
    macros: Tuple[str, ...]
    features: int
    source: str = "computed"
    wall: float = 0.0


@dataclass(frozen=True)
class QueryBatchServed(CampaignEvent):
    """One diagnosis batch finished (matcher or HTTP server).

    Attributes:
        n_queries: signatures diagnosed in the batch.
        wall: batch wall time in seconds.
        matched: queries resolved to a single top candidate.
        ambiguous: queries whose top candidate sits in an ambiguity
            group.
        unmatched: queries escaping the good space but matching no
            dictionary entry.
        passed: all-zero queries (inside the good space).
    """

    n_queries: int
    wall: float = 0.0
    matched: int = 0
    ambiguous: int = 0
    unmatched: int = 0
    passed: int = 0


@dataclass(frozen=True)
class CandidateEvaluated(CampaignEvent):
    """One optimizer candidate finished scoring (from any source).

    Attributes:
        generation: generation the candidate belongs to.
        key: the genome's content digest.
        source: ``"computed"`` (fresh campaign + scoring),
            ``"memo"`` (campaign shared with an earlier candidate of
            this run) or ``"journal"`` (adopted from the run journal).
        fresh_simulations: fault classes actually simulated for this
            candidate (0 when every class hit the store).
        store_hits: fault classes served from the results store.
        wall: evaluation wall time in seconds.
        objectives: the scored objective values keyed by name.
    """

    generation: int
    key: str
    source: str
    fresh_simulations: int = 0
    store_hits: int = 0
    wall: float = 0.0
    objectives: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class GenerationCompleted(CampaignEvent):
    """One optimizer generation finished (evaluated + selected).

    Attributes:
        generation: 0-based generation index.
        evaluated: candidates scored this generation.
        fresh_simulations: fault classes simulated this generation.
        store_hits: fault classes served from the results store.
        front_size: size of the current non-dominated front.
        hypervolume: dominated hypervolume of the current front
            (minimization, against the run's reference point).
        wall: generation wall time in seconds.
    """

    generation: int
    evaluated: int
    fresh_simulations: int = 0
    store_hits: int = 0
    front_size: int = 0
    hypervolume: float = 0.0
    wall: float = 0.0


class EventBus:
    """Thread-safe fan-out of campaign events to subscribers.

    Subscriber failures are isolated: a raising subscriber is logged
    (with traceback) and the remaining subscribers still receive the
    event.  Emitters — the campaign loop, the coordinator's request
    threads — never see a subscriber's exception.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[CampaignEvent], None]] = []
        self._lock = threading.Lock()

    def subscribe(self, fn: Callable[[CampaignEvent], None]) -> None:
        with self._lock:
            self._subscribers.append(fn)

    def emit(self, event: CampaignEvent) -> None:
        with self._lock:
            for fn in self._subscribers:
                try:
                    fn(event)
                except Exception:
                    logger.exception(
                        "event subscriber %r failed on %s; skipping it "
                        "for this event", fn, type(event).__name__)


@dataclass(frozen=True)
class CampaignMetrics:
    """Aggregated accounting of one campaign run.

    Attributes:
        total_tasks: fault-class simulations in the plan.
        completed: finished so far (any source).
        computed: simulated in this run.
        cache_hits: served from the results store.
        journal_hits: adopted from a resume journal.
        degraded: recorded as degraded after retry.
        retries: extra attempts made.
        convergence_failures: simulator convergence failures observed
            inside computed classes.
        wall_time: campaign wall-clock seconds so far.
        simulated_time: summed per-class wall time of computed classes.
        macro_wall: summed computed wall time per macro.
        eta: estimated remaining seconds (None before any computed
            class or when nothing remains).  Weighted by class
            magnitude when the runner tracks weights — with the
            likelihood-ordered schedule the heavy classes land first,
            so a task-count ETA would be badly pessimistic late in the
            run.
        total_weight: summed fault-class magnitudes across the plan.
        weight_done: magnitude already completed (any source).
        baseline_hits: macro baselines served from the store.
        baseline_misses: macro baselines recomputed this run.
        solver_phases: summed linear-solver phase seconds (assemble /
            factor / solve / convergence_check) across computed
            classes.
    """

    total_tasks: int = 0
    completed: int = 0
    computed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    degraded: int = 0
    retries: int = 0
    convergence_failures: int = 0
    wall_time: float = 0.0
    simulated_time: float = 0.0
    macro_wall: Dict[str, float] = field(default_factory=dict)
    eta: Optional[float] = None
    total_weight: int = 0
    weight_done: int = 0
    baseline_hits: int = 0
    baseline_misses: int = 0
    solver_phases: Dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed classes not simulated in this run."""
        if self.completed == 0:
            return 0.0
        return (self.cache_hits + self.journal_hits) / self.completed

    @property
    def weight_fraction(self) -> float:
        """Completed fraction of the weighted fault population."""
        if self.total_weight <= 0:
            return 0.0
        return self.weight_done / self.total_weight

    def as_dict(self) -> Dict:
        return {
            "total_tasks": self.total_tasks,
            "completed": self.completed,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "degraded": self.degraded,
            "retries": self.retries,
            "convergence_failures": self.convergence_failures,
            "wall_time": self.wall_time,
            "simulated_time": self.simulated_time,
            "macro_wall": dict(self.macro_wall),
            "total_weight": self.total_weight,
            "weight_done": self.weight_done,
            "weight_fraction": self.weight_fraction,
            "baseline_hits": self.baseline_hits,
            "baseline_misses": self.baseline_misses,
            "solver_phases": dict(self.solver_phases),
        }


class MetricsCollector:
    """EventBus subscriber that folds events into CampaignMetrics."""

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started: Optional[float] = None
        self._total = 0
        self._completed = 0
        self._computed = 0
        self._cache_hits = 0
        self._journal_hits = 0
        self._degraded = 0
        self._retries = 0
        self._convergence_failures = 0
        self._simulated = 0.0
        self._macro_wall: Dict[str, float] = {}
        self._total_weight = 0
        self._weight_done = 0
        self._weight_computed = 0
        self._baseline_hits = 0
        self._baseline_misses = 0
        self._solver_phases: Dict[str, float] = {}

    def __call__(self, event: CampaignEvent) -> None:
        with self._lock:
            if isinstance(event, CampaignStarted):
                self._started = self._clock()
                self._total = event.total_tasks
                self._total_weight = event.total_weight
            elif isinstance(event, ClassCompleted):
                self._completed += 1
                self._degraded += event.degraded
                self._retries += event.retried
                self._weight_done += event.weight
                if event.source == "cache":
                    self._cache_hits += 1
                elif event.source == "journal":
                    self._journal_hits += 1
                else:
                    self._computed += 1
                    self._simulated += event.wall
                    self._weight_computed += event.weight
                    self._macro_wall[event.macro] = \
                        self._macro_wall.get(event.macro, 0.0) + \
                        event.wall

    def add_convergence_failures(self, n: int) -> None:
        with self._lock:
            self._convergence_failures += max(0, n)

    def add_baseline_counts(self, hits: int, misses: int) -> None:
        """Record the store's baseline-cache accounting."""
        with self._lock:
            self._baseline_hits += max(0, hits)
            self._baseline_misses += max(0, misses)

    def add_solver_timings(self, phases: Dict[str, float]) -> None:
        """Fold one task's per-phase solver seconds into the totals."""
        with self._lock:
            for phase, seconds in (phases or {}).items():
                self._solver_phases[phase] = \
                    self._solver_phases.get(phase, 0.0) + float(seconds)

    def snapshot(self, jobs: int = 1) -> CampaignMetrics:
        """Current metrics with wall time and ETA filled in.

        ETA scales remaining *weight* by the observed
        seconds-per-unit-weight when weights are tracked (the
        likelihood-ordered schedule front-loads heavy classes, so a
        task-count ETA would overshoot late in the run); it falls back
        to seconds-per-class otherwise.
        """
        with self._lock:
            wall = 0.0
            if self._started is not None:
                wall = self._clock() - self._started
            eta: Optional[float] = None
            remaining = self._total - self._completed
            remaining_w = self._total_weight - self._weight_done
            if self._weight_computed > 0 and remaining_w > 0:
                per_unit = self._simulated / self._weight_computed
                eta = remaining_w * per_unit / max(1, jobs)
            elif self._computed > 0 and remaining > 0:
                per_class = self._simulated / self._computed
                eta = remaining * per_class / max(1, jobs)
            return CampaignMetrics(
                total_tasks=self._total, completed=self._completed,
                computed=self._computed, cache_hits=self._cache_hits,
                journal_hits=self._journal_hits,
                degraded=self._degraded, retries=self._retries,
                convergence_failures=self._convergence_failures,
                wall_time=wall, simulated_time=self._simulated,
                macro_wall=dict(self._macro_wall), eta=eta,
                total_weight=self._total_weight,
                weight_done=self._weight_done,
                baseline_hits=self._baseline_hits,
                baseline_misses=self._baseline_misses,
                solver_phases=dict(self._solver_phases))


@dataclass(frozen=True)
class DiagnosisMetrics:
    """Aggregated accounting of a diagnosis service.

    Attributes:
        batches: query batches served.
        queries: signatures diagnosed.
        matched / ambiguous / unmatched / passed: verdict counts.
        wall_time: summed batch wall time in seconds.
        max_batch_wall: slowest batch in seconds.
        dictionary_classes: entries in the served dictionary.
        dictionary_source: where the dictionary came from
            (``"computed"`` / ``"cache"`` / ``""`` when untracked).
    """

    batches: int = 0
    queries: int = 0
    matched: int = 0
    ambiguous: int = 0
    unmatched: int = 0
    passed: int = 0
    wall_time: float = 0.0
    max_batch_wall: float = 0.0
    dictionary_classes: int = 0
    dictionary_source: str = ""

    @property
    def queries_per_second(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.queries / self.wall_time

    @property
    def ambiguity_rate(self) -> float:
        """Fraction of failing queries landing in ambiguity groups."""
        failing = self.matched + self.ambiguous + self.unmatched
        if failing == 0:
            return 0.0
        return self.ambiguous / failing

    def as_dict(self) -> Dict:
        return {
            "batches": self.batches,
            "queries": self.queries,
            "matched": self.matched,
            "ambiguous": self.ambiguous,
            "unmatched": self.unmatched,
            "passed": self.passed,
            "wall_time": self.wall_time,
            "max_batch_wall": self.max_batch_wall,
            "queries_per_second": self.queries_per_second,
            "ambiguity_rate": self.ambiguity_rate,
            "dictionary_classes": self.dictionary_classes,
            "dictionary_source": self.dictionary_source,
        }


class DiagnosisMetricsCollector:
    """EventBus subscriber folding diagnosis events into
    :class:`DiagnosisMetrics` (the campaign pattern: typed events in,
    one thread-safe snapshot out)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._batches = 0
        self._queries = 0
        self._matched = 0
        self._ambiguous = 0
        self._unmatched = 0
        self._passed = 0
        self._wall = 0.0
        self._max_wall = 0.0
        self._classes = 0
        self._source = ""

    def __call__(self, event: CampaignEvent) -> None:
        with self._lock:
            if isinstance(event, DictionaryBuilt):
                self._classes = event.classes
                self._source = event.source
            elif isinstance(event, QueryBatchServed):
                self._batches += 1
                self._queries += event.n_queries
                self._matched += event.matched
                self._ambiguous += event.ambiguous
                self._unmatched += event.unmatched
                self._passed += event.passed
                self._wall += event.wall
                self._max_wall = max(self._max_wall, event.wall)

    def snapshot(self) -> DiagnosisMetrics:
        with self._lock:
            return DiagnosisMetrics(
                batches=self._batches, queries=self._queries,
                matched=self._matched, ambiguous=self._ambiguous,
                unmatched=self._unmatched, passed=self._passed,
                wall_time=self._wall, max_batch_wall=self._max_wall,
                dictionary_classes=self._classes,
                dictionary_source=self._source)


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting inside :class:`DistributedMetrics`.

    Attributes:
        worker: worker id.
        shards: shards merged from this worker.
        tasks: fault classes merged from this worker.
        weight: summed class magnitudes merged from this worker.
        wall: summed lease-to-report seconds of merged shards.
    """

    worker: str
    shards: int = 0
    tasks: int = 0
    weight: int = 0
    wall: float = 0.0

    @property
    def throughput(self) -> float:
        """Merged fault classes per second of shard wall time."""
        if self.wall <= 0:
            return 0.0
        return self.tasks / self.wall

    def as_dict(self) -> Dict:
        return {
            "shards": self.shards,
            "tasks": self.tasks,
            "weight": self.weight,
            "wall": self.wall,
            "throughput": self.throughput,
        }


@dataclass(frozen=True)
class DistributedMetrics:
    """Coordinator-side fan-in of a distributed campaign.

    Attributes:
        shards_total: shards the campaign was partitioned into.
        shards_done: shards merged so far.
        shards_leased: shards currently out on lease.
        reclaims: expired leases (shards requeued).
        duplicate_reports: idempotently ignored ``/report`` calls.
        workers: per-worker stats keyed by worker id.
        stragglers: shard ids leased for longer than the straggler
            threshold (2x the median merged-shard wall) and not yet
            reported.
        eta: estimated remaining seconds from the active workers'
            aggregate throughput (None before any merge or when
            nothing remains).
    """

    shards_total: int = 0
    shards_done: int = 0
    shards_leased: int = 0
    reclaims: int = 0
    duplicate_reports: int = 0
    workers: Dict[str, WorkerStats] = field(default_factory=dict)
    stragglers: Tuple[str, ...] = ()
    eta: Optional[float] = None

    def as_dict(self) -> Dict:
        return {
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "shards_leased": self.shards_leased,
            "reclaims": self.reclaims,
            "duplicate_reports": self.duplicate_reports,
            "workers": {name: stats.as_dict()
                        for name, stats in sorted(self.workers.items())},
            "stragglers": list(self.stragglers),
            "eta": self.eta,
        }


class DistributedMetricsCollector:
    """EventBus subscriber folding shard events into
    :class:`DistributedMetrics` — the coordinator's aggregated live
    dashboard (per-worker throughput, reclaim counts, straggler
    detection, weighted ETA).

    All timing uses the injected clock (the coordinator's monotonic
    clock); nothing a worker sends is trusted as a timestamp.
    """

    #: a leased shard is a straggler once it is out for more than
    #: STRAGGLER_FACTOR x the median merged-shard wall
    STRAGGLER_FACTOR = 2.0

    def __init__(self, total_shards: int = 0, total_weight: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._total = total_shards
        self._total_weight = total_weight
        self._done = 0
        self._reclaims = 0
        self._duplicates = 0
        self._weight_done = 0
        self._wall_done = 0.0
        self._shard_walls: List[float] = []
        self._leased: Dict[str, float] = {}  # shard_id -> claim time
        self._workers: Dict[str, WorkerStats] = {}

    def set_totals(self, total_shards: int, total_weight: int) -> None:
        with self._lock:
            self._total = total_shards
            self._total_weight = total_weight

    def __call__(self, event: CampaignEvent) -> None:
        with self._lock:
            if isinstance(event, ShardClaimed):
                self._leased[event.shard_id] = self._clock()
            elif isinstance(event, ShardReclaimed):
                self._reclaims += 1
                self._leased.pop(event.shard_id, None)
            elif isinstance(event, ShardCompleted):
                if event.duplicate:
                    self._duplicates += 1
                    return
                self._leased.pop(event.shard_id, None)
                self._done += 1
                self._weight_done += event.weight
                self._wall_done += event.wall
                self._shard_walls.append(event.wall)
                stats = self._workers.get(event.worker) or \
                    WorkerStats(worker=event.worker)
                self._workers[event.worker] = WorkerStats(
                    worker=event.worker, shards=stats.shards + 1,
                    tasks=stats.tasks + event.n_tasks,
                    weight=stats.weight + event.weight,
                    wall=stats.wall + event.wall)

    def snapshot(self) -> DistributedMetrics:
        with self._lock:
            now = self._clock()
            stragglers: Tuple[str, ...] = ()
            walls = sorted(self._shard_walls)
            if walls:
                median = walls[len(walls) // 2]
                threshold = self.STRAGGLER_FACTOR * max(median, 1e-9)
                stragglers = tuple(sorted(
                    shard for shard, since in self._leased.items()
                    if now - since > threshold))
            eta: Optional[float] = None
            remaining_w = self._total_weight - self._weight_done
            active = max(1, len([w for w in self._workers.values()
                                 if w.wall > 0]))
            if self._weight_done > 0 and remaining_w > 0 and \
                    self._wall_done > 0:
                per_unit = self._wall_done / self._weight_done
                eta = remaining_w * per_unit / active
            return DistributedMetrics(
                shards_total=self._total, shards_done=self._done,
                shards_leased=len(self._leased),
                reclaims=self._reclaims,
                duplicate_reports=self._duplicates,
                workers=dict(self._workers), stragglers=stragglers,
                eta=eta)


class ConsoleReporter:
    """Prints campaign progress, one whole line per write.

    Each event becomes at most one ``stream.write`` of a complete
    ``\\n``-terminated line, so interleaved updates from parallel
    macro streams can never mangle each other — the failure mode of
    the old per-macro ``print`` progress callback.
    """

    def __init__(self, stream: Optional[TextIO] = None, every: int = 10,
                 collector: Optional[MetricsCollector] = None,
                 jobs: int = 1) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._every = max(1, every)
        self._collector = collector
        self._jobs = jobs
        self._started = time.monotonic()

    def _write(self, line: str) -> None:
        self._stream.write(line + "\n")
        self._stream.flush()

    def __call__(self, event: CampaignEvent) -> None:
        if isinstance(event, CampaignStarted):
            self._started = time.monotonic()
            resumed = (f", {event.resumed} resumed"
                       if event.resumed else "")
            # jobs=0 is the coordinator's sentinel: the simulating
            # processes are remote workers, not a local pool
            self._write(
                f"campaign: {event.total_tasks} classes over "
                f"{len(event.macros)} macros, "
                f"jobs={event.jobs or 'remote'}{resumed}")
        elif isinstance(event, ClassCompleted):
            notable = event.degraded or event.error
            if not notable and event.done % self._every != 0 and \
                    event.done != event.total:
                return
            elapsed = time.monotonic() - self._started
            suffix = ""
            if self._collector is not None:
                m = self._collector.snapshot(jobs=self._jobs)
                if m.total_weight > 0:
                    suffix = (f", {100.0 * m.weight_fraction:.0f}% "
                              f"weighted")
                if m.eta is not None:
                    suffix += f", eta {m.eta:.0f}s"
                if m.cache_hits or m.journal_hits:
                    suffix += (f", {m.cache_hits + m.journal_hits} "
                               f"cached")
            flag = " DEGRADED" if event.degraded else ""
            self._write(
                f"  {event.macro}/{event.kind}: {event.done}/"
                f"{event.total} classes ({elapsed:.0f}s{suffix})"
                f"{flag}")
        elif isinstance(event, ShardCompleted):
            if event.duplicate:
                return
            self._write(
                f"  shard {event.shard_id[:8]}: {event.n_tasks} "
                f"classes merged from {event.worker} "
                f"({event.wall:.1f}s)")
        elif isinstance(event, ShardReclaimed):
            self._write(
                f"  shard {event.shard_id[:8]}: lease expired on "
                f"{event.worker}, requeued (retry {event.retries})")
        elif isinstance(event, CampaignFinished):
            m = event.metrics
            baselines = ""
            if m.baseline_hits or m.baseline_misses:
                baselines = (f", baselines {m.baseline_hits} reused/"
                             f"{m.baseline_misses} computed")
            self._write(
                f"campaign done: {m.completed}/{m.total_tasks} classes "
                f"in {m.wall_time:.0f}s ({m.computed} computed, "
                f"{m.cache_hits} cache hits, {m.journal_hits} from "
                f"journal, {m.degraded} degraded, "
                f"{m.convergence_failures} convergence failures"
                f"{baselines})")
