"""Content-addressed on-disk store of fault-class results.

A class's detection record is a pure function of (fault-class model,
engine spec, simulation code).  The store keys each record by a SHA-256
digest over a canonical JSON encoding of exactly those three things —
the representative fault, the :class:`~repro.campaign.tasks.EngineSpec`
and :data:`STORE_VERSION` — so re-running an identical campaign is all
cache hits, while changing the engine configuration, the fault model
*or* the simulation code (bump the version tag) misses cleanly.

The class magnitude (``count``) is deliberately *not* part of the key:
a magnitude recount re-weights classes without changing their physics,
and the stored signature is re-hydrated with the caller's count on
load.  Writes are atomic (temp file + ``os.replace``), so a campaign
killed mid-write never leaves a torn object behind.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..core.serialize import (SerializeError, record_from_dict,
                              record_to_dict)
from ..defects.collapse import FaultClass
from ..macrotest.coverage import DetectionRecord
from .tasks import EngineSpec

#: bump when a change to the simulation code invalidates old results
#: ("2": batched transient kernel + EngineSpec dt/probe/corner knobs;
#: "3": incremental engine — baselines, detected_by on records;
#: "4": solver-backend knob on EngineSpec)
STORE_VERSION = "4"


def canonical(obj) -> object:
    """JSON-able canonical form with deterministic ordering.

    ``repr`` of a frozenset depends on hash order (randomised per
    process for strings), so anything set-like is sorted by its own
    canonical JSON encoding; dataclasses become ``(type, fields)``
    pairs, floats go through ``repr`` to survive JSON round-trips
    bit-exactly.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if isinstance(obj, (frozenset, set)):
        items = [canonical(x) for x in obj]
        return sorted(items, key=lambda x: json.dumps(x, sort_keys=True))
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__}")


def _normalized_spec(spec: EngineSpec) -> EngineSpec:
    """Spec with the result-invariant performance knobs stripped.

    ``warm_start`` and ``drop`` change how fast a record is computed,
    never what it says, so campaigns run with different settings share
    cache entries (and an incremental run can adopt an exhaustive
    run's results verbatim).  The dense solver family
    (``auto``/``dense``/``dense-batched``) is bit-identical by
    construction and collapses to one key; ``sparse`` factorises
    through different arithmetic (agreeing only within Newton
    tolerance), so it keys separately.
    """
    solver = spec.solver if spec.solver == "sparse" else "dense"
    return dataclasses.replace(spec, warm_start=True, drop=True,
                               solver=solver)


def content_key(fault_class: FaultClass, spec: EngineSpec,
                version: str = STORE_VERSION) -> str:
    """SHA-256 digest identifying one class simulation's inputs."""
    payload = {
        "store_version": version,
        "spec": canonical(_normalized_spec(spec)),
        "fault": canonical(fault_class.representative),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def baseline_key(spec: EngineSpec, version: str = STORE_VERSION) -> str:
    """SHA-256 digest identifying a macro's good-circuit baseline.

    Keyed by the normalised spec alone — every fault class of a macro
    shares one fault-free circuit — so ``--resume`` and repeat runs
    reuse the baseline exactly when they would reuse records.
    """
    payload = {
        "store_version": version,
        "kind": "baseline",
        "spec": canonical(_normalized_spec(spec)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dictionary_key(fingerprint: str, dictionary_version: int,
                   version: str = STORE_VERSION) -> str:
    """SHA-256 digest identifying a compiled fault dictionary.

    Keyed by the campaign fingerprint — the digest over every task's
    content key — so a dictionary is reused exactly when every record
    it was compiled from would be reused, and any spec / fault-model /
    code-version change misses cleanly.  The dictionary format version
    is part of the key so a format bump recompiles without clobbering
    old blobs.
    """
    payload = {
        "store_version": version,
        "kind": "dictionary",
        "dictionary_version": int(dictionary_version),
        "campaign": fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class StoredRecord:
    """One object streamed out of the store by :meth:`iter_records`.

    Attributes:
        key: the object's content key.
        record: the detection record.
        meta: the free-form metadata stored with it (the campaign
            runner records ``task_id`` and ``macro`` here).
    """

    key: str
    record: DetectionRecord
    meta: Dict


def _atomic_write_text(path: Path, text: str) -> None:
    """Atomically publish ``text`` at ``path``, multi-writer safe.

    Each writer stages into its own ``mkstemp`` file (unique per
    writer, so simultaneous writers never collide on the staging
    name) and publishes with ``os.replace`` — last writer wins whole,
    readers never observe a torn object.  The temp file is removed on
    any failure, including the replace itself; only a writer killed
    between ``mkstemp`` and cleanup can leave one behind, which
    :func:`sweep_stale_tmp` reaps by age.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: a staging file older than this is presumed orphaned by a killed
#: writer (no write legitimately stays in flight for ten minutes)
STALE_TMP_AGE = 600.0

#: an mtime further in the future than this is clock skew (an NFS
#: server's clock, a stepped local clock), not a writer from the
#: future; such files are never reaped
FUTURE_MTIME_TOLERANCE = 30.0


def sweep_stale_tmp(root: Union[str, Path],
                    max_age: float = STALE_TMP_AGE) -> int:
    """Reap ``*.tmp`` staging files orphaned by killed writers.

    Only files older than ``max_age`` seconds are removed, so a sweep
    can never race an in-flight writer (whose staging file is seconds
    old at most).  Age is computed defensively against clock trouble:
    a backwards wall-clock step (or NFS mtime skew across hosts
    sharing the store) must never make a seconds-old staging file
    look ancient, so negative ages clamp to zero and a file whose
    mtime sits beyond :data:`FUTURE_MTIME_TOLERANCE` in the future is
    skipped outright — it survives until the clocks agree it is
    genuinely old.  Returns the number of files removed.  Safe to
    call concurrently — a file already reaped by another sweeper is
    simply skipped.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    now = time.time()
    removed = 0
    for tmp in root.rglob("*.tmp"):
        try:
            mtime = tmp.stat().st_mtime
            if mtime > now + FUTURE_MTIME_TOLERANCE:
                continue
            age = max(0.0, now - mtime)
            if age < max_age:
                continue
            tmp.unlink()
            removed += 1
        except OSError:
            continue
    return removed


class ResultsStore:
    """Content-addressed store of detection records under one root.

    Layout: ``<root>/objects/<k[:2]>/<k>.json`` — two-level fan-out so
    paper-scale campaigns (thousands of classes x configs) don't pile
    every object into one directory.
    """

    def __init__(self, root: Union[str, Path],
                 version: str = STORE_VERSION) -> None:
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.baseline_hits = 0
        self.baseline_misses = 0
        self.dictionary_hits = 0
        self.dictionary_misses = 0

    def key(self, fault_class: FaultClass, spec: EngineSpec) -> str:
        return content_key(fault_class, spec, version=self.version)

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str, count: Optional[int] = None
            ) -> Optional[DetectionRecord]:
        """Load a record; ``count`` re-hydrates the class magnitude.

        Returns None (a miss) for absent, torn or incompatible
        objects — a corrupt cache entry costs a re-simulation, never
        a crash.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            record = record_from_dict(payload["record"])
        except (OSError, json.JSONDecodeError, KeyError,
                SerializeError):
            self.misses += 1
            return None
        self.hits += 1
        if count is not None and count != record.count:
            record = dataclasses.replace(record, count=count)
        return record

    def put(self, key: str, record: DetectionRecord,
            meta: Optional[Dict] = None) -> None:
        payload = {
            "store_version": self.version,
            "key": key,
            "record": record_to_dict(record),
            "meta": meta or {},
        }
        _atomic_write_text(self._path(key),
                           json.dumps(payload, sort_keys=True))

    def iter_records(self) -> Iterator[StoredRecord]:
        """Stream every stored record without re-keying or re-parsing
        per class.

        The dictionary build's bulk-read path: one filesystem walk in
        key order (deterministic across runs), one JSON parse per
        object.  Torn, corrupt or version-mismatched objects are
        skipped with a warning — a damaged cache entry costs dictionary
        coverage, never a crash — and do not touch the hit/miss
        counters (this is a scan, not a lookup).
        """
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
                if payload.get("store_version") != self.version:
                    warnings.warn(
                        f"skipping {path.name}: store version "
                        f"{payload.get('store_version')!r} != "
                        f"{self.version!r}", stacklevel=2)
                    continue
                record = record_from_dict(payload["record"])
                key = payload.get("key") or path.stem
                meta = payload.get("meta") or {}
                if not isinstance(meta, dict):
                    raise SerializeError("meta is not a mapping")
            except (OSError, json.JSONDecodeError, KeyError,
                    AttributeError, SerializeError) as exc:
                warnings.warn(f"skipping corrupt store object "
                              f"{path.name}: {exc}", stacklevel=2)
                continue
            yield StoredRecord(key=key, record=record, meta=meta)

    # -- baseline blobs -----------------------------------------------------

    def _blob_path(self, key: str) -> Path:
        return self.root / "baselines" / f"{key}.json"

    def get_blob(self, key: str) -> Optional[Dict]:
        """Load an opaque JSON blob (a macro baseline) by key.

        Returns None (a miss) for absent, torn or non-dict objects —
        a corrupt baseline costs a recompute, never a crash.
        """
        try:
            payload = json.loads(self._blob_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            self.baseline_misses += 1
            return None
        if not isinstance(payload, dict):
            self.baseline_misses += 1
            return None
        self.baseline_hits += 1
        return payload

    def put_blob(self, key: str, payload: Dict) -> None:
        """Atomically persist an opaque JSON blob under a key."""
        _atomic_write_text(self._blob_path(key),
                           json.dumps(payload, sort_keys=True))

    # -- dictionary blobs ---------------------------------------------------

    def _dictionary_path(self, key: str) -> Path:
        return self.root / "dictionaries" / f"{key}.json"

    def get_dictionary(self, key: str) -> Optional[Dict]:
        """Load a compiled fault-dictionary payload by key.

        Same contract as baselines: absent, torn or non-dict objects
        are a miss (cost: a rebuild), never a crash.
        """
        try:
            payload = json.loads(self._dictionary_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            self.dictionary_misses += 1
            return None
        if not isinstance(payload, dict):
            self.dictionary_misses += 1
            return None
        self.dictionary_hits += 1
        return payload

    def put_dictionary(self, key: str, payload: Dict) -> None:
        """Atomically persist a fault-dictionary payload under
        ``dictionaries/<key>.json``."""
        _atomic_write_text(self._dictionary_path(key),
                           json.dumps(payload, sort_keys=True))

    def iter_dictionaries(self) -> Iterator[Tuple[str, Dict]]:
        """Stream ``(key, payload)`` for every compiled dictionary
        blob, newest first (by mtime; name-ordered within a tie).

        The serving-side read path: a diagnosis registry pointed at a
        store root picks the dictionary the campaign compiled most
        recently.  Torn or non-dict blobs are skipped with a warning —
        a damaged blob costs serving freshness, never a crash.
        """
        root = self.root / "dictionaries"
        if not root.is_dir():
            return
        paths = []
        for path in root.glob("*.json"):
            try:
                paths.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        for _, _, path in sorted(paths, reverse=True):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                warnings.warn(f"skipping corrupt dictionary blob "
                              f"{path.name}: {exc}", stacklevel=2)
                continue
            if not isinstance(payload, dict):
                warnings.warn(f"skipping non-dict dictionary blob "
                              f"{path.name}", stacklevel=2)
                continue
            yield path.stem, payload

    def latest_dictionary(self) -> Optional[Dict]:
        """The newest readable compiled-dictionary payload, or None
        when the store has none."""
        for _, payload in self.iter_dictionaries():
            return payload
        return None

    # -- generic JSON blobs (journals, optimizer state, ...) ---------------

    def _json_path(self, key: str) -> Path:
        parts = Path(key).parts
        if not parts or Path(key).is_absolute() or ".." in parts:
            raise ValueError(f"invalid store key {key!r}: must be a "
                             f"relative path without '..'")
        return self.root.joinpath(*parts[:-1], parts[-1] + ".json")

    def get_json(self, key: str) -> Optional[Dict]:
        """Load a free-form JSON blob by relative key.

        Keys are relative paths (``optimize/<run>/gen-00001``); the
        blob lives at ``<root>/<key>.json``.  Absent, torn or non-dict
        blobs are a miss (None), never a crash — the contract shared
        with baselines and dictionaries.
        """
        try:
            payload = json.loads(self._json_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def put_json(self, key: str, payload: Dict) -> None:
        """Atomically persist a free-form JSON blob under
        ``<root>/<key>.json``."""
        _atomic_write_text(self._json_path(key),
                           json.dumps(payload, sort_keys=True))

    def iter_keys(self, prefix: str = "") -> Iterator[str]:
        """Enumerate stored object keys without loading payloads.

        Yields every ``*.json`` object under the root as a
        ``/``-separated relative key (suffix stripped), sorted, so
        callers — the optimizer's generation journal enumerating its
        cached candidate evaluations — see a deterministic order.
        ``prefix`` restricts the walk: ``iter_keys("optimize/abc/")``
        lists one run's blobs, ``iter_keys("objects/")`` the detection
        records.  Nothing is parsed, so a torn blob still lists (it
        reads as a miss on ``get_json``).
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob("*.json")):
            key = path.relative_to(self.root).with_suffix("").as_posix()
            if key.startswith(prefix):
                yield key

    def sweep_tmp(self, max_age: float = STALE_TMP_AGE) -> int:
        """Reap staging files orphaned under this store's root.

        Long-lived multi-writer deployments (several campaign workers
        sharing one store) call this at startup; see
        :func:`sweep_stale_tmp`.
        """
        return sweep_stale_tmp(self.root, max_age=max_age)

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))
