"""Append-only JSONL journal: crash-safe campaign checkpointing.

Every completed class appends one self-contained JSON line (record +
provenance), flushed and fsync'd, so a campaign killed at any instant
loses at most the line being written.  The first line is a header
binding the journal to a campaign *fingerprint* (a digest of the
resolved plan); on resume, a journal whose fingerprint does not match
is ignored rather than half-trusted.

Loading tolerates a torn final line — the expected artefact of a kill
mid-append — by discarding any line that fails to parse.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..core.serialize import (SerializeError, record_from_dict,
                              record_to_dict)
from ..macrotest.coverage import DetectionRecord

JOURNAL_VERSION = 1


class JournalEntry:
    """One completed class as recorded in the journal."""

    __slots__ = ("task_id", "record", "degraded", "error", "source")

    def __init__(self, task_id: str, record: DetectionRecord,
                 degraded: bool = False, error: Optional[str] = None,
                 source: str = "computed") -> None:
        self.task_id = task_id
        self.record = record
        self.degraded = degraded
        self.error = error
        self.source = source


class CampaignJournal:
    """JSONL journal of completed classes for one campaign."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # -- writing -----------------------------------------------------------

    def open(self, fingerprint: str, fresh: bool = False) -> None:
        """Open for appending; write the header when new or `fresh`."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        exists = self.path.exists() and \
            self.path.stat().st_size > 0 and not fresh
        if exists:
            # a kill mid-append leaves a torn tail with no newline;
            # terminate it so the next append starts a fresh line
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                torn = handle.read(1) != b"\n"
        self._handle = open(self.path, "a" if exists else "w")
        if not exists:
            self._append_line({"journal_version": JOURNAL_VERSION,
                               "fingerprint": fingerprint})
        elif torn:
            self._handle.write("\n")
            self._handle.flush()

    def _append_line(self, payload: Dict) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, entry: JournalEntry) -> None:
        self._append_line({
            "task_id": entry.task_id,
            "record": record_to_dict(entry.record),
            "degraded": entry.degraded,
            "error": entry.error,
            "source": entry.source,
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def compact(self) -> int:
        """Rewrite the journal down to its live entries, atomically.

        An append-only journal grows one line per completion — retried
        or re-reported classes append again, and a long campaign's
        journal can dwarf the results it checkpoints.  Compaction
        keeps the header plus the *last* entry per task id (first-seen
        task order preserved), dropping superseded and torn lines.
        This is what makes shard journals cheap to ship over the wire.

        Safe while open (the append handle is reopened on the new
        file) and a crash mid-compaction leaves the original journal
        intact (temp file + ``os.replace``).  Returns the number of
        lines dropped; a journal without a valid header is left
        untouched.
        """
        payloads = list(self._lines())
        if not payloads:
            return 0
        header = payloads[0]
        if header.get("journal_version") != JOURNAL_VERSION:
            return 0
        live: Dict[str, Dict] = {}
        order = []
        for payload in payloads[1:]:
            task_id = payload.get("task_id")
            if not task_id:
                continue
            if task_id not in live:
                order.append(task_id)
            live[task_id] = payload
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(live[task_id], sort_keys=True)
                     for task_id in order)
        try:
            raw_lines = len(self.path.read_text().splitlines())
        except OSError:
            raw_lines = 0
        was_open = self._handle is not None
        if was_open:
            self.close()
        from .store import _atomic_write_text
        _atomic_write_text(self.path, "\n".join(lines) + "\n")
        if was_open:
            self._handle = open(self.path, "a")
        return max(0, raw_lines - len(lines))

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def _lines(self) -> Iterator[Dict]:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # torn tail line from a kill mid-append: discard
                continue

    def load(self, fingerprint: Optional[str] = None
             ) -> Dict[str, JournalEntry]:
        """Completed entries keyed by task id.

        When a fingerprint is given, a journal written for a different
        campaign (different plan digest) yields nothing.
        """
        entries: Dict[str, JournalEntry] = {}
        header_seen = False
        for payload in self._lines():
            if not header_seen:
                header_seen = True
                if payload.get("journal_version") != JOURNAL_VERSION:
                    return {}
                if fingerprint is not None and \
                        payload.get("fingerprint") != fingerprint:
                    return {}
                continue
            task_id = payload.get("task_id")
            if not task_id:
                continue
            try:
                record = record_from_dict(payload["record"])
            except (KeyError, SerializeError):
                continue
            entries[task_id] = JournalEntry(
                task_id=task_id, record=record,
                degraded=bool(payload.get("degraded", False)),
                error=payload.get("error"),
                source=payload.get("source", "computed"))
        return entries
