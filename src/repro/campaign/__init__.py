"""Campaign orchestration: parallel, resumable fault-simulation runs.

This package turns the per-macro defect-oriented experiment into a
managed campaign:

* :mod:`~repro.campaign.tasks` — the pure, picklable unit of work
  (:func:`~repro.campaign.tasks.simulate_class`);
* :mod:`~repro.campaign.plan` — config -> per-macro class lists and
  engine specs;
* :mod:`~repro.campaign.store` — content-addressed on-disk results
  store (re-runs hit cache instead of re-simulating);
* :mod:`~repro.campaign.journal` — append-only JSONL checkpoint
  making campaigns crash-safe and resumable;
* :mod:`~repro.campaign.events` — structured progress events and
  live metrics (wall time, cache-hit rate, ETA);
* :mod:`~repro.campaign.runner` — the
  :class:`~repro.campaign.runner.CampaignRunner` tying it together
  over a process pool;
* :mod:`~repro.campaign.distributed` — the coordinator/worker fabric
  sharding one campaign across hosts (see ``docs/DISTRIBUTED.md``).

See ``docs/CAMPAIGNS.md`` for the operational guide.
"""

from .events import (CampaignEvent, CampaignFinished, CampaignMetrics,
                     CampaignStarted, CandidateEvaluated,
                     ClassCompleted, ConsoleReporter,
                     DiagnosisMetrics, DiagnosisMetricsCollector,
                     DictionaryBuilt, DistributedMetrics,
                     DistributedMetricsCollector, EventBus,
                     GenerationCompleted, MacroPlanned,
                     MetricsCollector, QueryBatchServed,
                     ShardClaimed, ShardCompleted, ShardReclaimed,
                     WorkerStats)
from .journal import CampaignJournal, JournalEntry
from .plan import (ALL_MACROS, MacroPlan, discover_classes,
                   ivdd_halfwidth, likelihood_order, plan_macro,
                   validate_macros)
from .runner import (CampaignOptions, CampaignResult, CampaignRunner,
                     DEFAULT_CACHE_DIR, PreparedCampaign)
from .store import (STORE_VERSION, ResultsStore, StoredRecord,
                    baseline_key, canonical, content_key,
                    dictionary_key)
from .tasks import (ANALOG_MACROS, ClassTask, EngineSpec, TaskOutcome,
                    adopt_baselines, build_engine, clear_engine_cache,
                    degraded_record, get_engine, run_task,
                    simulate_class)

__all__ = [
    "CampaignEvent", "CampaignFinished", "CampaignMetrics",
    "CampaignStarted", "CandidateEvaluated", "ClassCompleted",
    "ConsoleReporter", "GenerationCompleted",
    "DiagnosisMetrics", "DiagnosisMetricsCollector", "DictionaryBuilt",
    "DistributedMetrics", "DistributedMetricsCollector",
    "EventBus", "MacroPlanned", "MetricsCollector", "QueryBatchServed",
    "ShardClaimed", "ShardCompleted", "ShardReclaimed", "WorkerStats",
    "CampaignJournal",
    "JournalEntry", "ALL_MACROS", "MacroPlan", "discover_classes",
    "ivdd_halfwidth", "likelihood_order", "plan_macro",
    "validate_macros", "CampaignOptions", "CampaignResult",
    "CampaignRunner", "DEFAULT_CACHE_DIR", "PreparedCampaign",
    "STORE_VERSION",
    "ResultsStore", "StoredRecord", "baseline_key", "canonical",
    "content_key", "dictionary_key",
    "ANALOG_MACROS", "ClassTask", "EngineSpec", "TaskOutcome",
    "adopt_baselines", "build_engine", "clear_engine_cache",
    "degraded_record", "get_engine", "run_task", "simulate_class",
]
