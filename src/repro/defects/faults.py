"""Circuit-level fault taxonomy (the defect simulator's output).

These are exactly the catastrophic fault types of paper Table 1: shorts,
extra contacts, gate-oxide / junction / thick-oxide pinholes, opens, new
devices and shorted devices.  Each fault is a frozen, hashable record so
fault collapsing is a plain ``dict`` grouping on :meth:`collapse_key`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

#: canonical fault-type names, in paper Table 1 order
FAULT_TYPES = (
    "short",
    "extra_contact",
    "gate_oxide_pinhole",
    "junction_pinhole",
    "thick_oxide_pinhole",
    "open",
    "new_device",
    "shorted_device",
)


@dataclass(frozen=True)
class Fault:
    """Base class for circuit-level faults."""

    @property
    def fault_type(self) -> str:
        raise NotImplementedError

    def collapse_key(self) -> Tuple:
        """Key under which circuit-level-equivalent faults collapse."""
        raise NotImplementedError


@dataclass(frozen=True)
class ShortFault(Fault):
    """Resistive bridge between two or more nets.

    Attributes:
        nets: the bridged nets (>= 2).
        layer: the layer of the extra material.
        resistance: bridge resistance from the layer model.
    """

    nets: FrozenSet[str]
    layer: str
    resistance: float

    def __post_init__(self) -> None:
        if len(self.nets) < 2:
            raise ValueError("a short needs at least two nets")

    @property
    def fault_type(self) -> str:
        return "short"

    def collapse_key(self) -> Tuple:
        return ("short", tuple(sorted(self.nets)), self.resistance)

    def __str__(self) -> str:
        return (f"short({','.join(sorted(self.nets))}) "
                f"{self.resistance:g}ohm[{self.layer}]")


@dataclass(frozen=True)
class ExtraContactFault(Fault):
    """Spurious contact between two vertically adjacent conductors."""

    nets: FrozenSet[str]

    @property
    def fault_type(self) -> str:
        return "extra_contact"

    def collapse_key(self) -> Tuple:
        return ("extra_contact", tuple(sorted(self.nets)))

    def __str__(self) -> str:
        return f"extra_contact({','.join(sorted(self.nets))})"


@dataclass(frozen=True)
class GateOxidePinholeFault(Fault):
    """Gate-oxide puncture of one transistor.

    The paper models it three ways (gate to source / drain / channel) and
    keeps the worst-case signature; the model variants are produced by
    ``repro.faultsim.models``.
    """

    device: str

    @property
    def fault_type(self) -> str:
        return "gate_oxide_pinhole"

    def collapse_key(self) -> Tuple:
        return ("gate_oxide_pinhole", self.device)

    def __str__(self) -> str:
        return f"gate_oxide_pinhole({self.device})"


@dataclass(frozen=True)
class JunctionPinholeFault(Fault):
    """Diffusion-to-bulk junction leak."""

    net: str
    bulk_net: str

    @property
    def fault_type(self) -> str:
        return "junction_pinhole"

    def collapse_key(self) -> Tuple:
        return ("junction_pinhole", self.net, self.bulk_net)

    def __str__(self) -> str:
        return f"junction_pinhole({self.net}->{self.bulk_net})"


@dataclass(frozen=True)
class ThickOxidePinholeFault(Fault):
    """Field/inter-level oxide puncture between crossing conductors."""

    nets: FrozenSet[str]

    @property
    def fault_type(self) -> str:
        return "thick_oxide_pinhole"

    def collapse_key(self) -> Tuple:
        return ("thick_oxide_pinhole", tuple(sorted(self.nets)))

    def __str__(self) -> str:
        return f"thick_oxide_pinhole({','.join(sorted(self.nets))})"


@dataclass(frozen=True)
class OpenFault(Fault):
    """A net split into disconnected terminal groups.

    Attributes:
        net: the broken net.
        partition: frozenset of terminal groups; each group is a
            frozenset of ``"device:terminal_index"`` labels.
        layer: the layer on which material went missing.
    """

    net: str
    partition: FrozenSet[FrozenSet[str]]
    layer: str

    def __post_init__(self) -> None:
        if len(self.partition) < 2:
            raise ValueError("an open needs at least two islands")

    @property
    def fault_type(self) -> str:
        return "open"

    def collapse_key(self) -> Tuple:
        return ("open", self.net,
                tuple(sorted(tuple(sorted(g)) for g in self.partition)))

    def __str__(self) -> str:
        return f"open({self.net}, {len(self.partition)} islands)"


@dataclass(frozen=True)
class NewDeviceFault(Fault):
    """Parasitic transistor created by extra poly crossing diffusion.

    Attributes:
        net: the diffusion net turned into a channel.
        gate_net: net of the poly the defect merged with, or None for a
            floating parasitic gate.
        partition: terminal split of the diffusion net (channel sides).
        polarity: channel polarity from the diffusion layer.
    """

    net: str
    gate_net: Optional[str]
    partition: FrozenSet[FrozenSet[str]]
    polarity: str

    @property
    def fault_type(self) -> str:
        return "new_device"

    def collapse_key(self) -> Tuple:
        return ("new_device", self.net, self.gate_net,
                tuple(sorted(tuple(sorted(g)) for g in self.partition)))

    def __str__(self) -> str:
        gate = self.gate_net or "<floating>"
        return f"new_device({self.net}, gate={gate})"


@dataclass(frozen=True)
class ShortedDeviceFault(Fault):
    """Transistor channel permanently conducting (bridged gate area)."""

    device: str

    @property
    def fault_type(self) -> str:
        return "shorted_device"

    def collapse_key(self) -> Tuple:
        return ("shorted_device", self.device)

    def __str__(self) -> str:
        return f"shorted_device({self.device})"
