"""Monte Carlo defect sprinkling (the VLASIC core loop).

Defects are thrown uniformly over the cell's bounding box (slightly
expanded so edge features see realistic defect exposure), with mechanism
chosen by relative density and diameter drawn from the 1/x^3 size
distribution.  Most defects land harmlessly; the analyzer decides which
ones become circuit-level faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..layout.cell import LayoutCell
from ..layout.geometry import Disk
from .mechanisms import Defect, MECHANISMS
from .statistics import DefectStatistics

#: bounding-box expansion so border wires get full defect exposure (um)
EDGE_MARGIN = 2.0


def sprinkle(cell: LayoutCell, n_defects: int,
             stats: Optional[DefectStatistics] = None,
             seed: int = 0,
             rng: Optional[np.random.Generator] = None) -> List[Defect]:
    """Generate *n_defects* random defects over the cell.

    Deterministic for a given seed.

    Args:
        cell: target layout.
        n_defects: number of defects to throw.
        stats: defect statistics (defaults to the calibrated model).
        seed: RNG seed (ignored when *rng* is given).
        rng: explicit generator; pass one to share a stream across
            calls instead of reseeding per call.
    """
    return list(iter_sprinkle(cell, n_defects, stats=stats, seed=seed,
                              rng=rng))


def iter_sprinkle(cell: LayoutCell, n_defects: int,
                  stats: Optional[DefectStatistics] = None,
                  seed: int = 0, batch: int = 4096,
                  rng: Optional[np.random.Generator] = None
                  ) -> Iterator[Defect]:
    """Streaming version of :func:`sprinkle` for large campaigns."""
    if n_defects < 0:
        raise ValueError("n_defects must be non-negative")
    stats = stats or DefectStatistics()
    rng = rng if rng is not None else np.random.default_rng(seed)
    box = cell.bbox().expanded(EDGE_MARGIN)

    remaining = n_defects
    while remaining > 0:
        n = min(batch, remaining)
        remaining -= n
        # one batched draw per stream keeps the per-defect RNG order
        # identical to the historical scalar loop for a given seed
        names = stats.sample_mechanisms(rng, n)
        xs = rng.uniform(box.x0, box.x1, n)
        ys = rng.uniform(box.y0, box.y1, n)
        sizes = stats.sizes.sample(rng, n)
        uniques, inverse = np.unique(np.asarray(names, dtype=str),
                                     return_inverse=True)
        mechs = [MECHANISMS[str(name)] for name in uniques]
        sized = np.array([m.sized for m in mechs], dtype=bool)[inverse]
        radii = np.where(sized, np.asarray(sizes, dtype=float),
                         stats.pinhole_diameter) / 2.0
        for mech_id, x, y, radius in zip(inverse.tolist(), xs.tolist(),
                                         ys.tolist(), radii.tolist()):
            yield Defect(mechanism=mechs[mech_id],
                         disk=Disk(x, y, radius))
