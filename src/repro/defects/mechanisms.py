"""Spot-defect mechanisms (what can physically go wrong).

Each mechanism names a physical event — extra or missing material on one
layer, a spurious contact, or an oxide pinhole — together with the layer
it acts on.  The analyzer (`repro.defects.analyze`) translates a located,
sized mechanism instance into a circuit-level fault, or into no fault at
all when the defect lands on empty silicon (the overwhelmingly common
case: in the paper only ~2 % of 25 000 sprinkled defects caused faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..layout.geometry import Disk


@dataclass(frozen=True)
class DefectMechanism:
    """A physical defect mechanism.

    Attributes:
        name: canonical mechanism name.
        category: ``"extra"``, ``"missing"``, ``"pinhole"`` or
            ``"contact"``.
        layer: acted-on layer (None for pinholes, which act on oxides
            between layers).
        sized: whether the defect diameter follows the size
            distribution (material defects) or is point-like (pinholes).
    """

    name: str
    category: str
    layer: Optional[str]
    sized: bool


def _build() -> Dict[str, DefectMechanism]:
    mechanisms = {}

    def add(name, category, layer, sized=True):
        mechanisms[name] = DefectMechanism(name, category, layer, sized)

    for layer in ("metal1", "metal2", "poly", "ndiff", "pdiff"):
        add(f"extra_{layer}", "extra", layer)
        add(f"missing_{layer}", "missing", layer)
    add("missing_contact", "missing", "contact")
    add("missing_via", "missing", "via")
    add("extra_contact", "contact", "contact", sized=False)
    add("pinhole_gate", "pinhole", None, sized=False)
    add("pinhole_junction", "pinhole", None, sized=False)
    add("pinhole_thick", "pinhole", None, sized=False)
    return mechanisms


MECHANISMS: Dict[str, DefectMechanism] = _build()


@dataclass(frozen=True)
class Defect:
    """One sprinkled defect: a mechanism at a location with a size."""

    mechanism: DefectMechanism
    disk: Disk

    def __str__(self) -> str:
        return (f"{self.mechanism.name}@({self.disk.cx:.1f},"
                f"{self.disk.cy:.1f}) d={self.disk.diameter:.2f}um")


def mechanism(name: str) -> DefectMechanism:
    """Look up a mechanism by name.

    Raises:
        KeyError: unknown mechanism, message lists the catalogue.
    """
    try:
        return MECHANISMS[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; known: {sorted(MECHANISMS)}")
