"""Synthesized spot-defect statistics.

The paper used proprietary Philips fab statistics as the defect
simulator's input.  We synthesise an equivalent: per-mechanism relative
densities and the standard ``1/x^3`` defect-size distribution used
throughout the IFA literature (Stapper's model: the density of defects of
diameter x falls off as x^-3 above the resolution limit).

Calibration: the relative densities below were tuned so that Monte Carlo
sprinkling on our synthesised comparator layout reproduces the *shape* of
paper Table 1 — extra-material (metallisation) defects dominate, so >95 %
of the resulting faults are shorts; gate-oxide and junction pinholes
contribute a few per cent; opens are a tiny fraction of faults but a
large fraction of fault classes.  See EXPERIMENTS.md for measured-vs-
paper marginals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from .mechanisms import MECHANISMS, DefectMechanism


@dataclass(frozen=True)
class SizeDistribution:
    """Truncated inverse-cube defect-diameter distribution.

    p(x) ~ 1/x^3 on [d_min, d_max] (um).  Sampling uses the closed-form
    inverse CDF.
    """

    d_min: float = 1.0
    d_max: float = 30.0

    def __post_init__(self) -> None:
        if not 0 < self.d_min < self.d_max:
            raise ValueError("need 0 < d_min < d_max")

    def sample(self, rng: np.random.Generator, n: Optional[int] = None):
        """Draw defect diameters (um)."""
        u = rng.random(n)
        a2 = self.d_min ** -2
        b2 = self.d_max ** -2
        return (a2 - u * (a2 - b2)) ** -0.5

    def mean(self) -> float:
        """Analytic mean diameter."""
        a, b = self.d_min, self.d_max
        # E[x] for p(x) = C x^-3: C * int(x^-2) with C = 2/(a^-2 - b^-2)
        return 2.0 * (1.0 / a - 1.0 / b) / (a ** -2 - b ** -2)


#: relative defect densities per mechanism (arbitrary units; only ratios
#: matter).  Extra metallisation dominates, as in any real CMOS line of
#: the era — this is what makes >95 % of faults shorts.
DEFAULT_DENSITIES: Dict[str, float] = {
    "extra_metal1": 45.0,
    "extra_metal2": 30.0,
    "extra_poly": 12.0,
    "extra_ndiff": 4.0,
    "extra_pdiff": 4.0,
    "missing_metal1": 0.06,
    "missing_metal2": 0.05,
    "missing_poly": 0.30,
    "missing_ndiff": 0.02,
    "missing_pdiff": 0.02,
    "missing_contact": 0.05,
    "missing_via": 0.05,
    "extra_contact": 1.0,
    "pinhole_gate": 1.6,
    "pinhole_junction": 1.3,
    "pinhole_thick": 0.6,
}


@dataclass(frozen=True)
class DefectStatistics:
    """Complete statistical model handed to the sprinkler.

    Attributes:
        densities: relative density per mechanism name.
        sizes: defect-size distribution for sized (material) defects.
        pinhole_diameter: nominal diameter of pinhole defects (um) —
            pinholes are point-like; only their location matters.
    """

    densities: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DENSITIES))
    sizes: SizeDistribution = field(default_factory=SizeDistribution)
    pinhole_diameter: float = 0.4

    def __post_init__(self) -> None:
        unknown = set(self.densities) - set(MECHANISMS)
        if unknown:
            raise ValueError(f"unknown mechanisms: {sorted(unknown)}")
        if any(d < 0 for d in self.densities.values()):
            raise ValueError("densities must be non-negative")
        if not any(self.densities.values()):
            raise ValueError("at least one density must be positive")

    def mechanism_names(self):
        return [name for name, d in sorted(self.densities.items()) if d > 0]

    def mechanism_probabilities(self) -> Dict[str, float]:
        """Normalised probability of each mechanism."""
        total = sum(self.densities.values())
        return {name: d / total
                for name, d in sorted(self.densities.items()) if d > 0}

    def sample_mechanisms(self, rng: np.random.Generator,
                          n: int) -> np.ndarray:
        """Draw *n* mechanism names i.i.d. by density."""
        probs = self.mechanism_probabilities()
        names = list(probs)
        p = np.array([probs[k] for k in names])
        return rng.choice(np.array(names, dtype=object), size=n, p=p)

    def scaled(self, **overrides: float) -> "DefectStatistics":
        """Copy with some mechanism densities replaced (what-if knob)."""
        densities = dict(self.densities)
        unknown = set(overrides) - set(MECHANISMS)
        if unknown:
            raise ValueError(f"unknown mechanisms: {sorted(unknown)}")
        densities.update(overrides)
        return replace(self, densities=densities)
