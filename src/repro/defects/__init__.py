"""VLASIC-equivalent catastrophic defect simulator.

Pipeline: :func:`sprinkle` Monte Carlo defects over a layout cell,
:func:`analyze_defects` to extract circuit-level faults, :func:`collapse`
into fault classes, :func:`type_table` for paper Table 1 accounting.
"""

from .analyze import analyze_defect, analyze_defects
from .calibrate import (CalibrationResult, calibrate, measure_type_mix)
from .collapse import (FaultClass, TypeRow, collapse, rescale_magnitudes,
                       type_table)
from .faults import (FAULT_TYPES, ExtraContactFault, Fault,
                     GateOxidePinholeFault, JunctionPinholeFault,
                     NewDeviceFault, OpenFault, ShortFault,
                     ShortedDeviceFault, ThickOxidePinholeFault)
from .mechanisms import MECHANISMS, Defect, DefectMechanism, mechanism
from .sprinkle import iter_sprinkle, sprinkle
from .statistics import (DEFAULT_DENSITIES, DefectStatistics,
                         SizeDistribution)

__all__ = [
    "analyze_defect", "analyze_defects", "CalibrationResult",
    "calibrate", "measure_type_mix", "FaultClass", "TypeRow",
    "collapse", "rescale_magnitudes", "type_table", "FAULT_TYPES",
    "ExtraContactFault", "Fault", "GateOxidePinholeFault",
    "JunctionPinholeFault", "NewDeviceFault", "OpenFault", "ShortFault",
    "ShortedDeviceFault", "ThickOxidePinholeFault", "MECHANISMS",
    "Defect", "DefectMechanism", "mechanism", "iter_sprinkle", "sprinkle",
    "DEFAULT_DENSITIES", "DefectStatistics", "SizeDistribution",
]
