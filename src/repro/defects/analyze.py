"""Defect -> circuit-level fault extraction.

Given one sprinkled :class:`Defect` on a :class:`LayoutCell`, decide
whether it causes a circuit-level fault and, if so, which one:

* extra material bridging >= 2 nets on its layer -> short;
* extra poly severing a diffusion wire -> new (parasitic) device;
* missing material spanning a wire's width -> open (with the exact
  terminal partition from connectivity re-extraction);
* missing poly over a transistor channel -> shorted device;
* spurious contact / oxide pinholes -> the corresponding resistive leak.

Most defects hit empty area or a single net and cause nothing — exactly
the behaviour the paper reports (25 000 defects -> a few hundred faults).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..layout.cell import LayoutCell, Shape
from ..layout.extract import net_partition_without
from ..layout.geometry import Disk, disk_cuts_rect, disk_intersects_rect
from ..layout.index import SpatialIndex
from ..layout.layers import layer as lookup_layer
from .faults import (ExtraContactFault, Fault, GateOxidePinholeFault,
                     JunctionPinholeFault, NewDeviceFault, OpenFault,
                     ShortFault, ShortedDeviceFault, ThickOxidePinholeFault)
from .mechanisms import Defect

_CONDUCTOR_LAYERS = ("metal1", "metal2", "poly", "ndiff", "pdiff")
_DIFF_LAYERS = ("ndiff", "pdiff")


def analyze_defect(cell: LayoutCell, defect: Defect,
                   index: Optional[SpatialIndex] = None
                   ) -> Optional[Fault]:
    """Translate one defect into a circuit-level fault (or None).

    Args:
        index: optional spatial index over the cell; purely a speedup,
            results are identical with or without it.
    """
    category = defect.mechanism.category
    if category == "extra":
        return _analyze_extra(cell, defect, index)
    if category == "missing":
        return _analyze_missing(cell, defect, index)
    if category == "contact":
        return _analyze_extra_contact(cell, defect, index)
    if category == "pinhole":
        return _analyze_pinhole(cell, defect, index)
    raise ValueError(f"unknown defect category {category!r}")


def analyze_defects(cell: LayoutCell, defects,
                    index: Optional[SpatialIndex] = None) -> List[Fault]:
    """Batch version; drops harmless defects.

    Builds a spatial index once for the whole campaign unless one is
    supplied.
    """
    if index is None:
        index = SpatialIndex(cell)
    faults = []
    for d in defects:
        fault = analyze_defect(cell, d, index)
        if fault is not None:
            faults.append(fault)
    return faults


def _disk_candidates(cell: LayoutCell, index: Optional[SpatialIndex],
                     layer: str, disk: Disk) -> List[Shape]:
    if index is not None:
        return index.candidates_for_disk(layer, disk)
    return cell.shapes_on(layer)


def _point_candidates(cell: LayoutCell, index: Optional[SpatialIndex],
                      layer: str, x: float, y: float) -> List[Shape]:
    if index is not None:
        return index.candidates_at_point(layer, x, y)
    return cell.shapes_on(layer)


# -- extra material ---------------------------------------------------------


def _analyze_extra(cell: LayoutCell, defect: Defect,
                   index: Optional[SpatialIndex] = None
                   ) -> Optional[Fault]:
    layer_name = defect.mechanism.layer
    disk = defect.disk
    hit = [s for s in _disk_candidates(cell, index, layer_name, disk)
           if disk_intersects_rect(disk, s.rect)]
    nets = {s.net for s in hit}
    if len(nets) >= 2:
        return ShortFault(nets=frozenset(nets), layer=layer_name,
                          resistance=lookup_layer(layer_name)
                          .short_resistance)
    if layer_name == "poly":
        return _extra_poly_new_device(cell, disk, hit, index)
    return None


def _extra_poly_new_device(cell: LayoutCell, disk: Disk,
                           hit_poly: Sequence[Shape],
                           index: Optional[SpatialIndex] = None
                           ) -> Optional[Fault]:
    """Extra poly crossing a diffusion wire creates a parasitic MOSFET."""
    for diff_layer in _DIFF_LAYERS:
        for shape in _disk_candidates(cell, index, diff_layer, disk):
            if not disk_cuts_rect(disk, shape.rect):
                continue
            partition = net_partition_without(cell, shape.net, [shape])
            if len(partition) < 2:
                continue
            gate_net = hit_poly[0].net if hit_poly else None
            polarity = "n" if diff_layer == "ndiff" else "p"
            return NewDeviceFault(
                net=shape.net, gate_net=gate_net,
                partition=frozenset(partition), polarity=polarity)
    return None


# -- missing material --------------------------------------------------------


def _analyze_missing(cell: LayoutCell, defect: Defect,
                     index: Optional[SpatialIndex] = None
                     ) -> Optional[Fault]:
    layer_name = defect.mechanism.layer
    disk = defect.disk
    cut = [s for s in _disk_candidates(cell, index, layer_name, disk)
           if s.purpose != "gate" and disk_cuts_rect(disk, s.rect)]
    if not cut:
        return None

    if layer_name == "poly":
        shorted = _missing_poly_shorted_device(cell, disk, cut)
        if shorted is not None:
            return shorted

    # opens: first net whose terminals genuinely separate
    for net in sorted({s.net for s in cut}):
        removed = [s for s in cut if s.net == net]
        partition = net_partition_without(cell, net, removed)
        if len(partition) >= 2:
            return OpenFault(net=net, partition=frozenset(partition),
                             layer=layer_name)
    return None


def _missing_poly_shorted_device(cell: LayoutCell, disk: Disk,
                                 cut: Sequence[Shape]
                                 ) -> Optional[Fault]:
    """Missing poly over a channel bridges source and drain."""
    for shape in cut:
        if shape.device is None:
            continue
        dev = cell.devices.get(shape.device)
        if dev is None or dev.kind != "mosfet" or dev.gate_rect is None:
            continue
        if disk_intersects_rect(disk, dev.gate_rect):
            return ShortedDeviceFault(device=dev.name)
    return None


# -- extra contact -------------------------------------------------------------


def _analyze_extra_contact(cell: LayoutCell, defect: Defect,
                           index: Optional[SpatialIndex] = None
                           ) -> Optional[Fault]:
    """A spurious contact shorts metal1 to the conductor underneath it."""
    disk = defect.disk
    m1 = [s for s in _point_candidates(cell, index, "metal1", disk.cx,
                                       disk.cy)
          if s.rect.contains_point(disk.cx, disk.cy)]
    if not m1:
        return None
    under = []
    for layer_name in ("poly", "ndiff", "pdiff"):
        under.extend(
            s for s in _point_candidates(cell, index, layer_name,
                                         disk.cx, disk.cy)
            if s.rect.contains_point(disk.cx, disk.cy))
    for top in m1:
        for bottom in under:
            if top.net != bottom.net:
                return ExtraContactFault(
                    nets=frozenset({top.net, bottom.net}))
    return None


# -- pinholes -----------------------------------------------------------------


def _analyze_pinhole(cell: LayoutCell, defect: Defect,
                     index: Optional[SpatialIndex] = None
                     ) -> Optional[Fault]:
    kind = defect.mechanism.name
    disk = defect.disk
    if kind == "pinhole_gate":
        return _gate_pinhole(cell, disk, index)
    if kind == "pinhole_junction":
        return _junction_pinhole(cell, disk, index)
    if kind == "pinhole_thick":
        return _thick_pinhole(cell, disk, index)
    raise ValueError(f"unknown pinhole mechanism {kind!r}")


def _gate_pinhole(cell: LayoutCell, disk: Disk,
                  index: Optional[SpatialIndex] = None
                  ) -> Optional[Fault]:
    if index is not None:
        shapes = [s for s in index.candidates_at_point("gate", disk.cx,
                                                       disk.cy)
                  if s.purpose == "gate"]
    else:
        shapes = cell.gate_shapes()
    for shape in shapes:
        if shape.rect.contains_point(disk.cx, disk.cy) and shape.device:
            return GateOxidePinholeFault(device=shape.device)
    return None


def _junction_pinhole(cell: LayoutCell, disk: Disk,
                      index: Optional[SpatialIndex] = None
                      ) -> Optional[Fault]:
    for layer_name in _DIFF_LAYERS:
        bulk = cell.bulk_nets.get(layer_name)
        if bulk is None:
            continue
        for shape in _point_candidates(cell, index, layer_name, disk.cx,
                                       disk.cy):
            if shape.rect.contains_point(disk.cx, disk.cy):
                if shape.net == bulk:
                    return None  # leak to its own rail: no fault
                return JunctionPinholeFault(net=shape.net, bulk_net=bulk)
    return None


def _thick_pinhole(cell: LayoutCell, disk: Disk,
                   index: Optional[SpatialIndex] = None
                   ) -> Optional[Fault]:
    """Puncture of the oxide between two stacked conductors."""
    stacked = []
    for layer_name in _CONDUCTOR_LAYERS:
        for shape in _point_candidates(cell, index, layer_name, disk.cx,
                                       disk.cy):
            if shape.rect.contains_point(disk.cx, disk.cy):
                stacked.append(shape)
    for i in range(len(stacked)):
        for j in range(i + 1, len(stacked)):
            a, b = stacked[i], stacked[j]
            if a.layer != b.layer and a.net != b.net:
                return ThickOxidePinholeFault(
                    nets=frozenset({a.net, b.net}))
    return None
