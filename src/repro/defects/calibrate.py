"""Defect-statistics calibration against target fault-type marginals.

The paper's defect statistics are proprietary fab data; ours are
synthesized and calibrated so the Monte Carlo reproduces Table 1's
fault-type mix.  This module automates that calibration: given a layout
and target fault-type fractions, it estimates each mechanism's
fault-per-defect yield on that layout and solves for mechanism densities
that hit the targets.

Because each mechanism produces (almost exclusively) one fault type,
the calibration is a per-type proportional update iterated a few times —
no general optimiser needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..layout.cell import LayoutCell
from ..layout.index import SpatialIndex
from .analyze import analyze_defect
from .faults import FAULT_TYPES
from .mechanisms import MECHANISMS, Defect
from .sprinkle import sprinkle
from .statistics import DefectStatistics

#: which fault types each mechanism (mostly) produces
MECHANISM_FAULT_TYPE: Dict[str, str] = {
    "extra_metal1": "short", "extra_metal2": "short",
    "extra_poly": "short", "extra_ndiff": "short",
    "extra_pdiff": "short",
    "missing_metal1": "open", "missing_metal2": "open",
    "missing_poly": "open", "missing_ndiff": "open",
    "missing_pdiff": "open", "missing_contact": "open",
    "missing_via": "open",
    "extra_contact": "extra_contact",
    "pinhole_gate": "gate_oxide_pinhole",
    "pinhole_junction": "junction_pinhole",
    "pinhole_thick": "thick_oxide_pinhole",
}


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration run.

    Attributes:
        statistics: the calibrated defect statistics.
        achieved: fault-type fractions the calibrated statistics give.
        iterations: update rounds performed.
    """

    statistics: DefectStatistics
    achieved: Dict[str, float]
    iterations: int


def measure_type_mix(cell: LayoutCell, stats: DefectStatistics,
                     n_defects: int = 20000, seed: int = 0
                     ) -> Dict[str, float]:
    """Fault-type fractions a statistics model produces on a layout."""
    index = SpatialIndex(cell)
    counts: Dict[str, int] = {t: 0 for t in FAULT_TYPES}
    total = 0
    for defect in sprinkle(cell, n_defects, stats=stats, seed=seed):
        fault = analyze_defect(cell, defect, index)
        if fault is None:
            continue
        counts[fault.fault_type] += 1
        total += 1
    if total == 0:
        raise ValueError("no faults at all: cannot measure the mix")
    return {t: c / total for t, c in counts.items()}


def calibrate(cell: LayoutCell, targets: Mapping[str, float],
              base: Optional[DefectStatistics] = None,
              n_defects: int = 20000, rounds: int = 4,
              seed: int = 0) -> CalibrationResult:
    """Solve for mechanism densities matching target type fractions.

    Args:
        cell: the layout the statistics are calibrated on.
        targets: fault-type -> desired fraction (types omitted keep
            whatever they get; fractions are renormalised).
        base: starting statistics (default: the shipped calibration).
        rounds: proportional-update iterations.

    Raises:
        ValueError: for unknown fault types or infeasible targets (a
            target type whose mechanisms produce no faults at all).
    """
    unknown = set(targets) - set(FAULT_TYPES)
    if unknown:
        raise ValueError(f"unknown fault types: {sorted(unknown)}")
    stats = base or DefectStatistics()
    achieved = measure_type_mix(cell, stats, n_defects, seed)
    iterations = 0
    for round_index in range(rounds):
        updates: Dict[str, float] = {}
        converged = True
        for fault_type, wanted in targets.items():
            got = achieved.get(fault_type, 0.0)
            producers = [m for m, produces in
                         MECHANISM_FAULT_TYPE.items()
                         if produces == fault_type and
                         stats.densities.get(m, 0.0) > 0]
            if wanted > 0 and not producers:
                raise ValueError(
                    f"target {fault_type!r} is infeasible: no "
                    f"producing mechanism has a positive density")
            if got == 0.0:
                if wanted == 0.0:
                    continue
                ratio = 5.0  # none sampled yet: boost and re-measure
            else:
                ratio = wanted / got
            if abs(ratio - 1.0) > 0.1:
                converged = False
            for mech in producers:
                updates[mech] = stats.densities[mech] * ratio
        if updates:
            stats = stats.scaled(**updates)
        iterations = round_index + 1
        achieved = measure_type_mix(cell, stats, n_defects,
                                    seed + iterations)
        if converged:
            break
    return CalibrationResult(statistics=stats, achieved=achieved,
                             iterations=iterations)
