"""Fault collapsing: circuit-level-equivalent faults -> fault classes.

As in the paper: "the fault collapser collapses these faults into classes
of circuit-level equivalent faults. The magnitude of a fault class
determines the likelihood of this particular type of fault."  Two shorts
between the same node pair are the same class; two opens with the same
terminal partition are the same class; and so on (the equivalence key is
each fault's :meth:`collapse_key`).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .faults import FAULT_TYPES, Fault


@dataclass(frozen=True)
class FaultClass:
    """A class of circuit-level-equivalent faults.

    Attributes:
        representative: one member fault (they are all equivalent).
        count: number of member faults (the class magnitude).
    """

    representative: Fault
    count: int

    @property
    def fault_type(self) -> str:
        return self.representative.fault_type

    def probability(self, total_faults: int) -> float:
        """Likelihood of this fault class among all observed faults."""
        if total_faults <= 0:
            raise ValueError("total_faults must be positive")
        return self.count / total_faults

    def __str__(self) -> str:
        return f"[x{self.count}] {self.representative}"


def collapse(faults: Iterable[Fault]) -> List[FaultClass]:
    """Group faults into classes, largest magnitude first.

    Ties are broken by the collapse key for determinism.
    """
    groups: Dict[Tuple, List[Fault]] = defaultdict(list)
    for fault in faults:
        groups[fault.collapse_key()].append(fault)
    classes = [FaultClass(representative=members[0], count=len(members))
               for members in groups.values()]
    classes.sort(key=lambda fc: (-fc.count,
                                 fc.representative.collapse_key()))
    return classes


@dataclass(frozen=True)
class TypeRow:
    """One row of the paper's Table 1."""

    fault_type: str
    faults: int
    fault_pct: float
    classes: int
    class_pct: float


def type_table(classes: Sequence[FaultClass]) -> List[TypeRow]:
    """Per-fault-type counts and percentages (paper Table 1).

    Rows follow the paper's order; types with zero faults are included so
    the table shape is stable.
    """
    fault_counts: Counter = Counter()
    class_counts: Counter = Counter()
    for fc in classes:
        fault_counts[fc.fault_type] += fc.count
        class_counts[fc.fault_type] += 1
    total_faults = sum(fault_counts.values())
    total_classes = sum(class_counts.values())
    rows = []
    for ft in FAULT_TYPES:
        n_f = fault_counts.get(ft, 0)
        n_c = class_counts.get(ft, 0)
        rows.append(TypeRow(
            fault_type=ft,
            faults=n_f,
            fault_pct=100.0 * n_f / total_faults if total_faults else 0.0,
            classes=n_c,
            class_pct=(100.0 * n_c / total_classes
                       if total_classes else 0.0)))
    return rows


def rescale_magnitudes(classes: Sequence[FaultClass],
                       large_classes: Sequence[FaultClass]
                       ) -> List[FaultClass]:
    """Re-weight a class list with magnitudes from a larger campaign.

    The paper first collapsed 25 000 defects into 334 classes, then
    re-sprinkled 10 000 000 defects to get statistically significant
    magnitudes for those same classes.  This helper transplants the
    large-campaign counts onto the small-campaign class identities;
    classes unseen in the large campaign keep their original counts.
    """
    large_by_key = {fc.representative.collapse_key(): fc.count
                    for fc in large_classes}
    rescaled = []
    for fc in classes:
        key = fc.representative.collapse_key()
        rescaled.append(FaultClass(representative=fc.representative,
                                   count=large_by_key.get(key, fc.count)))
    rescaled.sort(key=lambda fc: (-fc.count,
                                  fc.representative.collapse_key()))
    return rescaled
