"""Resolution analytics: what a measurement set can distinguish.

The paper's closing observation — "the overlap between different
detection mechanisms gives room for the optimization of the test
method" — cuts both ways: dropping measurements saves tester seconds
but merges fault classes into ambiguity groups.  This module
quantifies that trade so :func:`repro.testgen.optimize.optimize_test_plan`
can weigh diagnostic power against cost:

* :func:`feature_mask` — which signature features a test plan's
  measurement selection actually observes;
* :func:`distinguishability_matrix` — pairwise weighted distances
  between dictionary entries under a mask;
* :func:`expected_resolution` — the prior-weighted probability that a
  detected fault is diagnosed to a unique class, plus the ambiguity
  groups the plan induces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faultsim.goodspace import mechanism_of
from .dictionary import FaultDictionary

#: the test-plan pseudo-measurement for the whole missing-code test
#: (mirrors repro.testgen.optimize.MISSING_CODE without importing it —
#: testgen imports this module lazily, keeping the layering acyclic)
_MISSING_CODE = ("missing_codes", "*", "*")

Measure = Tuple[str, str, str]


def feature_mask(features: Sequence[str],
                 measurements: Sequence[Measure]) -> np.ndarray:
    """Boolean mask of the signature features a plan observes.

    The missing-code pseudo-measurement observes every voltage-domain
    feature (the verdict and its signature classification both come
    from that test); a current measurement ``(quantity, phase,
    polarity)`` observes its own fine-grained feature plus the coarse
    mechanism bit its quantity belongs to.
    """
    observed = np.zeros(len(features), dtype=bool)
    chosen = set(tuple(m) for m in measurements)
    has_missing_code = _MISSING_CODE in chosen
    mechanisms = {mechanism_of(m).value for m in chosen
                  if m != _MISSING_CODE}
    for k, name in enumerate(features):
        parts = name.split(":")
        if parts[0] == "voltage":
            observed[k] = has_missing_code
        elif parts[0] == "mechanism":
            observed[k] = parts[1] in mechanisms
        else:  # current:<quantity>:<phase>:<polarity>
            observed[k] = tuple(parts[1:]) in chosen
    return observed


def distinguishability_matrix(dictionary: FaultDictionary,
                              mask: Optional[np.ndarray] = None
                              ) -> np.ndarray:
    """Pairwise tolerance-weighted distances between entries.

    Returns an (n, n) symmetric matrix in entry order; ``mask``
    restricts the distance to the observed features (an all-False mask
    makes every pair indistinguishable).  A zero off-diagonal element
    means the two classes form an ambiguity group under the mask.
    """
    V = dictionary.matrix()
    w = np.array(dictionary.tolerance)
    if mask is not None:
        w = np.where(np.asarray(mask, dtype=bool), w, 0.0)
    wsum = w.sum()
    if wsum <= 0:
        return np.zeros((len(dictionary), len(dictionary)))
    wn = w / wsum
    v2 = (V ** 2) @ wn
    d2 = v2[:, None] + v2[None, :] - 2.0 * (V * wn) @ V.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


@dataclass(frozen=True)
class ResolutionReport:
    """Expected diagnostic resolution of one measurement selection.

    Attributes:
        resolution: prior-weighted expected probability that a
            detected fault is pinned to exactly its own class —
            ``sum_e prior_e / |group(e)|``; 1.0 when every class is
            uniquely distinguishable.
        expected_group_size: prior-weighted mean ambiguity-group size
            (1.0 = perfect resolution).
        n_groups: distinct signature groups under the mask.
        groups: the ambiguity groups (label tuples), largest first;
            singleton groups are included.
    """

    resolution: float
    expected_group_size: float
    n_groups: int
    groups: Tuple[Tuple[str, ...], ...]

    def to_dict(self) -> Dict:
        return {"resolution": self.resolution,
                "expected_group_size": self.expected_group_size,
                "n_groups": self.n_groups,
                "groups": [list(g) for g in self.groups]}


def expected_resolution(dictionary: FaultDictionary,
                        measurements: Optional[Sequence[Measure]] = None
                        ) -> ResolutionReport:
    """Diagnostic resolution of a measurement selection.

    Groups entries whose signatures are identical on the observed
    (tolerance-carrying) features; ``measurements=None`` evaluates the
    full measurement set.  An empty dictionary reports zero
    resolution.
    """
    n = len(dictionary)
    if n == 0:
        return ResolutionReport(resolution=0.0,
                                expected_group_size=0.0,
                                n_groups=0, groups=())
    V = dictionary.matrix()
    w = np.array(dictionary.tolerance)
    if measurements is not None:
        mask = feature_mask(dictionary.features, measurements)
        w = np.where(mask, w, 0.0)
    observed = w > 0
    priors = dictionary.priors()
    if priors.sum() <= 0:
        priors = np.full(n, 1.0 / n)

    grouped: Dict[Tuple[float, ...], List[int]] = {}
    for idx in range(n):
        signature = tuple(V[idx, observed])
        grouped.setdefault(signature, []).append(idx)

    resolution = 0.0
    expected_size = 0.0
    groups: List[Tuple[str, ...]] = []
    labels = dictionary.labels
    for members in grouped.values():
        size = len(members)
        group_prior = float(priors[members].sum())
        resolution += group_prior / size
        expected_size += group_prior * size
        groups.append(tuple(sorted(labels[idx] for idx in members)))
    groups.sort(key=lambda g: (-len(g), g))
    return ResolutionReport(resolution=resolution,
                            expected_group_size=expected_size,
                            n_groups=len(groups),
                            groups=tuple(groups))
