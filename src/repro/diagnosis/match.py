"""Batch diagnosis: signature vectors -> ranked candidate classes.

The matcher computes one tolerance-weighted distance matrix for the
whole batch — a single NumPy expression over (queries x entries), no
per-class Python loop — then ranks candidates Bayesianly: the
posterior is ``prior x likelihood`` with a Gaussian match likelihood
``exp(-d^2 / 2 sigma^2)``.  Candidate *order* is the noise-floor limit
(``sigma -> 0``) of that posterior: distance strictly first, posterior
breaking ties within equal-distance groups — so an exact signature
match always outranks a near miss regardless of priors, while priors
order the members of an ambiguity group (the accidental-detection-
index spirit: likelier classes first among indistinguishables).

Verdicts:

* ``"pass"`` — the all-zero query: inside the good space, nothing to
  diagnose;
* ``"matched"`` — a unique nearest class within the match threshold;
* ``"ambiguous"`` — the nearest class shares its exact signature with
  other classes (the dictionary's ambiguity group is reported whole);
* ``"escape_unmatched"`` — the signature escapes the good space but
  no dictionary entry comes close: a defect class the campaign never
  produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.events import EventBus, QueryBatchServed
from .dictionary import FaultDictionary

#: normalised weighted distance above which a failing signature is
#: declared unmatched (binary features make d^2 a weighted fraction of
#: disagreeing features, so 0.3 ~ "less than a third disagree")
ESCAPE_THRESHOLD = 0.3

#: Gaussian likelihood width for the posterior (reporting only; the
#: candidate order is the sigma -> 0 limit)
SIGMA = 0.25

#: distances are tie-grouped at this resolution before posterior
#: tie-breaking
_DISTANCE_DECIMALS = 9


class EmptyDictionaryError(ValueError):
    """Raised when a matcher is built over a dictionary with no
    entries (the server maps this to 503)."""


@dataclass(frozen=True)
class Candidate:
    """One ranked candidate class for a query."""

    label: str
    macro: str
    distance: float
    posterior: float
    prior: float

    def to_dict(self) -> Dict:
        return {"label": self.label, "macro": self.macro,
                "distance": self.distance,
                "posterior": self.posterior, "prior": self.prior}


@dataclass(frozen=True)
class Diagnosis:
    """The matcher's verdict for one query signature."""

    verdict: str
    candidates: Tuple[Candidate, ...] = ()
    ambiguity_group: Tuple[str, ...] = ()

    @property
    def top(self) -> Optional[Candidate]:
        return self.candidates[0] if self.candidates else None

    def to_dict(self) -> Dict:
        return {"verdict": self.verdict,
                "candidates": [c.to_dict() for c in self.candidates],
                "ambiguity_group": list(self.ambiguity_group)}


class DictionaryMatcher:
    """Vectorized batch matcher over one loaded dictionary.

    Precomputes the entry matrix, tolerance weights and priors once;
    every :meth:`diagnose_batch` call is then one distance expression
    plus per-query verdict assembly.
    """

    def __init__(self, dictionary: FaultDictionary,
                 top_k: int = 5,
                 escape_threshold: float = ESCAPE_THRESHOLD,
                 bus: Optional[EventBus] = None) -> None:
        if len(dictionary) == 0:
            raise EmptyDictionaryError(
                "dictionary has no detectable classes")
        self.dictionary = dictionary
        self.top_k = max(1, top_k)
        self.escape_threshold = escape_threshold
        self.bus = bus
        self._V = dictionary.matrix()
        self._w = np.array(dictionary.tolerance)
        wsum = self._w.sum()
        if wsum <= 0:
            raise EmptyDictionaryError("tolerance weights sum to zero")
        self._wnorm = self._w / wsum
        self._priors = dictionary.priors()
        if self._priors.sum() <= 0:
            # degenerate store-built dictionaries: flat prior
            self._priors = np.full(len(dictionary),
                                   1.0 / len(dictionary))
        # V-dependent pieces of the distance, computed once
        self._Vw = self._V * self._wnorm
        self._V2w = (self._V ** 2) @ self._wnorm
        self._groups = dictionary.ambiguity_groups()
        self._labels = dictionary.labels
        self._macros = tuple(e.macro for e in dictionary.entries)

    def distances(self, queries: np.ndarray) -> np.ndarray:
        """Tolerance-weighted distances, (n_queries, n_entries).

        ``d^2 = sum_f w_f (q_f - v_f)^2 / sum_f w_f`` — for binary
        vectors this is the weighted fraction of disagreeing features,
        so distances live in [0, 1].  One matrix expression, no
        per-entry loop.
        """
        Q = np.atleast_2d(np.asarray(queries, dtype=float))
        if Q.shape[1] != self._V.shape[1]:
            raise ValueError(
                f"query width {Q.shape[1]} != dictionary feature "
                f"width {self._V.shape[1]}")
        d2 = (Q ** 2) @ self._wnorm[:, None] + self._V2w[None, :] \
            - 2.0 * Q @ self._Vw.T
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)

    def diagnose_batch(self, queries: np.ndarray) -> List[Diagnosis]:
        """Diagnose a batch of signature vectors.

        Accepts an (n_queries, n_features) array (or anything
        array-like of that shape) and returns one
        :class:`Diagnosis` per row, in order.  Emits a
        :class:`~repro.campaign.events.QueryBatchServed` event when a
        bus is attached.
        """
        started = time.perf_counter()
        Q = np.atleast_2d(np.asarray(queries, dtype=float))
        n = Q.shape[0]
        dist = self.distances(Q)
        # sigma -> 0 ranking: distance (tie-grouped) first, posterior
        # breaking ties inside equal-distance groups
        dist_r = np.round(dist, _DISTANCE_DECIMALS)
        likelihood = np.exp(-0.5 * (dist / SIGMA) ** 2)
        posterior = likelihood * self._priors[None, :]
        norms = posterior.sum(axis=1, keepdims=True)
        np.divide(posterior, norms, out=posterior, where=norms > 0)
        failing = Q.any(axis=1)
        k = min(self.top_k, dist.shape[1])

        out: List[Diagnosis] = []
        counts = {"matched": 0, "ambiguous": 0, "unmatched": 0,
                  "passed": 0}
        for i in range(n):
            if not failing[i]:
                counts["passed"] += 1
                out.append(Diagnosis(verdict="pass"))
                continue
            order = np.lexsort((-posterior[i], dist_r[i]))[:k]
            best = order[0]
            if dist_r[i, best] > self.escape_threshold:
                counts["unmatched"] += 1
                out.append(Diagnosis(
                    verdict="escape_unmatched",
                    candidates=self._candidates(order, dist[i],
                                                posterior[i])))
                continue
            group = self._groups[self._labels[best]]
            verdict = "ambiguous" if len(group) > 1 else "matched"
            counts[verdict] += 1
            out.append(Diagnosis(
                verdict=verdict,
                candidates=self._candidates(order, dist[i],
                                            posterior[i]),
                ambiguity_group=group if len(group) > 1 else ()))
        if self.bus is not None:
            self.bus.emit(QueryBatchServed(
                n_queries=n, wall=time.perf_counter() - started,
                matched=counts["matched"],
                ambiguous=counts["ambiguous"],
                unmatched=counts["unmatched"],
                passed=counts["passed"]))
        return out

    def diagnose(self, query: np.ndarray) -> Diagnosis:
        """Single-signature convenience over :meth:`diagnose_batch`."""
        return self.diagnose_batch(np.atleast_2d(query))[0]

    def _candidates(self, order: np.ndarray, dist: np.ndarray,
                    posterior: np.ndarray) -> Tuple[Candidate, ...]:
        return tuple(Candidate(
            label=self._labels[j], macro=self._macros[j],
            distance=float(dist[j]), posterior=float(posterior[j]),
            prior=float(self._priors[j])) for j in order)
