"""Multi-dictionary serving state: named snapshots with atomic reload.

One production diagnosis service fronts many fault dictionaries — one
per macro, product or process corner — and must replace any of them
while traffic is in flight (a campaign finishes, the dictionary
recompiles, the service swaps it in without dropping a query).  The
:class:`DictionaryRegistry` owns that lifecycle:

* every *name* maps to an immutable :class:`DictionarySnapshot`
  bundling the dictionary, its prebuilt vectorized
  :class:`~repro.diagnosis.match.DictionaryMatcher` and a
  :class:`QueryBatcher`;
* lookups are read-mostly: :meth:`DictionaryRegistry.get` takes the
  registry lock only long enough to fetch the snapshot reference —
  everything the request then touches is immutable, so in-flight
  readers are untouched by a concurrent swap;
* :meth:`DictionaryRegistry.reload` is *build → validate → swap*: the
  replacement dictionary is parsed and its matcher constructed
  entirely outside the swap, and only a replacement that validates
  (non-empty, well-formed, matcher builds) replaces the snapshot — a
  bad reload leaves the old snapshot serving;
* sources may be lazy: a dictionary registered by path (a dictionary
  JSON file *or* a campaign store root, whose newest
  ``dictionaries/<key>.json`` blob is used) is loaded on first use,
  so a registry fronting dozens of products pays only for the ones
  queried.

The :class:`QueryBatcher` is the serving half of the vectorized
matcher: concurrent requests are coalesced leader/follower-style into
one large ``diagnose_batch`` block — the first thread to arrive while
no block is running becomes the leader, drains everything queued
behind it, runs one NumPy distance expression for the union and
distributes the slices.  No linger timer, so an uncontended request
pays zero added latency, while under load block sizes grow with
concurrency.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..campaign.events import DictionaryBuilt, EventBus
from ..campaign.store import ResultsStore
from .dictionary import DictionaryError, FaultDictionary
from .match import Diagnosis, DictionaryMatcher, EmptyDictionaryError

#: the name the back-compat single-dictionary entry points register
#: their dictionary under
DEFAULT_NAME = "default"


class RegistryError(ValueError):
    """Raised for invalid registry operations (bad source, duplicate
    or failed-validation reload)."""


class UnknownDictionaryError(KeyError):
    """Raised when a request names a dictionary the registry does not
    serve (the HTTP layer maps this to 404)."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        self.name = name
        self.known = tuple(sorted(known))
        super().__init__(
            f"unknown dictionary {name!r} (serving: "
            f"{', '.join(self.known) or 'none'})")

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0]


class QueryBatcher:
    """Coalesces concurrent diagnose calls into one matcher block.

    Leader/follower batching without a linger timer: a thread whose
    block is not already being computed becomes the leader, drains the
    whole pending queue (its own queries included), runs a single
    ``diagnose_batch`` over the stacked block and hands each waiter
    its slice.  Threads arriving while a block is in flight queue up
    and are drained by the next leader — so batch size adapts to
    instantaneous concurrency and a lone request is never delayed.
    """

    def __init__(self, matcher: DictionaryMatcher) -> None:
        self.matcher = matcher
        self._cond = threading.Condition()
        self._pending: List[_PendingQueries] = []
        self._running = False
        # stats (guarded by _cond): matcher blocks actually run,
        # requests and queries that went through them, largest block
        self.blocks = 0
        self.requests = 0
        self.queries = 0
        self.max_block = 0

    def diagnose(self, queries: np.ndarray) -> List[Diagnosis]:
        """Diagnose ``queries``, possibly coalesced with concurrent
        callers; returns this caller's diagnoses in query order."""
        item = _PendingQueries(queries)
        batch: Optional[List[_PendingQueries]] = None
        with self._cond:
            self._pending.append(item)
            while batch is None:
                if item.done.is_set():
                    break
                if not self._running:
                    self._running = True
                    batch, self._pending = self._pending, []
                    break
                self._cond.wait()
        if batch is not None:
            try:
                self._execute(batch)
            finally:
                with self._cond:
                    self._running = False
                    self._cond.notify_all()
        item.done.wait()
        if item.error is not None:
            raise item.error
        return item.result

    def _execute(self, batch: List[_PendingQueries]) -> None:
        """Run one stacked block and distribute the slices (leader
        only, outside the lock)."""
        try:
            if len(batch) == 1:
                results = [self.matcher.diagnose_batch(
                    batch[0].queries)]
            else:
                stacked = np.vstack([b.queries for b in batch])
                flat = self.matcher.diagnose_batch(stacked)
                results, offset = [], 0
                for b in batch:
                    n = b.queries.shape[0]
                    results.append(flat[offset:offset + n])
                    offset += n
        except Exception as exc:  # matcher failure fails the block
            for b in batch:
                b.error = exc
                b.done.set()
            return
        n_rows = sum(b.queries.shape[0] for b in batch)
        with self._cond:
            self.blocks += 1
            self.requests += len(batch)
            self.queries += n_rows
            self.max_block = max(self.max_block, n_rows)
        for b, result in zip(batch, results):
            b.result = result
            b.done.set()

    def stats(self) -> Dict:
        with self._cond:
            return {"blocks": self.blocks, "requests": self.requests,
                    "queries": self.queries,
                    "max_block": self.max_block}


class _PendingQueries:
    __slots__ = ("queries", "result", "error", "done")

    def __init__(self, queries: np.ndarray) -> None:
        self.queries = np.atleast_2d(np.asarray(queries, dtype=float))
        self.result: List[Diagnosis] = []
        self.error: Optional[Exception] = None
        self.done = threading.Event()


class DictionarySnapshot:
    """One immutable serving generation of a named dictionary.

    Everything a request needs — the dictionary, the matcher, the
    batcher — is bound at construction; a hot-reload builds a whole
    new snapshot and swaps the reference, so a request that already
    holds this snapshot finishes against consistent state.

    ``matcher`` and ``batcher`` are None exactly when the dictionary
    has no detectable classes (the server answers 503 from that).
    """

    __slots__ = ("name", "version", "dictionary", "matcher",
                 "batcher", "source", "loaded_at",
                 "_loaded_monotonic")

    def __init__(self, name: str, version: int,
                 dictionary: FaultDictionary,
                 source: Optional[str] = None,
                 top_k: int = 5,
                 bus: Optional[EventBus] = None) -> None:
        self.name = name
        self.version = version
        self.dictionary = dictionary
        self.source = source
        # wall stamp for display; age is measured on the monotonic
        # clock so an NTP step cannot make a snapshot look ageless
        # or prehistoric
        self.loaded_at = time.time()
        self._loaded_monotonic = time.monotonic()
        self.matcher: Optional[DictionaryMatcher] = None
        self.batcher: Optional[QueryBatcher] = None
        try:
            self.matcher = DictionaryMatcher(dictionary, top_k=top_k,
                                             bus=bus)
            self.batcher = QueryBatcher(self.matcher)
        except EmptyDictionaryError:
            pass

    def describe(self) -> Dict:
        """JSON-able summary (the ``/v1/dictionaries`` row)."""
        d = self.dictionary
        return {
            "name": self.name,
            "version": self.version,
            "classes": len(d),
            "features": len(d.features),
            "macros": list(d.macros),
            "undetected": len(d.meta.get("undetected", ())),
            "source": self.source,
            "loaded_at": self.loaded_at,
            "empty": self.matcher is None,
        }

    def age(self) -> float:
        """Seconds since this snapshot was built (monotonic, so an
        NTP step cannot make it negative or jump)."""
        return time.monotonic() - self._loaded_monotonic


def load_dictionary_source(source: Union[str, Path]
                           ) -> FaultDictionary:
    """Load a dictionary from a *source path*.

    A file is a dictionary JSON (``FaultDictionary.save`` output).  A
    directory is a campaign store root: the newest blob under its
    ``dictionaries/`` tree is served — the store-side cache the
    campaign build already maintains doubles as the serving source, so
    ``diagnose serve --dictionary adc=.repro-cache`` picks up each
    recompiled dictionary on the next reload with no export step.
    """
    path = Path(source)
    if path.is_dir():
        store = ResultsStore(path)
        payload = store.latest_dictionary()
        if payload is None:
            raise RegistryError(
                f"store {path} has no compiled dictionaries")
        return FaultDictionary.from_dict(payload)
    return FaultDictionary.load(path)


class _Slot:
    __slots__ = ("snapshot", "source", "top_k", "versions")

    def __init__(self, snapshot: Optional[DictionarySnapshot],
                 source: Optional[str], top_k: int) -> None:
        self.snapshot = snapshot
        self.source = source
        self.top_k = top_k
        self.versions = snapshot.version if snapshot else 0


class DictionaryRegistry:
    """Named, versioned dictionaries behind one read-mostly lock."""

    def __init__(self, top_k: int = 5,
                 bus: Optional[EventBus] = None) -> None:
        self.top_k = top_k
        self.bus = bus
        self._lock = threading.RLock()
        self._slots: Dict[str, _Slot] = {}
        self._default: Optional[str] = None

    # -- registration -------------------------------------------------------

    def register(self, name: str,
                 dictionary: Optional[FaultDictionary] = None,
                 source: Optional[Union[str, Path]] = None,
                 lazy: bool = False,
                 default: bool = False,
                 top_k: Optional[int] = None) -> None:
        """Serve ``dictionary`` (or the dictionary at ``source``)
        under ``name``.

        Exactly one of ``dictionary`` / ``source`` is required; with
        ``lazy=True`` a ``source`` is not read until the first
        request that needs it.  The first registration (or any with
        ``default=True``) becomes the default dictionary requests get
        when they don't name one.
        """
        if (dictionary is None) == (source is None):
            raise RegistryError(
                "register() needs exactly one of dictionary= or "
                "source=")
        if lazy and source is None:
            raise RegistryError("lazy registration needs a source")
        top_k = self.top_k if top_k is None else top_k
        src = str(source) if source is not None else None
        with self._lock:
            if name in self._slots:
                raise RegistryError(
                    f"dictionary {name!r} is already registered "
                    f"(reload() replaces it)")
            snapshot = None
            if not lazy:
                if dictionary is None:
                    dictionary = load_dictionary_source(src)
                snapshot = self._snapshot(name, 1, dictionary, src,
                                          top_k)
            self._slots[name] = _Slot(snapshot, src, top_k)
            if default or self._default is None:
                self._default = name

    def _snapshot(self, name: str, version: int,
                  dictionary: FaultDictionary, source: Optional[str],
                  top_k: int) -> DictionarySnapshot:
        snapshot = DictionarySnapshot(name, version, dictionary,
                                      source=source, top_k=top_k,
                                      bus=self.bus)
        if self.bus is not None:
            self.bus.emit(DictionaryBuilt(
                classes=len(dictionary),
                undetected=len(dictionary.meta.get("undetected",
                                                   ())),
                macros=dictionary.macros,
                features=len(dictionary.features),
                source="registry"))
        return snapshot

    # -- lookup -------------------------------------------------------------

    @property
    def default_name(self) -> Optional[str]:
        with self._lock:
            return self._default

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._slots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._slots

    def get(self, name: Optional[str] = None) -> DictionarySnapshot:
        """The current snapshot for ``name`` (default dictionary when
        None), lazily loading a path-registered source on first use.

        Raises :class:`UnknownDictionaryError` for names the registry
        does not serve and :class:`RegistryError` when a lazy source
        fails to load.
        """
        with self._lock:
            if name is None:
                name = self._default
            slot = self._slots.get(name) if name is not None else None
            if slot is None:
                raise UnknownDictionaryError(
                    name or "<default>", list(self._slots))
            if slot.snapshot is not None:
                return slot.snapshot
            source, top_k = slot.source, slot.top_k
        # lazy load outside the lock (disk + matcher build are the
        # expensive part); publish under the lock, first loader wins
        try:
            dictionary = load_dictionary_source(source)
        except (DictionaryError, RegistryError, OSError) as exc:
            raise RegistryError(
                f"lazy load of {name!r} from {source} failed: "
                f"{exc}") from exc
        with self._lock:
            slot = self._slots[name]
            if slot.snapshot is None:
                slot.versions += 1
                slot.snapshot = self._snapshot(
                    name, slot.versions, dictionary, source, top_k)
            return slot.snapshot

    def describe(self) -> List[Dict]:
        """One summary row per served dictionary (lazy entries that
        were never loaded report ``loaded: False``)."""
        with self._lock:
            items = sorted(self._slots.items())
            default = self._default
        rows = []
        for name, slot in items:
            if slot.snapshot is not None:
                row = slot.snapshot.describe()
                row["loaded"] = True
            else:
                row = {"name": name, "source": slot.source,
                       "loaded": False, "version": 0}
            row["default"] = name == default
            rows.append(row)
        return rows

    # -- hot reload ---------------------------------------------------------

    def reload(self, name: str,
               dictionary: Optional[FaultDictionary] = None,
               source: Optional[Union[str, Path]] = None
               ) -> DictionarySnapshot:
        """Build → validate → swap a replacement for ``name``.

        The replacement comes from ``dictionary``, from ``source`` (a
        new path, remembered for future reloads), or from the slot's
        registered source.  Parsing and matcher construction happen
        entirely before the swap; any failure — unreadable file,
        malformed payload, empty dictionary — raises and leaves the
        old snapshot serving.  In-flight requests holding the old
        snapshot finish against it; the next :meth:`get` sees the new
        one.  Returns the new snapshot (its ``version`` is the slot's
        reload generation).
        """
        with self._lock:
            slot = self._slots.get(name)
            if slot is None:
                raise UnknownDictionaryError(name, list(self._slots))
            if source is None and dictionary is None:
                source = slot.source
                if source is None:
                    raise RegistryError(
                        f"dictionary {name!r} has no source to "
                        f"reload from")
            top_k = slot.top_k
            next_version = slot.versions + 1
        src = str(source) if source is not None else None
        try:
            if dictionary is None:
                dictionary = load_dictionary_source(src)
            if len(dictionary) == 0:
                raise RegistryError(
                    "replacement dictionary has no detectable "
                    "classes; keeping the current snapshot")
            snapshot = self._snapshot(name, next_version, dictionary,
                                      src or slot.source, top_k)
            if snapshot.matcher is None:  # defensive; len()>0 above
                raise RegistryError(
                    "replacement dictionary failed matcher "
                    "validation")
        except (DictionaryError, OSError) as exc:
            raise RegistryError(
                f"reload of {name!r} failed validation: {exc}"
                ) from exc
        with self._lock:
            slot = self._slots[name]
            slot.versions = max(slot.versions, next_version)
            snapshot.version = slot.versions
            slot.snapshot = snapshot
            if src is not None:
                slot.source = src
            return snapshot
