"""Fault-dictionary diagnosis: invert detection records to defects.

The paper's boundary signatures (Tables 2/3) identify *which* defect
class makes a device fail, not just that it fails.  This package
compiles campaign results into queryable fault dictionaries and serves
diagnosis over them:

* :mod:`~repro.diagnosis.dictionary` — the versioned
  :class:`FaultDictionary` (per-class signature vectors, tolerance
  envelopes, priors);
* :mod:`~repro.diagnosis.build` — compile from a live campaign
  (store-cached under ``dictionaries/<key>.json``) or stream a
  populated results store;
* :mod:`~repro.diagnosis.match` — the vectorized batch
  :class:`DictionaryMatcher` (Bayesian-ranked candidates, ambiguity
  groups, escape verdicts);
* :mod:`~repro.diagnosis.analytics` — distinguishability and expected
  diagnostic resolution per test plan;
* :mod:`~repro.diagnosis.registry` — the
  :class:`DictionaryRegistry`: many named dictionaries behind one
  service, atomic hot-reload, lazy sources, request coalescing;
* :mod:`~repro.diagnosis.db` — the SQLite-indexed
  :class:`DiagnosisDB` recording every served query and verdict;
* :mod:`~repro.diagnosis.server` — the versioned (``/v1``) HTTP JSON
  service;
* :mod:`~repro.diagnosis.fleet` — the pre-fork multi-process
  :class:`DiagnosisFleet` (``serve --procs N``): one shared port,
  crash restart, graceful drain, coordinated fleet-wide hot-reload;
* :mod:`~repro.diagnosis.cli` — ``python -m repro diagnose``.

See ``docs/DIAGNOSIS.md`` for the format, the matching math and the
HTTP API reference.
"""

from .analytics import (ResolutionReport, distinguishability_matrix,
                        expected_resolution, feature_mask)
from .build import (build_dictionary, build_from_store,
                    compile_dictionary, compile_from_campaign,
                    dictionary_for_campaign,
                    labeled_records, tolerance_envelope)
from .db import SCHEMA_VERSION, DiagnosisDB, DiagnosisDBError
from .fleet import DiagnosisFleet, FleetError
from .dictionary import (DICTIONARY_VERSION, DictionaryEntry,
                         DictionaryError, FaultDictionary)
from .match import (Candidate, Diagnosis, DictionaryMatcher,
                    ESCAPE_THRESHOLD, EmptyDictionaryError)
from .registry import (DEFAULT_NAME, DictionaryRegistry,
                       DictionarySnapshot, QueryBatcher,
                       RegistryError, UnknownDictionaryError,
                       load_dictionary_source)

__all__ = [
    "ResolutionReport", "distinguishability_matrix",
    "expected_resolution", "feature_mask",
    "build_dictionary", "build_from_store", "compile_dictionary",
    "compile_from_campaign", "dictionary_for_campaign",
    "labeled_records", "tolerance_envelope",
    "DICTIONARY_VERSION", "DictionaryEntry", "DictionaryError",
    "FaultDictionary",
    "Candidate", "Diagnosis", "DictionaryMatcher", "ESCAPE_THRESHOLD",
    "EmptyDictionaryError",
    "SCHEMA_VERSION", "DiagnosisDB", "DiagnosisDBError",
    "DiagnosisFleet", "FleetError",
    "DEFAULT_NAME", "DictionaryRegistry", "DictionarySnapshot",
    "QueryBatcher", "RegistryError", "UnknownDictionaryError",
    "load_dictionary_source",
]
