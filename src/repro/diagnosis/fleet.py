"""Multi-process diagnosis serving: a pre-fork worker fleet.

One Python process caps the vectorized matcher at a single core — the
GIL serializes every NumPy dispatch the keep-alive handler threads
queue up.  This module runs *N* full :class:`~repro.diagnosis.server.
DiagnosisServer` processes accepting on one shared port, so the
dictionary matcher scales with the tester fleet instead of with one
interpreter:

* **Shared port.**  On Linux every worker binds its own listening
  socket with ``SO_REUSEPORT`` and the kernel load-balances incoming
  connections across them; elsewhere the supervisor binds a single
  listening socket before forking and the workers inherit it,
  sharing the kernel accept queue.  Either way one ``host:port``
  serves the whole fleet.
* **Own state per worker.**  Each worker process builds its own
  :class:`~repro.diagnosis.registry.DictionaryRegistry` snapshot,
  matcher and batcher from the registered sources — no shared mutable
  state crosses the fork, and a worker that dies loses only its own
  in-flight requests.
* **Supervision.**  The supervisor watches worker processes and
  restarts crashed ones with exponential backoff; the shared port
  never drops because the surviving workers (and, in ``SO_REUSEPORT``
  mode, the supervisor's bound placeholder socket) keep it open.
* **Graceful drain.**  ``SIGTERM`` (or :meth:`DiagnosisFleet.stop`)
  stops every worker accepting, finishes the in-flight keep-alive
  requests (replies carry ``Connection: close``), and only then lets
  the processes exit — zero 5xx during shutdown.
* **Coherent hot-reload.**  ``POST /v1/dictionaries/<name>/reload``
  landing on *any* worker is forwarded over that worker's control
  channel to the supervisor, which drives build→validate→swap on
  every worker and answers with the aggregate version — a client can
  never observe a torn fleet.  A reload that fails validation on the
  first worker aborts before touching the rest; a worker that fails
  after that is restarted with the full reload history replayed, so
  it rejoins at the fleet's version.  Restarted workers replay the
  same history for the same reason.
* **Fleet metrics.**  ``GET /v1/metrics`` on any worker aggregates
  every worker's counters (requests, responses, batching stats,
  matcher throughput) through the control channel — observability
  survives the fork.

The control channel is a pair of pipes per worker: a *command* pipe
the supervisor drives (reload / metrics / describe / drain / ping)
and a *forward* pipe the worker drives (fleet-wide reload and metrics
requests originating from its HTTP handlers).  Each pipe carries
strictly request→reply traffic under a lock; forward-pipe requests
are tagged with an id the supervisor echoes, so a late answer to a
call the worker already timed out is discarded rather than being
mistaken for the next call's reply.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .db import DiagnosisDB
from .registry import DictionaryRegistry, RegistryError
from .server import ApiError, DiagnosisServer, serve

#: how long the supervisor waits for a freshly spawned worker to
#: report ready (covers eager dictionary loads from slow disks)
READY_TIMEOUT = 60.0

#: how long a worker gets to finish in-flight requests on drain
DRAIN_TIMEOUT = 10.0

#: how long the supervisor waits for a worker's control reply
COMMAND_TIMEOUT = 60.0

#: crash-restart backoff: base * 2**restarts, capped
BACKOFF_BASE = 0.2
BACKOFF_CAP = 5.0

#: a worker alive longer than this before dying resets its backoff
BACKOFF_RESET = 30.0


class FleetError(RuntimeError):
    """Raised when the fleet cannot start or loses all workers."""


def reuseport_available() -> bool:
    """True where ``SO_REUSEPORT`` load-balances TCP accepts (Linux).

    Other platforms may define the constant with different semantics
    (BSD delivers every connection to one socket), so they use the
    inherited-listener fallback instead.
    """
    return sys.platform.startswith("linux") and \
        hasattr(socket, "SO_REUSEPORT")


def _reuseport_socket(address: Tuple[str, int]) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(address)
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its server."""

    index: int
    address: Tuple[str, int]
    dictionaries: List[Tuple[str, str]]
    default: Optional[str] = None
    top_k: int = 5
    lazy: bool = False
    db_path: Optional[str] = None
    verbose: bool = False
    reuseport: bool = True
    #: (name, source) reloads already applied fleet-wide, replayed at
    #: start so a restarted worker rejoins at the fleet's version
    history: List[Tuple[str, Optional[str]]] = field(
        default_factory=list)
    drain_timeout: float = DRAIN_TIMEOUT


class _WorkerController:
    """The ``server.controller`` hook inside a worker process:
    forwards fleet-wide operations to the supervisor over the forward
    pipe (one request→reply at a time)."""

    def __init__(self, conn, timeout: float = COMMAND_TIMEOUT) -> None:
        self._conn = conn
        self._lock = threading.Lock()
        self._timeout = timeout
        self._next_id = 0

    def _call(self, request: Dict) -> Dict:
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            try:
                self._conn.send({**request, "id": request_id})
                deadline = time.monotonic() + self._timeout
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or \
                            not self._conn.poll(remaining):
                        raise ApiError(
                            "fleet supervisor did not answer",
                            status=503, code="fleet_unavailable")
                    reply = self._conn.recv()
                    # a late answer to an earlier call that timed
                    # out client-side may still sit in the pipe;
                    # matching ids keeps the channel from going
                    # permanently off-by-one
                    if reply.get("id") == request_id:
                        break
            except (EOFError, OSError) as exc:
                raise ApiError(
                    f"fleet control channel broken: {exc}",
                    status=503, code="fleet_unavailable") from exc
        if not reply.get("ok"):
            raise ApiError(reply.get("message", "fleet error"),
                           status=reply.get("status", 500),
                           code=reply.get("code", "internal"))
        return reply["payload"]

    def reload(self, name: str, source: Optional[str]) -> Dict:
        return self._call({"op": "reload", "name": name,
                           "source": source})

    def metrics(self) -> Dict:
        return self._call({"op": "metrics"})


class _WorkerRuntime:
    """Drain-once state shared by the worker's signal handler, its
    control loop and its main thread."""

    def __init__(self, server: DiagnosisServer,
                 db: Optional[DiagnosisDB],
                 drain_timeout: float) -> None:
        self.server = server
        self.db = db
        self.drain_timeout = drain_timeout
        self._lock = threading.Lock()
        self._drained: Optional[bool] = None

    def drain(self) -> bool:
        with self._lock:
            if self._drained is None:
                self._drained = self.server.drain(self.drain_timeout)
            return self._drained


def _worker_control_loop(runtime: _WorkerRuntime, cmd_conn) -> None:
    """Serve the supervisor's command pipe (reload / metrics /
    describe / drain / ping) independently of HTTP handler threads —
    which is what keeps the fleet deadlock-free: a worker forwarding
    a fleet reload can still execute its own share of it."""
    server = runtime.server
    while True:
        try:
            msg = cmd_conn.recv()
        except (EOFError, OSError):
            # supervisor is gone; drain and die
            runtime.drain()
            os._exit(0)
        op = msg.get("op")
        try:
            if op == "reload":
                payload = server.local_reload(msg["name"],
                                              msg.get("source"))
                reply = {"ok": True, **payload}
            elif op == "metrics":
                reply = {"ok": True, "pid": os.getpid(),
                         "payload": server.local_metrics()}
            elif op == "describe":
                versions = {row["name"]: row.get("version", 0)
                            for row in server.registry.describe()}
                reply = {"ok": True, "pid": os.getpid(),
                         "versions": versions,
                         "active": server.active_connections}
            elif op == "drain":
                reply = {"ok": True, "drained": runtime.drain()}
            elif op == "ping":
                reply = {"ok": True, "pid": os.getpid()}
            else:
                reply = {"ok": False, "status": 500,
                         "code": "internal",
                         "message": f"unknown control op {op!r}"}
        except ApiError as exc:
            reply = {"ok": False, "status": exc.status,
                     "code": exc.code, "message": str(exc)}
        except Exception as exc:  # control must never kill the loop
            reply = {"ok": False, "status": 500, "code": "internal",
                     "message": f"{type(exc).__name__}: {exc}"}
        try:
            cmd_conn.send(reply)
        except (BrokenPipeError, OSError):
            runtime.drain()
            os._exit(0)


def _worker_main(config: WorkerConfig, cmd_conn, fwd_conn,
                 listener: Optional[socket.socket],
                 close_conns: Sequence = ()) -> int:
    """Entry point of one fleet worker process."""
    # the supervisor owns lifecycle; a terminal Ctrl-C must not kill
    # workers before they drain
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # under fork this child inherited every control-channel fd the
    # supervisor holds: its own channel's parent ends and every
    # earlier sibling's.  Any copy left open here would keep the
    # EOF-based "supervisor is gone; drain and die" path in
    # _worker_control_loop from ever firing on a SIGKILLed
    # supervisor — the fleet would run orphaned, holding the port.
    for conn in close_conns:
        try:
            conn.close()
        except OSError:
            pass
    try:
        registry = DictionaryRegistry(top_k=config.top_k)
        for name, path in config.dictionaries:
            registry.register(name, source=path, lazy=config.lazy,
                              default=(name == config.default))
        for name, source in config.history:
            registry.reload(name, source=source)
        db = DiagnosisDB(config.db_path) if config.db_path else None
        server = serve(registry=registry, top_k=config.top_k,
                       verbose=config.verbose, db=db,
                       bind_and_activate=False)
        sock = listener if listener is not None else \
            _reuseport_socket(config.address)
        server.adopt_socket(sock)
    except Exception as exc:
        try:
            fwd_conn.send({"op": "failed",
                           "error": f"{type(exc).__name__}: {exc}"})
        except (BrokenPipeError, OSError):
            pass
        return 1

    runtime = _WorkerRuntime(server, db, config.drain_timeout)
    server.controller = _WorkerController(fwd_conn)
    control = threading.Thread(
        target=_worker_control_loop, args=(runtime, cmd_conn),
        name=f"fleet-control-{config.index}", daemon=True)
    control.start()

    def _on_sigterm(signum, frame):
        # the handler must return quickly; the drain blocks on
        # in-flight requests, so it runs on its own thread
        threading.Thread(target=runtime.drain, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    fwd_conn.send({"op": "ready", "pid": os.getpid(),
                   "port": server.server_address[1]})
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        # serve_forever only exits via shutdown() — i.e. a drain is
        # in flight; finish it before releasing the process
        runtime.drain()
        try:
            server.server_close()
        except OSError:
            pass
        if db is not None:
            db.close()
    return 0


class _Worker:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, index: int, process, cmd_conn, fwd_conn,
                 pid: int, restarts: int) -> None:
        self.index = index
        self.process = process
        self.cmd_conn = cmd_conn
        self.fwd_conn = fwd_conn
        self.pid = pid
        self.restarts = restarts
        self.cmd_lock = threading.Lock()
        self.spawned_monotonic = time.monotonic()

    def close(self) -> None:
        for conn in (self.cmd_conn, self.fwd_conn):
            try:
                conn.close()
            except OSError:
                pass


#: metric leaves that aggregate by max, not sum
_MAX_KEYS = frozenset({"max_batch_wall", "max_block", "version",
                       "dictionary_classes"})

#: metric leaves that are per-process observations, not counters —
#: the supervisor substitutes fleet-level values for the top-level
#: ones and keeps the first worker's elsewhere
_FIRST_KEYS = frozenset({"uptime", "started_at", "age"})

#: derived rate/ratio leaves: dropped during the merge (summing or
#: keeping one worker's rate next to fleet-summed counters yields
#: mutually inconsistent numbers) and recomputed from the summed
#: counters afterwards
_RATE_KEYS = frozenset({"queries_per_second", "ambiguity_rate",
                        "resolution_rate"})


def _merge_numeric(dst: Dict, src: Dict) -> None:
    for key, value in src.items():
        if isinstance(value, dict):
            _merge_numeric(dst.setdefault(key, {}), value)
        elif key in _RATE_KEYS:
            continue  # recomputed by _recompute_rates after the fold
        elif isinstance(value, bool) or not isinstance(
                value, (int, float)):
            dst.setdefault(key, value)
        elif key in _FIRST_KEYS:
            dst.setdefault(key, value)
        elif key in _MAX_KEYS:
            dst[key] = max(dst.get(key, value), value)
        else:
            dst[key] = dst.get(key, 0) + value


def _recompute_rates(node: Dict) -> None:
    """Restore the rate leaves from the fleet-summed counters (wall
    time is cumulative work, so fleet qps is summed queries over
    summed wall — not one worker's local rate)."""
    for value in node.values():
        if isinstance(value, dict):
            _recompute_rates(value)
    queries = node.get("queries")
    wall = node.get("wall_time")
    if isinstance(queries, (int, float)) and \
            isinstance(wall, (int, float)):
        node["queries_per_second"] = \
            queries / wall if wall > 0 else 0.0
    if all(isinstance(node.get(k), (int, float))
           for k in ("matched", "ambiguous", "unmatched")):
        failing = (node["matched"] + node["ambiguous"] +
                   node["unmatched"])
        node["ambiguity_rate"] = \
            node["ambiguous"] / failing if failing else 0.0


def aggregate_metrics(payloads: Sequence[Dict]) -> Dict:
    """Fold per-worker ``local_metrics`` payloads into one fleet
    view: counters (including cumulative wall time) sum, high-water
    marks take the max, rates are recomputed from the summed
    counters, and the ``db`` block (one shared SQLite file — already
    fleet-wide) comes from the most recent reader instead of being
    multiplied."""
    aggregate: Dict = {}
    db_block = None
    for payload in payloads:
        payload = dict(payload)
        db_block = payload.pop("db", db_block)
        _merge_numeric(aggregate, payload)
    _recompute_rates(aggregate)
    if db_block is not None:
        aggregate["db"] = db_block
    return aggregate


class DiagnosisFleet:
    """Pre-fork supervisor for a multi-process diagnosis service.

    ``dictionaries`` uses the CLI's ``[NAME=]PATH`` spec strings (or
    pre-parsed ``(name, path)`` tuples).  :meth:`start` binds the
    shared port and spawns the workers; :meth:`stop` drains them.
    """

    def __init__(self, dictionaries: Sequence,
                 procs: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 top_k: int = 5,
                 default: Optional[str] = None,
                 lazy: bool = False,
                 db_path: Optional[str] = None,
                 verbose: bool = False,
                 reuseport: Optional[bool] = None,
                 drain_timeout: float = DRAIN_TIMEOUT) -> None:
        if procs < 1:
            raise FleetError(f"procs must be >= 1, got {procs}")
        specs = []
        for item in dictionaries:
            if isinstance(item, str):
                from .cli import parse_dictionary_specs
                specs.extend(parse_dictionary_specs([item]))
            else:
                name, path = item
                specs.append((str(name), str(path)))
        if not specs:
            raise FleetError("fleet needs at least one dictionary")
        names = [name for name, _ in specs]
        if default is not None and default not in names:
            raise RegistryError(
                f"default {default!r} names no registered dictionary")
        self.specs = specs
        self.procs = procs
        self.host = host
        self.port = port
        self.top_k = top_k
        self.default = default if default is not None else names[0]
        self.lazy = lazy
        self.db_path = str(db_path) if db_path else None
        self.verbose = verbose
        self.drain_timeout = drain_timeout
        self.reuseport = reuseport_available() if reuseport is None \
            else reuseport
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:
            self._ctx = mp.get_context("spawn")
            if not self.reuseport:
                raise FleetError(
                    "this platform supports neither SO_REUSEPORT "
                    "nor forked listener inheritance")
        self.address: Optional[Tuple[str, int]] = None
        self._placeholder: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._workers: List[_Worker] = []
        self._workers_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._history: List[Tuple[str, Optional[str]]] = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._restarts_total = 0
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind the shared port, spawn the workers, begin
        supervising.  Returns the (host, port) actually bound."""
        if self.address is not None:
            raise FleetError("fleet already started")
        if self.reuseport:
            # a bound (never listening) placeholder pins the port:
            # restarts re-bind it even if every worker is down, and
            # an ephemeral port (0) resolves before any fork
            self._placeholder = _reuseport_socket(
                (self.host, self.port))
            self.address = self._placeholder.getsockname()[:2]
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(128)
            self._listener = listener
            self.address = listener.getsockname()[:2]
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        try:
            for index in range(self.procs):
                worker = self._spawn(index, restarts=0)
                with self._workers_lock:
                    self._workers.append(worker)
        except BaseException:
            self.stop(graceful=False)
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor",
            daemon=True)
        self._monitor.start()
        return self.address

    def _spawn(self, index: int, restarts: int) -> _Worker:
        # snapshot the reload history under the reload lock: a
        # worker restarting mid-reload must replay the version the
        # fleet is converging on, not the one before it
        with self._reload_lock:
            history = list(self._history)
        config = WorkerConfig(
            index=index, address=self.address,
            dictionaries=list(self.specs), default=self.default,
            top_k=self.top_k, lazy=self.lazy, db_path=self.db_path,
            verbose=self.verbose, reuseport=self.reuseport,
            history=history,
            drain_timeout=self.drain_timeout)
        cmd_parent, cmd_child = self._ctx.Pipe()
        fwd_parent, fwd_child = self._ctx.Pipe()
        listener = self._listener if not self.reuseport else None
        # forked children inherit the supervisor-side pipe ends — the
        # new channel's and every live sibling's.  Hand the child its
        # inherited copies to close, so the only holder of a worker's
        # parent ends is the supervisor and EOF fires the moment it
        # dies.  (The spawn context re-pickles only what is passed,
        # so there is nothing stray to close there.)
        close_conns: List = []
        if self._ctx.get_start_method() == "fork":
            close_conns = [cmd_parent, fwd_parent]
            with self._workers_lock:
                for other in self._workers:
                    close_conns.extend(
                        (other.cmd_conn, other.fwd_conn))
        process = self._ctx.Process(
            target=_worker_main,
            args=(config, cmd_child, fwd_child, listener,
                  close_conns),
            name=f"diagnosis-fleet-{index}", daemon=True)
        process.start()
        cmd_child.close()
        fwd_child.close()
        if not fwd_parent.poll(READY_TIMEOUT):
            process.terminate()
            raise FleetError(
                f"worker {index} did not report ready within "
                f"{READY_TIMEOUT:.0f}s")
        hello = fwd_parent.recv()
        if hello.get("op") != "ready":
            process.join(timeout=5.0)
            raise FleetError(
                f"worker {index} failed to start: "
                f"{hello.get('error', hello)}")
        worker = _Worker(index, process, cmd_parent, fwd_parent,
                         pid=hello["pid"], restarts=restarts)
        threading.Thread(
            target=self._forward_loop, args=(worker,),
            name=f"fleet-forward-{index}", daemon=True).start()
        return worker

    def _monitor_loop(self) -> None:
        """Restart crashed workers with exponential backoff."""
        while not self._stopping.wait(0.1):
            with self._workers_lock:
                workers = list(self._workers)
            for worker in workers:
                if worker.process.is_alive() or \
                        self._stopping.is_set():
                    continue
                restarts = worker.restarts + 1
                if time.monotonic() - worker.spawned_monotonic > \
                        BACKOFF_RESET:
                    restarts = 1
                backoff = min(BACKOFF_CAP,
                              BACKOFF_BASE * 2 ** (restarts - 1))
                if self._stopping.wait(backoff):
                    return
                worker.close()
                try:
                    replacement = self._spawn(worker.index,
                                              restarts=restarts)
                except FleetError:
                    # spawn failed; leave the dead worker in place —
                    # the next monitor pass retries with more backoff
                    worker.restarts = restarts
                    worker.spawned_monotonic = time.monotonic()
                    continue
                self._restarts_total += 1
                with self._workers_lock:
                    try:
                        at = self._workers.index(worker)
                    except ValueError:
                        replacement.process.terminate()
                        continue
                    self._workers[at] = replacement

    def stop(self, graceful: bool = True,
             timeout: float = 30.0) -> None:
        """Stop the fleet: drain (when graceful), then reap."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=BACKOFF_CAP + 5.0)
        with self._workers_lock:
            workers = list(self._workers)
            self._workers = []
        if graceful and workers:
            # a drained worker's serve_forever() returns, so the
            # process exits on its own and the join below is quick
            drainers = [
                threading.Thread(
                    target=self._command,
                    args=(w, {"op": "drain"}),
                    kwargs={"timeout": self.drain_timeout + 5.0},
                    daemon=True)
                for w in workers if w.process.is_alive()]
            for t in drainers:
                t.start()
            for t in drainers:
                t.join(timeout=self.drain_timeout + 5.0)
        else:
            for worker in workers:
                if worker.process.is_alive():
                    worker.process.terminate()
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(
                timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            worker.close()
        for sock in (self._placeholder, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._placeholder = self._listener = None
        self._stopped.set()

    def run_forever(self) -> None:
        """Block until SIGTERM/SIGINT, then drain and stop (the CLI's
        foreground mode)."""
        def _on_signal(signum, frame):
            threading.Thread(target=self.stop, daemon=True).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        self._stopped.wait()

    # -- control-channel operations ----------------------------------------

    def _live_workers(self) -> List[_Worker]:
        with self._workers_lock:
            return [w for w in self._workers
                    if w.process.is_alive()]

    def _command(self, worker: _Worker, msg: Dict,
                 timeout: float = COMMAND_TIMEOUT) -> Optional[Dict]:
        with worker.cmd_lock:
            try:
                worker.cmd_conn.send(msg)
                if not worker.cmd_conn.poll(timeout):
                    return None
                return worker.cmd_conn.recv()
            except (EOFError, OSError):
                return None

    def reload(self, name: str,
               source: Optional[str] = None) -> Dict:
        """Coordinated fleet-wide build→validate→swap.

        The first worker validates the replacement: if it refuses
        (bad file, empty dictionary) the reload aborts with the
        fleet untouched.  Once one worker has swapped, the rest
        must follow — a worker that fails or is unreachable at that
        point is terminated so the supervisor restarts it with the
        reload history replayed, keeping the fleet coherent.
        """
        with self._reload_lock:
            workers = self._live_workers()
            if not workers:
                raise ApiError("no live fleet workers", status=503,
                               code="fleet_unavailable")
            msg = {"op": "reload", "name": name, "source": source}
            first = self._command(workers[0], msg)
            if first is None:
                raise ApiError(
                    "fleet worker did not answer the reload",
                    status=503, code="fleet_unavailable")
            if not first.get("ok"):
                raise ApiError(first.get("message", "reload failed"),
                               status=first.get("status", 409),
                               code=first.get("code",
                                              "reload_failed"))
            self._history.append((name, source))
            applied = [first]
            restarted = 0
            for worker in workers[1:]:
                reply = self._command(worker, msg)
                if reply is not None and reply.get("ok"):
                    applied.append(reply)
                    continue
                # past the point of no return: evict the laggard so
                # its restart replays the history
                worker.process.terminate()
                restarted += 1
            version = max(r["version"] for r in applied)
            return {"reloaded": True, "name": name,
                    "version": version,
                    "classes": applied[0]["classes"],
                    "fleet": {"workers": len(applied),
                              "restarted": restarted}}

    def metrics(self) -> Dict:
        """Aggregate every worker's counters into one payload."""
        per_worker = []
        replies = []
        for worker in self._live_workers():
            reply = self._command(worker, {"op": "metrics"})
            if reply is None or not reply.get("ok"):
                continue
            payload = reply["payload"]
            replies.append(payload)
            per_worker.append({
                "pid": reply.get("pid"),
                "index": worker.index,
                "restarts": worker.restarts,
                "uptime": payload.get("uptime"),
                "responses": sum(
                    payload.get("responses", {}).values()),
            })
        aggregate = aggregate_metrics(replies)
        aggregate["uptime"] = \
            time.monotonic() - self._started_monotonic
        aggregate["started_at"] = self._started_at
        aggregate["fleet"] = {
            "procs": self.procs,
            "workers": len(replies),
            "restarts": self._restarts_total,
            "reuseport": self.reuseport,
            "per_worker": per_worker,
        }
        return aggregate

    # -- introspection (tests, benchmarks) ----------------------------------

    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._live_workers()]

    def versions(self, name: str) -> List[int]:
        """The dictionary's version on every live worker (coherence
        check: all equal once a reload settles)."""
        out = []
        for worker in self._live_workers():
            reply = self._command(worker, {"op": "describe"})
            if reply is not None and reply.get("ok"):
                out.append(reply["versions"].get(name, 0))
        return out

    # -- forwarded requests -------------------------------------------------

    def _forward_loop(self, worker: _Worker) -> None:
        """Answer fleet-wide requests originating from one worker's
        HTTP handlers (its server.controller forwards them here)."""
        while True:
            try:
                msg = worker.fwd_conn.recv()
            except (EOFError, OSError):
                return
            op = msg.get("op")
            try:
                if op == "reload":
                    payload = self.reload(msg["name"],
                                          msg.get("source"))
                elif op == "metrics":
                    payload = self.metrics()
                else:
                    raise ApiError(
                        f"unknown forwarded op {op!r}", status=500,
                        code="internal")
                reply = {"ok": True, "payload": payload}
            except ApiError as exc:
                reply = {"ok": False, "status": exc.status,
                         "code": exc.code, "message": str(exc)}
            except Exception as exc:
                reply = {"ok": False, "status": 500,
                         "code": "internal",
                         "message": f"{type(exc).__name__}: {exc}"}
            # echo the request id so the worker's controller can
            # discard replies to calls it has already timed out
            reply["id"] = msg.get("id")
            try:
                worker.fwd_conn.send(reply)
            except (BrokenPipeError, OSError):
                return
