"""The diagnosis service: versioned HTTP API over a dictionary registry.

Pure ``http.server`` — no framework dependency — but production-shaped:

* **Versioned routes.**  ``/v1/health``, ``/v1/metrics``,
  ``/v1/dictionaries``, ``/v1/dictionaries/<name>``,
  ``POST /v1/dictionaries/<name>/reload`` and ``POST /v1/diagnose``,
  dispatched through one :class:`~repro.core.router.Router` table.
  The legacy unversioned names (``/diagnose``, ``/health``,
  ``/metrics``) are deprecated aliases of the same handler entries —
  byte-identical bodies by construction, plus a ``Deprecation``
  response header.
* **Uniform errors.**  Every failure is
  ``{"error": {"code": ..., "message": ...}}``: malformed bodies 400,
  unknown paths 404, a known path under the wrong verb 405 (with
  ``Allow``), unknown dictionaries 404, an empty dictionary 503, a
  failed reload 409.
* **Registry serving.**  Requests are served from a
  :class:`~repro.diagnosis.registry.DictionaryRegistry`: many named
  dictionaries, atomic hot-reload (in-flight requests finish on the
  snapshot they started with), lazy loading from dictionary files or
  campaign store roots.
* **Request batching.**  Concurrent ``/v1/diagnose`` requests are
  coalesced by the snapshot's
  :class:`~repro.diagnosis.registry.QueryBatcher` into large blocks
  for the vectorized matcher — one NumPy distance expression serves
  many requests.
* **Persistent results.**  With a
  :class:`~repro.diagnosis.db.DiagnosisDB` attached, every served
  batch and per-query verdict lands in indexed SQLite tables shared
  by ``/v1/metrics``, the ``report`` CLI and offline analytics.

``POST /v1/diagnose`` body: ``{"queries": [[...], ...]}`` (signature
vectors) or ``{"records": [{...}, ...]}`` (DetectionRecord dicts,
vectorized server-side), optionally ``"dictionary": <name>`` to pick a
registry entry (default: the registry's default).  Responds
``{"diagnoses": [...], "dictionary": ..., "version": ...}`` in query
order.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from ..campaign.events import (DiagnosisMetricsCollector,
                               DictionaryBuilt, EventBus)
from ..core.router import (MethodNotAllowed, RouteNotFound, Router,
                           error_envelope)
from ..core.serialize import SerializeError, record_from_dict
from .db import DiagnosisDB
from .dictionary import FaultDictionary
from .match import DictionaryMatcher
from .registry import (DEFAULT_NAME, DictionaryRegistry, RegistryError,
                       UnknownDictionaryError)

#: where the deprecation policy for the unversioned aliases lives
#: (sent in the ``Link`` header next to ``Deprecation``)
DEPRECATION_DOC = "docs/DIAGNOSIS.md"


class ApiError(Exception):
    """An HTTP-mappable service error: status + envelope code +
    message."""

    status = 400
    code = "bad_request"

    def __init__(self, message: str, status: Optional[int] = None,
                 code: Optional[str] = None) -> None:
        super().__init__(message)
        if status is not None:
            self.status = status
        if code is not None:
            self.code = code

    def envelope(self) -> Dict:
        return error_envelope(self.code, str(self))


class BadRequest(ApiError, ValueError):
    """Raised for malformed request bodies (mapped to 400)."""


def _parse_payload(body: Optional[bytes]) -> Dict:
    """Request body bytes -> JSON object, or :class:`BadRequest`."""
    try:
        payload = json.loads((body or b"").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    return payload


def _queries_from_payload(payload: Dict,
                          n_features: int) -> np.ndarray:
    """Parsed body -> (n, n_features) query array.

    Raises :class:`BadRequest` on anything malformed — the wrong
    container shape, non-numeric elements, or a feature-width
    mismatch.
    """
    queries = payload.get("queries")
    records = payload.get("records")
    if (queries is None) == (records is None):
        raise BadRequest(
            "body must carry exactly one of 'queries' or 'records'")
    if records is not None:
        if not isinstance(records, list) or not records:
            raise BadRequest("'records' must be a non-empty list")
        vectors = []
        for k, data in enumerate(records):
            if not isinstance(data, dict):
                raise BadRequest(f"records[{k}] is not an object")
            try:
                vectors.append(
                    record_from_dict(data).signature_vector())
            except SerializeError as exc:
                raise BadRequest(f"records[{k}]: {exc}") from exc
        return np.array(vectors)
    if not isinstance(queries, list) or not queries:
        raise BadRequest("'queries' must be a non-empty list")
    try:
        array = np.array(queries, dtype=float)
    except (TypeError, ValueError) as exc:
        raise BadRequest(
            f"'queries' must be numeric vectors: {exc}") from exc
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2 or array.shape[1] != n_features:
        raise BadRequest(
            f"'queries' must be vectors of width {n_features}, got "
            f"shape {array.shape}")
    return array


def _parse_queries(body: bytes, n_features: int) -> np.ndarray:
    """Request body -> query array (kept for the ``query`` CLI)."""
    return _queries_from_payload(_parse_payload(body), n_features)


class DiagnosisServer(ThreadingHTTPServer):
    """HTTP service bound to one dictionary registry.

    Request threads share the registry (read-mostly lock), the
    per-snapshot batchers (internally synchronized), the metrics
    collector and the optional SQLite backend (per-thread
    connections) — no per-request mutable state.

    As a fleet worker (``repro.diagnosis.fleet``), ``controller`` is
    set: ``/v1/metrics`` and ``POST /v1/dictionaries/<name>/reload``
    are forwarded to the supervisor so they act fleet-wide, while
    :meth:`local_metrics` / :meth:`local_reload` remain the
    single-process operations the supervisor's control channel drives
    on each worker.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 registry: Optional[DictionaryRegistry] = None,
                 dictionary: Optional[FaultDictionary] = None,
                 top_k: int = 5,
                 bus: Optional[EventBus] = None,
                 db: Optional[DiagnosisDB] = None,
                 bind_and_activate: bool = True) -> None:
        if (registry is None) == (dictionary is None):
            raise ValueError(
                "DiagnosisServer needs exactly one of registry= or "
                "dictionary= (dictionary= is the deprecated "
                "single-dictionary form)")
        super().__init__(address, _Handler,
                         bind_and_activate=bind_and_activate)
        if registry is None:
            warnings.warn(
                "DiagnosisServer(dictionary=...) is deprecated; "
                "build a DictionaryRegistry and pass registry=",
                DeprecationWarning, stacklevel=2)
            registry = DictionaryRegistry(top_k=top_k, bus=bus)
            registry.register(DEFAULT_NAME, dictionary=dictionary)
        self.registry = registry
        self.bus = bus or registry.bus or EventBus()
        self.db = db
        self.collector = DiagnosisMetricsCollector()
        self.bus.subscribe(self.collector)
        # uptime is measured on the monotonic clock (immune to NTP
        # steps); started/started_at is the wall-clock birth stamp
        self._started_monotonic = time.monotonic()
        self.started_at = time.time()
        self.started = self.started_at  # legacy alias
        #: fleet hook: when set, metrics and reload requests act
        #: fleet-wide through the supervisor's control channel
        self.controller: Optional["FleetController"] = None
        self.draining = False
        # drain() may only call shutdown() once serve_forever() has
        # started — BaseServer.shutdown() otherwise blocks forever on
        # an event that only serve_forever() sets.  The mutex makes
        # the drain-vs-serve_forever startup race deterministic.
        self._serve_mutex = threading.Lock()
        self._serving = threading.Event()
        self._counts_lock = threading.Lock()
        self._route_counts: Dict[str, int] = {}
        self._status_counts: Dict[str, int] = {}
        self._active_lock = threading.Lock()
        self._active_connections = 0
        self._adopt_bus()
        self.router = self._build_router()

    def adopt_socket(self, sock) -> None:
        """Serve on ``sock`` instead of a self-bound socket (the
        fleet's shared listener).  Construct with
        ``bind_and_activate=False``; ``sock`` must already be bound,
        and is put into listening state here if it is not yet."""
        self.socket.close()
        self.socket = sock
        self.server_address = sock.getsockname()
        host, port = self.server_address[:2]
        self.server_name = host
        self.server_port = port
        sock.listen(self.request_queue_size)

    def uptime(self) -> float:
        return time.monotonic() - self._started_monotonic

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        with self._serve_mutex:
            if self.draining:
                # a drain landed in the startup window (e.g. SIGTERM
                # before the accept loop began); never start serving
                return
            self._serving.set()
        super().serve_forever(poll_interval)

    def _adopt_bus(self) -> None:
        """Point the registry (and already-loaded matchers) at this
        server's bus so query/build events feed the metrics
        collector, and announce the loaded dictionaries."""
        if self.registry.bus is None:
            self.registry.bus = self.bus
        for row in self.registry.describe():
            if not row.get("loaded"):
                continue
            snapshot = self.registry.get(row["name"])
            if snapshot.matcher is not None and \
                    snapshot.matcher.bus is None:
                snapshot.matcher.bus = self.bus
            d = snapshot.dictionary
            self.bus.emit(DictionaryBuilt(
                classes=len(d),
                undetected=len(d.meta.get("undetected", ())),
                macros=d.macros, features=len(d.features),
                source="registry"))

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/v1/health", self._h_health)
        router.add("GET", "/v1/metrics", self._h_metrics)
        router.add("GET", "/v1/dictionaries",
                   self._h_list_dictionaries)
        router.add("GET", "/v1/dictionaries/<name>",
                   self._h_get_dictionary)
        router.add("POST", "/v1/dictionaries/<name>/reload",
                   self._h_reload)
        router.add("POST", "/v1/diagnose", self._h_diagnose)
        # deprecated unversioned aliases: same handler objects, so
        # the bodies cannot drift from their /v1/ equivalents
        router.alias("GET", "/health", "/v1/health")
        router.alias("GET", "/metrics", "/v1/metrics")
        router.alias("POST", "/diagnose", "/v1/diagnose")
        return router

    # -- legacy attribute surface ------------------------------------------

    @property
    def dictionary(self) -> FaultDictionary:
        """The default dictionary (deprecated single-dictionary
        view)."""
        return self.registry.get().dictionary

    @property
    def matcher(self) -> Optional[DictionaryMatcher]:
        """The default dictionary's matcher, or None when empty
        (deprecated single-dictionary view)."""
        return self.registry.get().matcher

    # -- accounting ---------------------------------------------------------

    def count_request(self, canonical: str, status: int) -> None:
        with self._counts_lock:
            self._route_counts[canonical] = \
                self._route_counts.get(canonical, 0) + 1
            key = str(status)
            self._status_counts[key] = \
                self._status_counts.get(key, 0) + 1

    def connection_opened(self) -> None:
        with self._active_lock:
            self._active_connections += 1

    def connection_closed(self) -> None:
        with self._active_lock:
            self._active_connections -= 1

    @property
    def active_connections(self) -> int:
        with self._active_lock:
            return self._active_connections

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight
        keep-alive requests, then return.

        ``draining`` makes every handler close its connection after
        the reply it is currently producing (``Connection: close``),
        so persistent clients fall off as soon as their in-flight
        request completes instead of holding the worker open.
        Returns True when every connection drained inside
        ``timeout``, False if stragglers (e.g. an idle keep-alive
        peer that never sends another request) were abandoned.

        Safe to call before :meth:`serve_forever` has started: the
        accept loop is then prevented from ever starting instead of
        being shut down (``shutdown()`` on a never-started server
        blocks forever).
        """
        with self._serve_mutex:
            self.draining = True
            serving = self._serving.is_set()
        if serving:
            self.shutdown()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.active_connections == 0:
                return True
            time.sleep(0.01)
        return self.active_connections == 0

    # -- handlers -----------------------------------------------------------

    def _snapshot_for(self, name: Optional[str]):
        try:
            return self.registry.get(name)
        except UnknownDictionaryError as exc:
            raise ApiError(str(exc), status=404,
                           code="unknown_dictionary") from exc
        except RegistryError as exc:
            raise ApiError(str(exc), status=503,
                           code="dictionary_unavailable") from exc

    def _h_health(self, body: Optional[bytes],
                  params: Dict) -> Tuple[int, Dict]:
        rows = self.registry.describe()
        default = self.registry.default_name
        payload = {
            "status": "ok",
            "default": default,
            "dictionaries": rows,
        }
        # the pre-/v1 top-level shape, kept for old health checks:
        # the default dictionary's geometry
        row = next((r for r in rows if r["name"] == default), None)
        payload["classes"] = row.get("classes", 0) if row else 0
        payload["features"] = row.get("features", 0) if row else 0
        payload["macros"] = row.get("macros", []) if row else []
        return 200, payload

    def _h_metrics(self, body: Optional[bytes],
                   params: Dict) -> Tuple[int, Dict]:
        if self.controller is not None:
            return 200, self.controller.metrics()
        return 200, self.local_metrics()

    def local_metrics(self) -> Dict:
        """This process's metrics payload (the whole ``/v1/metrics``
        body when serving standalone; one worker's contribution when
        the fleet supervisor aggregates)."""
        payload = self.collector.snapshot().as_dict()
        with self._counts_lock:
            payload["requests"] = dict(sorted(
                self._route_counts.items()))
            payload["responses"] = dict(sorted(
                self._status_counts.items()))
        payload["uptime"] = self.uptime()
        payload["started_at"] = self.started_at
        batchers = {}
        for row in self.registry.describe():
            if not row.get("loaded"):
                continue
            snapshot = self.registry.get(row["name"])
            if snapshot.batcher is not None:
                stats = snapshot.batcher.stats()
                stats["version"] = snapshot.version
                stats["age"] = snapshot.age()
                batchers[row["name"]] = stats
        payload["batching"] = batchers
        if self.db is not None:
            payload["db"] = self.db.summary()
            payload["db"]["per_dictionary"] = \
                self.db.per_dictionary()
        return payload

    def _h_list_dictionaries(self, body: Optional[bytes],
                             params: Dict) -> Tuple[int, Dict]:
        return 200, {"dictionaries": self.registry.describe(),
                     "default": self.registry.default_name}

    def _h_get_dictionary(self, body: Optional[bytes],
                          params: Dict) -> Tuple[int, Dict]:
        snapshot = self._snapshot_for(params["name"])
        payload = snapshot.describe()
        payload["loaded"] = True
        payload["default"] = \
            snapshot.name == self.registry.default_name
        if self.db is not None:
            payload["served"] = [
                row for row in self.db.per_dictionary()
                if row["dictionary"] == snapshot.name]
        return 200, payload

    def _h_reload(self, body: Optional[bytes],
                  params: Dict) -> Tuple[int, Dict]:
        name = params["name"]
        payload = _parse_payload(body) if body else {}
        source = payload.get("path")
        if source is not None and not isinstance(source, str):
            raise BadRequest("'path' must be a string")
        if self.controller is not None:
            # fleet worker: the supervisor drives build→validate→
            # swap on every worker, so no client ever sees a torn
            # fleet
            return 200, self.controller.reload(name, source)
        return 200, self.local_reload(name, source)

    def local_reload(self, name: str,
                     source: Optional[str] = None) -> Dict:
        """Build → validate → swap on this process's registry."""
        try:
            snapshot = self.registry.reload(name, source=source)
        except UnknownDictionaryError as exc:
            raise ApiError(str(exc), status=404,
                           code="unknown_dictionary") from exc
        except RegistryError as exc:
            raise ApiError(str(exc), status=409,
                           code="reload_failed") from exc
        if snapshot.matcher is not None and \
                snapshot.matcher.bus is None:
            snapshot.matcher.bus = self.bus
        return {"reloaded": True, "name": snapshot.name,
                "version": snapshot.version,
                "classes": len(snapshot.dictionary)}

    def _h_diagnose(self, body: Optional[bytes],
                    params: Dict) -> Tuple[int, Dict]:
        payload = _parse_payload(body)
        name = payload.get("dictionary")
        if name is not None and not isinstance(name, str):
            raise BadRequest("'dictionary' must be a string")
        snapshot = self._snapshot_for(name)
        if snapshot.batcher is None:
            raise ApiError("dictionary has no detectable classes",
                           status=503, code="empty_dictionary")
        queries = _queries_from_payload(
            payload, len(snapshot.dictionary.features))
        started = time.perf_counter()
        try:
            diagnoses = snapshot.batcher.diagnose(queries)
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        wall = time.perf_counter() - started
        if self.db is not None:
            self.db.record_batch(snapshot.name, snapshot.version,
                                 diagnoses, wall)
        return 200, {
            "diagnoses": [d.to_dict() for d in diagnoses],
            "dictionary": snapshot.name,
            "version": snapshot.version,
        }


class _Handler(BaseHTTPRequestHandler):
    server: DiagnosisServer

    #: keep-alive: every reply carries Content-Length, so persistent
    #: connections are safe and load clients skip the per-request
    #: TCP handshake
    protocol_version = "HTTP/1.1"

    #: small JSON replies on persistent connections otherwise sit in
    #: the Nagle buffer waiting for the client's delayed ACK (~40ms
    #: per request)
    disable_nagle_algorithm = True

    #: quiet by default; the CLI flips this on with --verbose
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def handle(self) -> None:
        # count live connections so a draining worker knows when its
        # in-flight keep-alive requests have finished
        self.server.connection_opened()
        try:
            BaseHTTPRequestHandler.handle(self)
        finally:
            self.server.connection_closed()

    def _reply(self, status: int, payload: dict,
               deprecated: bool = False,
               canonical: Optional[str] = None,
               allow: Optional[Tuple[str, ...]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.server.draining:
            # finish this request, then release the connection so
            # the drain completes instead of waiting out keep-alive
            self.send_header("Connection", "close")
            self.close_connection = True
        if deprecated:
            self.send_header("Deprecation", "true")
            if canonical:
                self.send_header(
                    "Link", f'<{canonical}>; '
                            f'rel="successor-version", '
                            f'<{DEPRECATION_DOC}>; '
                            f'rel="deprecation"')
        if allow:
            self.send_header("Allow", ", ".join(allow))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        server = self.server
        try:
            route = server.router.resolve(method, self.path)
        except RouteNotFound as exc:
            # fixed key: unmatched paths are attacker-controlled and
            # must not grow the counter map without bound
            server.count_request("<unmatched>", 404)
            self._reply(404, error_envelope("not_found", str(exc)))
            return
        except MethodNotAllowed as exc:
            server.count_request(exc.path, 405)
            self._reply(405, error_envelope("method_not_allowed",
                                            str(exc)),
                        allow=exc.allowed)
            return
        body: Optional[bytes] = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
        try:
            status, payload = route.handler(body, route.params)
        except ApiError as exc:
            status, payload = exc.status, exc.envelope()
        except Exception as exc:  # a handler bug must not leak HTML
            status = 500
            payload = error_envelope(
                "internal", f"{type(exc).__name__}: {exc}")
        server.count_request(route.canonical, status)
        self._reply(status, payload, deprecated=route.deprecated,
                    canonical=route.canonical)

    def do_GET(self) -> None:  # noqa: N802 — stdlib contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — stdlib contract
        self._dispatch("POST")


def serve(dictionary: Optional[FaultDictionary] = None,
          host: str = "127.0.0.1",
          port: int = 8095, top_k: int = 5,
          bus: Optional[EventBus] = None,
          verbose: bool = False,
          registry: Optional[DictionaryRegistry] = None,
          db: Optional[DiagnosisDB] = None,
          bind_and_activate: bool = True) -> DiagnosisServer:
    """Build a bound (not yet serving) server; callers run
    ``serve_forever()`` themselves — tests drive it from a thread,
    the CLI blocks on it.

    Pass ``registry=`` (many named dictionaries, hot-reload, lazy
    sources).  The old ``serve(dictionary)`` single-dictionary form
    still works but is deprecated: it wraps the dictionary in a
    one-entry registry under the name ``"default"`` and warns.
    """
    if dictionary is not None:
        if registry is not None:
            raise ValueError(
                "pass either registry= or the deprecated "
                "dictionary=, not both")
        warnings.warn(
            "serve(dictionary) is deprecated; build a "
            "DictionaryRegistry and pass registry=",
            DeprecationWarning, stacklevel=2)
        registry = DictionaryRegistry(top_k=top_k, bus=bus)
        registry.register(DEFAULT_NAME, dictionary=dictionary)
    server = DiagnosisServer((host, port), registry=registry,
                             top_k=top_k, bus=bus, db=db,
                             bind_and_activate=bind_and_activate)
    _Handler.verbose = verbose
    return server
