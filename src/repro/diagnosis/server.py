"""Stdlib HTTP endpoint serving batch diagnosis queries.

The read-heavy half of the subsystem: one expensive dictionary load at
startup, then cheap vectorized queries.  Pure ``http.server`` — no
framework dependency — with JSON in and JSON out:

* ``GET /health`` — liveness plus dictionary shape;
* ``GET /metrics`` — the
  :class:`~repro.campaign.events.DiagnosisMetrics` snapshot (request
  latency, hit / ambiguity counters);
* ``POST /diagnose`` — body ``{"queries": [[...], ...]}`` (signature
  vectors) or ``{"records": [{...}, ...]}`` (DetectionRecord dicts,
  vectorized server-side); responds ``{"diagnoses": [...]}`` in query
  order.

Error contract: malformed JSON, wrong shapes and unknown paths are
400/404 with a JSON error body; serving an empty dictionary answers
503 on ``/diagnose`` (the service is up but cannot diagnose).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

import numpy as np

from ..campaign.events import (DiagnosisMetricsCollector,
                               DictionaryBuilt, EventBus)
from ..core.serialize import SerializeError, record_from_dict
from .dictionary import FaultDictionary
from .match import DictionaryMatcher, EmptyDictionaryError


class BadRequest(ValueError):
    """Raised for malformed request bodies (mapped to 400)."""


def _parse_queries(body: bytes, n_features: int) -> np.ndarray:
    """Request body -> (n, n_features) query array.

    Raises :class:`BadRequest` on anything malformed — bad JSON, the
    wrong container shape, non-numeric elements, or a feature-width
    mismatch.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    queries = payload.get("queries")
    records = payload.get("records")
    if (queries is None) == (records is None):
        raise BadRequest(
            "body must carry exactly one of 'queries' or 'records'")
    if records is not None:
        if not isinstance(records, list) or not records:
            raise BadRequest("'records' must be a non-empty list")
        vectors = []
        for k, data in enumerate(records):
            if not isinstance(data, dict):
                raise BadRequest(f"records[{k}] is not an object")
            try:
                vectors.append(
                    record_from_dict(data).signature_vector())
            except SerializeError as exc:
                raise BadRequest(f"records[{k}]: {exc}") from exc
        return np.array(vectors)
    if not isinstance(queries, list) or not queries:
        raise BadRequest("'queries' must be a non-empty list")
    try:
        array = np.array(queries, dtype=float)
    except (TypeError, ValueError) as exc:
        raise BadRequest(
            f"'queries' must be numeric vectors: {exc}") from exc
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2 or array.shape[1] != n_features:
        raise BadRequest(
            f"'queries' must be vectors of width {n_features}, got "
            f"shape {array.shape}")
    return array


class DiagnosisServer(ThreadingHTTPServer):
    """HTTP server bound to one loaded dictionary.

    The matcher is built once at construction (unless the dictionary
    is empty, in which case ``/diagnose`` answers 503 while ``/health``
    and ``/metrics`` stay up) and shared by all request threads — the
    matcher's NumPy state is read-only after construction, and the
    metrics collector locks internally.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 dictionary: FaultDictionary,
                 top_k: int = 5,
                 bus: Optional[EventBus] = None) -> None:
        super().__init__(address, _Handler)
        self.dictionary = dictionary
        self.bus = bus or EventBus()
        self.collector = DiagnosisMetricsCollector()
        self.bus.subscribe(self.collector)
        self.matcher: Optional[DictionaryMatcher] = None
        try:
            self.matcher = DictionaryMatcher(dictionary, top_k=top_k,
                                             bus=self.bus)
        except EmptyDictionaryError:
            pass
        self.bus.emit(DictionaryBuilt(
            classes=len(dictionary),
            undetected=len(dictionary.meta.get("undetected", ())),
            macros=dictionary.macros,
            features=len(dictionary.features), source="cache"))


class _Handler(BaseHTTPRequestHandler):
    server: DiagnosisServer

    #: quiet by default; the CLI flips this on with --verbose
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib contract
        if self.path == "/health":
            self._reply(200, {
                "status": "ok",
                "classes": len(self.server.dictionary),
                "features": len(self.server.dictionary.features),
                "macros": list(self.server.dictionary.macros)})
        elif self.path == "/metrics":
            self._reply(200, self.server.collector.snapshot().as_dict())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib contract
        if self.path != "/diagnose":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        if self.server.matcher is None:
            self._reply(503, {"error": "dictionary has no detectable "
                                       "classes"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            queries = _parse_queries(
                self.rfile.read(length),
                len(self.server.dictionary.features))
            diagnoses = self.server.matcher.diagnose_batch(queries)
        except BadRequest as exc:
            self._reply(400, {"error": str(exc)})
            return
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, {"diagnoses": [d.to_dict()
                                        for d in diagnoses]})


def serve(dictionary: FaultDictionary, host: str = "127.0.0.1",
          port: int = 8095, top_k: int = 5,
          bus: Optional[EventBus] = None,
          verbose: bool = False) -> DiagnosisServer:
    """Build a bound (not yet serving) server; callers run
    ``serve_forever()`` themselves — tests drive it from a thread,
    the CLI blocks on it."""
    server = DiagnosisServer((host, port), dictionary, top_k=top_k,
                             bus=bus)
    _Handler.verbose = verbose
    return server
