"""``python -m repro diagnose`` — build, query, report, serve.

Subcommands:

* ``build`` — run (or cache-hit) a campaign and compile its fault
  dictionary; ``--out`` writes the dictionary JSON, ``--cache-dir``
  additionally persists it in the campaign store.
* ``query`` — diagnose signature vectors from a JSON file against a
  dictionary; ``--self-test`` replays every dictionary entry's own
  signature (the closed-loop check) and reports top-1 accuracy.
* ``report`` — resolution analytics: ambiguity groups, expected
  diagnostic resolution, distinguishability summary; with ``--db`` it
  instead reports what a live service actually served (verdict mix,
  per-dictionary resolution, most-diagnosed classes) from the SQLite
  results backend.
* ``serve`` — the versioned HTTP service (``repro.diagnosis.server``):
  ``--dictionary NAME=PATH`` (repeatable; PATH is a dictionary JSON
  file or a campaign store root) builds the registry, ``--db`` attaches
  the persistent results backend.  The old single ``--dictionary PATH``
  form still works, registered under the name ``default``, with a
  deprecation warning.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..campaign.events import (DiagnosisMetricsCollector,
                               DictionaryBuilt, EventBus)
from ..campaign.runner import CampaignOptions
from ..core.options import add_engine_arguments, engine_knobs
from ..core.path import PathConfig
from ..testgen.dft import FULL_DFT, NO_DFT
from .analytics import distinguishability_matrix, expected_resolution
from .build import build_dictionary, build_from_store
from .db import DiagnosisDB, DiagnosisDBError
from .dictionary import DictionaryError, FaultDictionary
from .match import DictionaryMatcher, EmptyDictionaryError
from .registry import (DEFAULT_NAME, DictionaryRegistry,
                       RegistryError)


def _add_build(sub) -> None:
    p = sub.add_parser("build", help="compile a dictionary from a "
                                     "campaign")
    p.add_argument("--out", default=None,
                   help="write the dictionary JSON here")
    p.add_argument("--full", action="store_true",
                   help="paper-scale Monte Carlo budgets")
    p.add_argument("--defects", type=int, default=10000,
                   help="quick-mode defect budget")
    p.add_argument("--classes", type=int, default=30,
                   help="quick-mode class cap per macro")
    p.add_argument("--seed", type=int, default=1995,
                   help="Monte Carlo seed")
    p.add_argument("--dft", action="store_true",
                   help="apply full DfT")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: all cores)")
    p.add_argument("--cache-dir", default=None,
                   help="campaign store root; caches records and the "
                        "compiled dictionary")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted campaign")
    p.add_argument("--from-store", default=None, metavar="DIR",
                   help="skip the campaign: compile directly from a "
                        "populated store directory")
    p.add_argument("--macros", nargs="*", default=None,
                   help="restrict the campaign to these macros")
    add_engine_arguments(p)


def _add_query(sub) -> None:
    p = sub.add_parser("query", help="diagnose signatures against a "
                                     "dictionary")
    p.add_argument("--dictionary", required=True,
                   help="dictionary JSON file")
    p.add_argument("--input", default=None,
                   help="JSON file with {'queries': [...]} or "
                        "{'records': [...]} (default: stdin)")
    p.add_argument("--self-test", action="store_true",
                   help="replay every entry's own signature (closed-"
                        "loop diagnosis check)")
    p.add_argument("--top-k", type=int, default=5,
                   help="candidates reported per query")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")


def _add_report(sub) -> None:
    p = sub.add_parser("report", help="resolution analytics for a "
                                      "dictionary or a service's "
                                      "results db")
    p.add_argument("--dictionary", default=None,
                   help="dictionary JSON file")
    p.add_argument("--db", default=None,
                   help="diagnosis service SQLite results db: report "
                        "served verdicts instead of dictionary "
                        "analytics")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")


def _add_serve(sub) -> None:
    p = sub.add_parser("serve", help="versioned HTTP diagnosis "
                                     "service")
    p.add_argument("--dictionary", action="append", default=None,
                   metavar="[NAME=]PATH", required=True,
                   help="serve the dictionary at PATH under NAME "
                        "(repeatable; PATH is a dictionary JSON file "
                        "or a campaign store root).  Bare PATH is the "
                        "deprecated single-dictionary form, "
                        "registered as 'default'")
    p.add_argument("--default", default=None, metavar="NAME",
                   help="dictionary served when a request names none "
                        "(default: the first --dictionary)")
    p.add_argument("--db", default=None, metavar="PATH",
                   help="attach the SQLite results backend at PATH "
                        "(queries, verdicts and per-dictionary stats "
                        "are recorded for /v1/metrics and 'report "
                        "--db')")
    p.add_argument("--lazy", action="store_true",
                   help="load dictionaries on first use instead of "
                        "at startup")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8095)
    p.add_argument("--top-k", type=int, default=5)
    p.add_argument("--procs", default="1", metavar="N",
                   help="worker processes sharing the port (default "
                        "1: single-process in-line serving; 'auto' "
                        "uses all cores).  N>1 runs the pre-fork "
                        "fleet supervisor (repro.diagnosis.fleet): "
                        "crash restart, graceful drain, coordinated "
                        "hot-reload")
    p.add_argument("--verbose", action="store_true",
                   help="log every request to stderr")


def _build(args) -> int:
    bus = EventBus()
    built: List[DictionaryBuilt] = []
    bus.subscribe(lambda e: built.append(e)
                  if isinstance(e, DictionaryBuilt) else None)
    if args.from_store:
        from ..campaign.store import ResultsStore
        dictionary = build_from_store(ResultsStore(args.from_store),
                                      bus=bus)
    else:
        knobs = engine_knobs(args)
        dft = FULL_DFT if args.dft else NO_DFT
        if args.full:
            config = PathConfig(n_defects=25000,
                                magnitude_defects=2_000_000,
                                dft=dft, seed=args.seed, **knobs)
        else:
            config = PathConfig(n_defects=args.defects,
                                max_classes=args.classes,
                                dft=dft, seed=args.seed, **knobs)
        options = CampaignOptions(jobs=args.jobs,
                                  cache_dir=args.cache_dir,
                                  resume=args.resume)
        dictionary = build_dictionary(config, options, bus=bus,
                                      macros=args.macros)
    if args.out:
        dictionary.save(args.out)
        print(f"dictionary saved to {args.out}", file=sys.stderr)
    source = built[-1].source if built else "computed"
    wall = built[-1].wall if built else 0.0
    undetected = len(dictionary.meta.get("undetected", ()))
    print(f"dictionary: {len(dictionary)} classes over "
          f"{len(dictionary.macros)} macros "
          f"({undetected} undetectable), "
          f"{len(dictionary.features)} features, {source} in "
          f"{wall:.1f}s")
    return 0


def _load_dictionary(path: str) -> FaultDictionary:
    return FaultDictionary.load(path)


def _self_test(dictionary: FaultDictionary,
               matcher: DictionaryMatcher, as_json: bool) -> int:
    """Closed-loop check: every entry's own signature must rank its
    class (or its declared ambiguity group) top-1."""
    diagnoses = matcher.diagnose_batch(dictionary.matrix())
    failures = []
    ambiguous = 0
    for entry, diagnosis in zip(dictionary.entries, diagnoses):
        top = diagnosis.top
        ok = top is not None and (
            top.label == entry.label or
            entry.label in diagnosis.ambiguity_group)
        if diagnosis.verdict == "ambiguous":
            ambiguous += 1
        if not ok:
            failures.append((entry.label,
                             top.label if top else None))
    if as_json:
        print(json.dumps({
            "classes": len(dictionary),
            "top1": len(dictionary) - len(failures),
            "ambiguous": ambiguous,
            "failures": [list(f) for f in failures]},
            sort_keys=True))
    else:
        print(f"self-test: {len(dictionary) - len(failures)}/"
              f"{len(dictionary)} classes rank themselves (or their "
              f"ambiguity group) top-1; {ambiguous} sit in ambiguity "
              f"groups")
        for label, got in failures:
            print(f"  FAIL {label}: top-1 was {got}")
    return 1 if failures else 0


def _query(args) -> int:
    try:
        dictionary = _load_dictionary(args.dictionary)
        matcher = DictionaryMatcher(dictionary, top_k=args.top_k)
    except (DictionaryError, EmptyDictionaryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.self_test:
        return _self_test(dictionary, matcher, args.json)
    from .server import BadRequest, _parse_queries
    try:
        body = (Path(args.input).read_bytes() if args.input
                else sys.stdin.buffer.read())
        queries = _parse_queries(body, len(dictionary.features))
    except (OSError, BadRequest) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diagnoses = matcher.diagnose_batch(queries)
    if args.json:
        print(json.dumps({"diagnoses": [d.to_dict()
                                        for d in diagnoses]},
                         sort_keys=True))
        return 0
    for k, diagnosis in enumerate(diagnoses):
        line = f"query {k}: {diagnosis.verdict}"
        if diagnosis.top is not None and diagnosis.verdict != "pass":
            top = diagnosis.top
            line += (f" -> {top.label} (distance {top.distance:.3f}, "
                     f"posterior {top.posterior:.3f})")
        if diagnosis.ambiguity_group:
            line += f" group={','.join(diagnosis.ambiguity_group)}"
        print(line)
    return 0


def _report_db(args) -> int:
    """``report --db``: what a live service actually served."""
    try:
        db = DiagnosisDB(args.db)
    except DiagnosisDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        summary = db.summary()
        per_dictionary = db.per_dictionary()
        top = db.top_classes(limit=10)
    finally:
        db.close()
    if args.json:
        print(json.dumps({"summary": summary,
                          "per_dictionary": per_dictionary,
                          "top_classes": top}, sort_keys=True))
        return 0
    print(f"served: {summary['queries']} queries in "
          f"{summary['batches']} batches "
          f"({summary['matched']} matched, "
          f"{summary['ambiguous']} ambiguous, "
          f"{summary['unmatched']} unmatched, "
          f"{summary['passed']} passed)")
    for row in per_dictionary:
        print(f"  {row['dictionary']} v{row['version']}: "
              f"{row['queries']} queries, resolution rate "
              f"{100 * row['resolution_rate']:.1f}%")
    if top:
        print("most-diagnosed classes:")
        for row in top:
            print(f"  {row['hits']:6d}  {row['label']}")
    return 0


def _report(args) -> int:
    if args.db is not None:
        return _report_db(args)
    if args.dictionary is None:
        print("error: report needs --dictionary or --db",
              file=sys.stderr)
        return 2
    try:
        dictionary = _load_dictionary(args.dictionary)
    except DictionaryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = expected_resolution(dictionary)
    matrix = distinguishability_matrix(dictionary)
    ambiguous_groups = [g for g in report.groups if len(g) > 1]
    if args.json:
        payload = report.to_dict()
        payload["classes"] = len(dictionary)
        if len(dictionary) > 1:
            import numpy as np
            off = matrix[~np.eye(len(dictionary), dtype=bool)]
            payload["min_pair_distance"] = float(off.min())
            payload["mean_pair_distance"] = float(off.mean())
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"dictionary: {len(dictionary)} classes, "
          f"{report.n_groups} distinguishable groups")
    print(f"expected resolution: {100 * report.resolution:.1f}% "
          f"(prior-weighted chance a detected fault is pinned to "
          f"its exact class)")
    print(f"expected ambiguity-group size: "
          f"{report.expected_group_size:.2f}")
    if ambiguous_groups:
        print("ambiguity groups:")
        for group in ambiguous_groups:
            print(f"  {', '.join(group)}")
    else:
        print("ambiguity groups: none — every class is uniquely "
              "distinguishable")
    return 0


def parse_dictionary_specs(values: Sequence[str]
                           ) -> List[Tuple[str, str]]:
    """``[NAME=]PATH`` flags -> ``(name, path)`` pairs.

    A bare ``PATH`` is the deprecated pre-registry form: the first one
    is registered under ``"default"`` (matching the old single-
    dictionary server), later ones under their file stem, each with a
    :class:`DeprecationWarning`.
    """
    specs: List[Tuple[str, str]] = []
    taken = set()
    for value in values:
        if "=" in value:
            name, path = value.split("=", 1)
            name = name.strip()
            if not name or not path:
                raise RegistryError(
                    f"--dictionary {value!r}: expected NAME=PATH")
        else:
            path = value
            name = DEFAULT_NAME if DEFAULT_NAME not in taken \
                else Path(value).stem
            warnings.warn(
                f"bare --dictionary {value!r} is deprecated; use "
                f"--dictionary {name}={value}", DeprecationWarning,
                stacklevel=2)
        if name in taken:
            raise RegistryError(
                f"--dictionary name {name!r} given twice")
        taken.add(name)
        specs.append((name, path))
    return specs


def build_registry(values: Sequence[str], top_k: int = 5,
                   default: Optional[str] = None,
                   lazy: bool = False) -> DictionaryRegistry:
    """Registry from CLI ``--dictionary`` flags (shared with tests
    and benchmarks)."""
    registry = DictionaryRegistry(top_k=top_k)
    specs = parse_dictionary_specs(values)
    for name, path in specs:
        registry.register(name, source=path, lazy=lazy,
                          default=(name == default))
    if default is not None and default not in registry:
        raise RegistryError(
            f"--default {default!r} names no registered dictionary")
    return registry


def parse_procs(value: str) -> int:
    """``--procs`` flag -> worker count (``auto`` = all cores)."""
    import os
    if value == "auto":
        return os.cpu_count() or 1
    try:
        procs = int(value)
    except ValueError:
        raise RegistryError(
            f"--procs {value!r}: expected an integer or 'auto'")
    if procs < 1:
        raise RegistryError(f"--procs must be >= 1, got {procs}")
    return procs


def _serve_fleet(args, procs: int) -> int:
    """``serve --procs N`` for N>1: the pre-fork fleet."""
    from .fleet import DiagnosisFleet, FleetError
    try:
        fleet = DiagnosisFleet(
            args.dictionary, procs=procs, host=args.host,
            port=args.port, top_k=args.top_k, default=args.default,
            lazy=args.lazy, db_path=args.db, verbose=args.verbose)
        host, port = fleet.start()
    except (DictionaryError, RegistryError, FleetError,
            OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = ", ".join(name for name, _ in fleet.specs)
    mode = "SO_REUSEPORT" if fleet.reuseport else "shared listener"
    print(f"serving dictionaries [{names}] on http://{host}:{port} "
          f"with {procs} worker processes ({mode})"
          + (f"; results db {args.db}" if args.db else ""),
          file=sys.stderr)
    fleet.run_forever()
    return 0


def _serve(args) -> int:
    from .server import serve
    try:
        procs = parse_procs(args.procs)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if procs > 1:
        return _serve_fleet(args, procs)
    try:
        registry = build_registry(args.dictionary, top_k=args.top_k,
                                  default=args.default,
                                  lazy=args.lazy)
    except (DictionaryError, RegistryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    db = None
    if args.db is not None:
        try:
            db = DiagnosisDB(args.db)
        except DiagnosisDBError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    server = serve(registry=registry, host=args.host, port=args.port,
                   top_k=args.top_k, verbose=args.verbose, db=db)
    host, port = server.server_address[:2]
    names = ", ".join(registry.names())
    print(f"serving dictionaries [{names}] on http://{host}:{port} "
          f"(POST /v1/diagnose, GET /v1/health, GET /v1/metrics, "
          f"GET /v1/dictionaries"
          + (f"; results db {args.db}" if args.db else "") + ")",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if db is not None:
            db.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro diagnose", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="subcommand", required=True)
    _add_build(sub)
    _add_query(sub)
    _add_report(sub)
    _add_serve(sub)
    args = parser.parse_args(argv)
    if args.subcommand == "build":
        return _build(args)
    if args.subcommand == "query":
        return _query(args)
    if args.subcommand == "report":
        return _report(args)
    return _serve(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
