"""The versioned fault dictionary: class label -> signature vector.

A :class:`FaultDictionary` is the compiled, queryable inverse of a
campaign: one entry per *detectable* fault class, carrying the class's
signature vector (see
:func:`repro.faultsim.signatures.signature_feature_names` for the
stable feature contract), its prior probability (the paper's
area-and-yield-scaled defect likelihood) and enough bookkeeping to
explain a match.  Classes whose signature is all zeros never enter the
dictionary — they are undetectable by the measurement set and are
reported in ``meta["undetected"]`` instead.

Serialisation is deliberately byte-stable: :meth:`FaultDictionary.save`
writes canonical JSON (sorted keys, ``repr``-faithful floats via the
stdlib encoder), so two builds from the same seed produce identical
files — the determinism contract the RNG plumbing is tested against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: bump when the dictionary payload layout changes (part of the store
#: key, so a format bump recompiles without clobbering old blobs)
DICTIONARY_VERSION = 1


class DictionaryError(ValueError):
    """Raised for malformed or incompatible dictionary payloads."""


@dataclass(frozen=True)
class DictionaryEntry:
    """One fault class the dictionary can diagnose.

    Attributes:
        label: stable class identity — the campaign task id
            (``"<macro>:<kind>:<index>"``).
        macro: macro the class belongs to.
        vector: the class's signature vector (aligned to the
            dictionary's ``features``).
        prior: prior probability of this class among all dictionary
            classes (area-and-yield-weighted magnitude, normalised to
            sum to 1 over the dictionary).
        count: raw class magnitude within its macro campaign.
        fault_type: defect-simulator fault type label.
    """

    label: str
    macro: str
    vector: Tuple[float, ...]
    prior: float
    count: int
    fault_type: str = "short"

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "macro": self.macro,
            "vector": list(self.vector),
            "prior": self.prior,
            "count": self.count,
            "fault_type": self.fault_type,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DictionaryEntry":
        return cls(label=str(data["label"]), macro=str(data["macro"]),
                   vector=tuple(float(v) for v in data["vector"]),
                   prior=float(data["prior"]),
                   count=int(data["count"]),
                   fault_type=str(data.get("fault_type", "short")))


@dataclass
class FaultDictionary:
    """A compiled, versioned signature dictionary.

    Attributes:
        features: feature names, one per vector element (the stable
            ordering contract).
        tolerance: per-feature match weight in (0, 1] derived from the
            good-space corner spread — features whose acceptance
            window is dominated by process variation rather than the
            tester floor carry less diagnostic weight.
        entries: detectable classes, sorted by label (deterministic
            encoding).
        meta: provenance — campaign fingerprint, store version, config
            summary, undetected class labels.
    """

    features: Tuple[str, ...]
    tolerance: Tuple[float, ...]
    entries: Tuple[DictionaryEntry, ...]
    meta: Dict = field(default_factory=dict)
    version: int = DICTIONARY_VERSION

    def __post_init__(self) -> None:
        if len(self.tolerance) != len(self.features):
            raise DictionaryError(
                f"tolerance width {len(self.tolerance)} != feature "
                f"width {len(self.features)}")
        for entry in self.entries:
            if len(entry.vector) != len(self.features):
                raise DictionaryError(
                    f"entry {entry.label!r} vector width "
                    f"{len(entry.vector)} != feature width "
                    f"{len(self.features)}")
        self.entries = tuple(sorted(self.entries,
                                    key=lambda e: e.label))
        self._matrix: Optional[np.ndarray] = None
        self._groups: Optional[Dict[str, Tuple[str, ...]]] = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(e.label for e in self.entries)

    @property
    def macros(self) -> Tuple[str, ...]:
        return tuple(sorted({e.macro for e in self.entries}))

    def matrix(self) -> np.ndarray:
        """Entry vectors stacked as an (n_entries, n_features) array
        (cached; entry order)."""
        if self._matrix is None:
            if self.entries:
                self._matrix = np.array([e.vector
                                         for e in self.entries])
            else:
                self._matrix = np.zeros((0, len(self.features)))
        return self._matrix

    def priors(self) -> np.ndarray:
        """Entry priors as an array (entry order)."""
        return np.array([e.prior for e in self.entries])

    def ambiguity_groups(self) -> Dict[str, Tuple[str, ...]]:
        """label -> every label sharing its exact signature vector.

        Classes with identical vectors are *indistinguishable* by the
        measurement set: any match against one is a match against all
        of them, so the matcher reports the whole group.  Every label
        maps to a group containing at least itself.
        """
        if self._groups is None:
            by_vector: Dict[Tuple[float, ...], List[str]] = {}
            for entry in self.entries:
                by_vector.setdefault(entry.vector, []).append(
                    entry.label)
            self._groups = {}
            for labels in by_vector.values():
                group = tuple(sorted(labels))
                for label in group:
                    self._groups[label] = group
        return self._groups

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict:
        """Stable JSON-able form (the ``dictionaries/`` blob
        contract)."""
        return {
            "dictionary_version": self.version,
            "features": list(self.features),
            "tolerance": list(self.tolerance),
            "entries": [e.to_dict() for e in self.entries],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultDictionary":
        """Inverse of :meth:`to_dict`.

        Raises :class:`DictionaryError` on malformed input or a
        version mismatch (an old-format blob must recompile, never
        half-load).
        """
        try:
            version = int(data["dictionary_version"])
            if version != DICTIONARY_VERSION:
                raise DictionaryError(
                    f"dictionary version {version} != "
                    f"{DICTIONARY_VERSION}")
            meta = data.get("meta") or {}
            if not isinstance(meta, dict):
                raise DictionaryError("meta is not a mapping")
            return cls(
                features=tuple(str(f) for f in data["features"]),
                tolerance=tuple(float(t) for t in data["tolerance"]),
                entries=tuple(DictionaryEntry.from_dict(e)
                              for e in data["entries"]),
                meta=meta, version=version)
        except DictionaryError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DictionaryError(
                f"bad dictionary payload: {exc}") from exc

    def dumps(self) -> str:
        """Canonical JSON encoding — byte-identical for equal
        dictionaries."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.dumps())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultDictionary":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DictionaryError(
                f"cannot read dictionary {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise DictionaryError(f"{path} is not a dictionary payload")
        return cls.from_dict(payload)
